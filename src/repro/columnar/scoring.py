"""Vectorized posting construction over a columnar document store.

The static engines score a term's postings as ``relevance(d, t) ×
max(overlapping pattern scores)`` (Eq. 10/11), visiting every document
object and every pattern per document.  Over a
:class:`~repro.columnar.collection.ColumnarCollection` the same
computation is a handful of array operations per pattern:

* pattern/document overlap becomes a per-stream ``[start, end]``
  bounds table indexed by the documents' stream codes — one vectorized
  comparison per pattern instead of a Python call per (document,
  pattern) pair;
* the paper's max-aggregation is an elementwise ``np.maximum`` (exact
  regardless of order);
* ``log(freq + 1)`` is computed once per *distinct* frequency with
  ``math.log`` — identical doubles, since ``np.log`` over an array may
  round differently by an ulp;
* the final posting order comes from one stable ``lexsort`` inside
  :class:`~repro.columnar.postings.PostingArray`.

Unsupported relevance callables or pattern types return ``None`` so the
engine can fall back to the per-document reference loop — which is also
the differential-test oracle for this module.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.collection import ColumnarCollection
from repro.columnar.postings import PostingArray
from repro.core.patterns import CombinatorialPattern, RegionalPattern
from repro.search.relevance import (
    binary_relevance,
    log_relevance,
    raw_relevance,
)

__all__ = ["columnar_postings", "vectorizable_relevance"]


def vectorizable_relevance(relevance) -> bool:
    """True when :func:`columnar_postings` can vectorize this callable.

    Lets the engine gate the (O(corpus)) columnar snapshot build before
    paying for it.
    """
    return relevance in (log_relevance, raw_relevance, binary_relevance)

#: Sentinel bounds marking a stream as a non-member (empty interval).
_NO_MEMBER = (1, 0)


def _pattern_bounds(
    pattern, n_streams: int, store: ColumnarCollection
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Per-stream-code ``[start, end]`` overlap table of one pattern.

    Returns ``None`` for pattern types whose overlap semantics this
    module does not know — the caller then falls back to the reference
    scorer.
    """
    starts = np.full(n_streams, _NO_MEMBER[0], dtype=np.int64)
    ends = np.full(n_streams, _NO_MEMBER[1], dtype=np.int64)
    if isinstance(pattern, RegionalPattern):
        members = (
            pattern.bursty_streams if pattern.bursty_streams else pattern.streams
        )
        frame = pattern.timeframe
        for sid in members:
            code = store._stream_code.get(sid)
            if code is not None:
                starts[code] = frame.start
                ends[code] = frame.end
        return starts, ends
    if isinstance(pattern, CombinatorialPattern):
        assigned = set()
        for sid, interval, _ in pattern.member_intervals:
            if sid in assigned or sid not in pattern.streams:
                continue
            assigned.add(sid)
            code = store._stream_code.get(sid)
            if code is not None:
                starts[code] = interval.start
                ends[code] = interval.end
        frame = pattern.timeframe
        for sid in pattern.streams:
            if sid in assigned:
                continue
            code = store._stream_code.get(sid)
            if code is not None:
                starts[code] = frame.start
                ends[code] = frame.end
        return starts, ends
    from repro.search.engine import TemporalPattern

    if isinstance(pattern, TemporalPattern):
        # Origin-agnostic: the TB baseline's timeframe-only overlap.
        frame = pattern.timeframe
        starts[:] = frame.start
        ends[:] = frame.end
        return starts, ends
    return None  # unknown pattern type → reference path


def _relevance_column(
    relevance, frequencies: np.ndarray
) -> Optional[np.ndarray]:
    """Per-document relevance values, or ``None`` if not vectorizable."""
    if relevance is log_relevance:
        cache: Dict[int, float] = {}
        values = []
        for frequency in frequencies.tolist():
            cached = cache.get(frequency)
            if cached is None:
                cached = math.log(frequency + 1.0)
                cache[frequency] = cached
            values.append(cached)
        return np.asarray(values)
    if relevance is raw_relevance:
        return frequencies.astype(float)
    if relevance is binary_relevance:
        return (frequencies > 0).astype(float)
    return None


def columnar_postings(
    store: ColumnarCollection,
    term: str,
    patterns: Sequence,
    relevance,
) -> Optional[PostingArray]:
    """One term's posting list, built from columnar slices.

    Byte-identical to scoring every document with
    :func:`repro.search.engine.score_posting` and sorting the result;
    returns ``None`` when the relevance function or a pattern type is
    outside the vectorizable set.
    """
    rows = store.doc_rows(term)
    if not patterns or len(rows) == 0:
        return PostingArray([], [])
    frequencies = store.frequencies(term)
    rel = _relevance_column(relevance, frequencies)
    if rel is None:
        return None
    timestamps = store.timestamps[rows]
    codes = store.stream_codes[rows]
    n_streams = len(store.stream_ids)
    aggregate = np.full(len(rows), -np.inf)
    included = np.zeros(len(rows), dtype=bool)
    for pattern in patterns:
        bounds = _pattern_bounds(pattern, n_streams, store)
        if bounds is None:
            return None
        starts, ends = bounds
        mask = (timestamps >= starts[codes]) & (timestamps <= ends[codes])
        np.maximum(aggregate, pattern.score, out=aggregate, where=mask)
        included |= mask
    if not included.any():
        return PostingArray([], [])
    selected = rows[included]
    scores = rel[included] * aggregate[included]
    doc_ids = store.doc_ids
    return PostingArray(
        [doc_ids[row] for row in selected.tolist()],
        scores,
        tiebreaks=store.tiebreaks[selected],
    )
