"""Numerical kernels behind the columnar storage layer.

Every kernel here is a drop-in replacement for a pure-Python loop
elsewhere in the repository, with one hard guarantee: **byte-identical
floats**.  The legacy implementations accumulate left-to-right with
``+=``; NumPy's ``cumsum``/``ufunc.accumulate`` are strictly sequential
as well, and elementwise arithmetic performs the same IEEE-754
operation on the same operands — so swapping a Python loop for the
array form changes throughput, never output.  (Transcendentals are the
exception: ``np.log`` over an array may differ from ``math.log`` by an
ulp, so the kernels only ever take logarithms of *scalars* via
``math.log`` and broadcast the results.)

The maximum-weight-rectangle kernel is *adaptive*: the batched
prefix-min Kadane is vectorized for large grids, but the grids R-Bursty
actually sees are tiny (a handful of active streams per snapshot),
where NumPy's per-call overhead dominates the arithmetic.  Below
:data:`SCALAR_GRID_CELLS` cells a scalar path runs the identical
operation sequence on plain Python floats instead.  Both paths
reproduce the legacy scan order bit-for-bit, including the
first-strict-maximum tie-breaking of ``np.argmax``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SCALAR_GRID_CELLS",
    "batched_first_rectangles",
    "max_rectangle_grid",
    "max_rectangle_points",
    "maximal_segment_bounds",
    "maximal_segment_state",
    "running_mean_burstiness",
    "binomial_cost_series",
]

#: Grid sizes (``rows × cols``) at or below which the scalar Kadane path
#: outruns the vectorized one (NumPy call overhead > arithmetic).
SCALAR_GRID_CELLS = 256

#: Returned rectangle bounds: (score, y_lo, y_hi, x_lo, x_hi) as grid
#: row/column indices.
GridBounds = Tuple[float, int, int, int, int]


# ----------------------------------------------------------------------
# Maximum-weight rectangle (batched prefix-min Kadane)
# ----------------------------------------------------------------------
def _max_rectangle_grid_numpy(grid: np.ndarray) -> Optional[GridBounds]:
    """Vectorized batched Kadane over an ``m × k`` cell-weight grid."""
    m, k = grid.shape
    best_score = 0.0
    best: Optional[GridBounds] = None
    row_cumulative = np.cumsum(grid, axis=0)
    zeros_column = np.zeros((m, 1))
    for y_lo in range(m):
        bands = row_cumulative[y_lo:]
        if y_lo > 0:
            bands = bands - row_cumulative[y_lo - 1]
        prefix = np.cumsum(bands, axis=1)
        shifted = np.concatenate(
            (zeros_column[: bands.shape[0]], prefix[:, :-1]), axis=1
        )
        running_min = np.minimum.accumulate(shifted, axis=1)
        gains = prefix - running_min
        flat_best = int(np.argmax(gains))
        row_rel, right = divmod(flat_best, k)
        score = float(gains[row_rel, right])
        if score > best_score:
            target = running_min[row_rel, right]
            left = int(
                np.flatnonzero(shifted[row_rel, : right + 1] == target)[0]
            )
            best_score = score
            best = (score, y_lo, y_lo + row_rel, left, right)
    return best


def _max_rectangle_grid_scalar(grid: Sequence[Sequence[float]]) -> Optional[GridBounds]:
    """Scalar twin of :func:`_max_rectangle_grid_numpy`.

    Performs the exact operation sequence of the vectorized path —
    per-column cumulative sums, per-band prefix sums, running minima,
    first-strict-maximum selection — on plain floats, which is faster
    for the tiny grids a single snapshot produces.
    """
    m = len(grid)
    # np.cumsum(grid, axis=0): sequential addition down each column.
    col_cum: List[List[float]] = [list(grid[0])]
    prev = col_cum[0]
    for r in range(1, m):
        prev = [a + b for a, b in zip(prev, grid[r])]
        col_cum.append(prev)

    neg_inf = float("-inf")
    best_score = 0.0
    best: Optional[GridBounds] = None
    for y_lo in range(m):
        base = col_cum[y_lo - 1] if y_lo > 0 else None
        # argmax over the (m - y_lo) × k gains matrix, row-major with
        # first-strict-maximum ties — the np.argmax contract.
        best_gain = neg_inf
        best_rel = best_right = 0
        best_target = 0.0
        for rel in range(m - y_lo):
            row = col_cum[y_lo + rel]
            prefix = 0.0
            running_min = 0.0
            if base is None:
                for c, band in enumerate(row):
                    # prefix still holds shifted[c]; fold it into the
                    # running minimum before advancing.
                    if prefix < running_min:
                        running_min = prefix
                    prefix = prefix + band
                    gain = prefix - running_min
                    if gain > best_gain:
                        best_gain = gain
                        best_rel = rel
                        best_right = c
                        best_target = running_min
            else:
                c = 0
                for top, bottom in zip(row, base):
                    if prefix < running_min:
                        running_min = prefix
                    prefix = prefix + (top - bottom)
                    gain = prefix - running_min
                    if gain > best_gain:
                        best_gain = gain
                        best_rel = rel
                        best_right = c
                        best_target = running_min
                    c += 1
        if best_gain > best_score:
            # Recover the left edge: first column whose shifted prefix
            # equals the running minimum at the selected right edge.
            row = col_cum[y_lo + best_rel]
            prefix = 0.0
            left = 0
            for c in range(best_right + 1):
                if prefix == best_target:
                    left = c
                    break
                band = row[c] - base[c] if base is not None else row[c]
                prefix = prefix + band
            best_score = best_gain
            best = (best_gain, y_lo, y_lo + best_rel, left, best_right)
    return best


def max_rectangle_grid(grid: Sequence[Sequence[float]]) -> Optional[GridBounds]:
    """Best (strictly positive) rectangle of a cell-weight grid.

    Accepts a list-of-lists or an ndarray; dispatches to the scalar or
    vectorized Kadane by grid size.  Returns ``None`` when no rectangle
    scores above zero.
    """
    m = len(grid)
    k = len(grid[0])
    if m * k <= SCALAR_GRID_CELLS and not isinstance(grid, np.ndarray):
        return _max_rectangle_grid_scalar(grid)
    return _max_rectangle_grid_numpy(np.asarray(grid, dtype=float))


def max_rectangle_points(
    xs: Sequence[float],
    ys: Sequence[float],
    weights: Sequence[float],
) -> Optional[Tuple[float, float, float, float, float]]:
    """Maximum-weight axis-aligned rectangle over weighted points.

    The arguments are parallel sequences describing the *active*
    (non-zero-weight) points in their canonical evaluation order; the
    caller is responsible for that filtering, exactly as
    :func:`repro.spatial.discrepancy.max_weight_rectangle` drops
    zero-weight points before compressing coordinates.

    Returns:
        ``(score, min_x, min_y, max_x, max_y)`` of the tight optimal
        rectangle, or ``None`` when no positive-weight point exists.
    """
    n = len(weights)
    if not any(w > 0.0 for w in weights):
        return None
    cxs = sorted(set(xs))
    cys = sorted(set(ys))
    k, m = len(cxs), len(cys)
    x_index = {x: i for i, x in enumerate(cxs)}
    y_index = {y: i for i, y in enumerate(cys)}
    if m * k <= SCALAR_GRID_CELLS:
        grid: List[List[float]] = [[0.0] * k for _ in range(m)]
        for i in range(n):
            grid[y_index[ys[i]]][x_index[xs[i]]] += weights[i]
        bounds = _max_rectangle_grid_scalar(grid)
    else:
        dense = np.zeros((m, k), dtype=float)
        rows = np.fromiter((y_index[y] for y in ys), dtype=np.intp, count=n)
        cols = np.fromiter((x_index[x] for x in xs), dtype=np.intp, count=n)
        # np.add.at is unbuffered: duplicate cells accumulate in input
        # order, matching the legacy per-point ``+=`` loop.
        np.add.at(dense, (rows, cols), np.asarray(weights, dtype=float))
        bounds = _max_rectangle_grid_numpy(dense)
    if bounds is None:
        return None
    score, y_lo, y_hi, x_lo, x_hi = bounds
    return (score, cxs[x_lo], cys[y_lo], cxs[x_hi], cys[y_hi])


# ----------------------------------------------------------------------
# Batched Kadane over many grids at once
# ----------------------------------------------------------------------
def batched_first_rectangles(
    grids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Maximum-weight rectangle of many cell grids in one vectorized pass.

    ``grids`` is an ``(n, m_pad, k_pad)`` tensor of zero-padded cell
    weights — one snapshot grid per slice, each occupying the top-left
    ``m_i × k_i`` corner.  All grids share one batched prefix-min Kadane
    whose per-slice arithmetic is byte-identical to
    :func:`_max_rectangle_grid_numpy` on the unpadded grid:

    * zero padding is *inert* — cumulative sums and band differences
      pass zeros through unchanged, so every real cell's value is
      computed from the identical operand sequence;
    * zero padding is *tie-safe* — a padded column's gain is either 0
      or an exact duplicate of the last real column's gain (and padded
      rows duplicate the last real row), so the row-major
      first-strict-maximum always lands on the same real cell the
      unpadded ``argmax`` selects, and a padded cell can only "win"
      with score 0, which the strictly-positive acceptance ignores.

    Returns:
        ``(found, score, y_lo, y_hi, x_lo, x_hi)`` arrays over the
        ``n`` grids; entries where ``found`` is False have no rectangle
        with strictly positive weight.
    """
    n, m_pad, k_pad = grids.shape
    col_cum = np.cumsum(grids, axis=1)
    best_score = np.zeros(n)
    best_y_lo = np.zeros(n, dtype=np.int64)
    best_rel = np.zeros(n, dtype=np.int64)
    best_right = np.zeros(n, dtype=np.int64)
    best_target = np.zeros(n)
    rows_index = np.arange(n)
    # One reusable buffer with a leading zero column: after an in-place
    # cumsum into columns 1…k, columns 0…k-1 *are* the shifted prefixes.
    padded = np.zeros((n, m_pad, k_pad + 1))
    for y_lo in range(m_pad):
        bands = col_cum[:, y_lo:, :]
        if y_lo > 0:
            bands = bands - col_cum[:, y_lo - 1 : y_lo, :]
        window = padded[:, : m_pad - y_lo, :]
        np.cumsum(bands, axis=2, out=window[:, :, 1:])
        prefix = window[:, :, 1:]
        running_min = np.minimum.accumulate(window[:, :, :-1], axis=2)
        gains = (prefix - running_min).reshape(n, -1)
        arg = np.argmax(gains, axis=1)
        score = gains[rows_index, arg]
        better = score > best_score
        if better.any():
            target = running_min.reshape(n, -1)[rows_index, arg]
            rel, right = np.divmod(arg, k_pad)
            best_score[better] = score[better]
            best_y_lo[better] = y_lo
            best_rel[better] = rel[better]
            best_right[better] = right[better]
            best_target[better] = target[better]
    found = best_score > 0.0
    # Left-edge recovery, replayed scalar per winning grid: first column
    # whose shifted prefix equals the captured running minimum.
    lefts = np.zeros(n, dtype=np.int64)
    for t in np.flatnonzero(found).tolist():
        y_lo = int(best_y_lo[t])
        right = int(best_right[t])
        target = best_target[t]
        row = col_cum[t, y_lo + int(best_rel[t])].tolist()
        base = col_cum[t, y_lo - 1].tolist() if y_lo > 0 else None
        prefix_value = 0.0
        left = 0
        for c in range(right + 1):
            if prefix_value == target:
                left = c
                break
            band = row[c] - base[c] if base is not None else row[c]
            prefix_value = prefix_value + band
        lefts[t] = left
    return (
        found,
        best_score,
        best_y_lo,
        best_y_lo + best_rel,
        lefts,
        best_right,
    )


# ----------------------------------------------------------------------
# Ruzzo–Tompa maximal segments over prefix sums
# ----------------------------------------------------------------------
def maximal_segment_state(
    values: Sequence[float],
) -> Tuple[List[Tuple[int, int, float, float]], float, int]:
    """Batch Ruzzo–Tompa: the full online-algorithm state in one pass.

    The cumulative totals the online algorithm maintains one ``+=`` at
    a time are precomputed with a single sequential ``cumsum``, and the
    candidate-merging loop then touches only the positive entries.  The
    returned ``(candidates, cumulative, length)`` triple reproduces a
    :class:`repro.temporal.max_segments.OnlineMaxSegments` that
    consumed the same values byte-for-byte: candidate boundary sums are
    the same prefix floats, and the running total equals the same
    sequential summation.

    Returns:
        ``candidates`` as ``(start, end, left_sum, right_sum)`` tuples
        in left-to-right order, the cumulative total, and the sequence
        length.
    """
    length = len(values)
    if length == 0:
        return [], 0.0, 0
    if length <= 128:
        # Short sequences: the ndarray round-trip costs more than the
        # sum itself.  Same sequential additions, same floats.
        prefix = []
        running = 0.0
        positive_indices: List[int] = []
        for i, value in enumerate(values):
            if value > 0.0:
                positive_indices.append(i)
            running += value
            prefix.append(running)
        cumulative = running
    else:
        arr = np.asarray(values, dtype=float)
        prefix = np.cumsum(arr).tolist()
        cumulative = prefix[-1]
        positive_indices = np.flatnonzero(arr > 0.0).tolist()
    # Candidates as (start, end, left_sum, right_sum); the integration
    # loop mirrors OnlineMaxSegments._integrate (Appendix C, steps 1-2).
    candidates: List[Tuple[int, int, float, float]] = []
    for i in positive_indices:
        start = end = i
        left_sum = prefix[i - 1] if i > 0 else 0.0
        right_sum = prefix[i]
        while True:
            j = len(candidates) - 1
            while j >= 0 and candidates[j][2] >= left_sum:
                j -= 1
            if j < 0 or candidates[j][3] >= right_sum:
                candidates.append((start, end, left_sum, right_sum))
                break
            start = candidates[j][0]
            left_sum = candidates[j][2]
            del candidates[j:]
    return candidates, cumulative, length


def maximal_segment_bounds(
    values: Sequence[float],
) -> List[Tuple[int, int, float]]:
    """All maximal scoring subsequences as ``(start, end, score)``.

    Thin wrapper over :func:`maximal_segment_state`, scoring each
    surviving candidate as ``right_sum − left_sum`` — the identical
    subtraction the online algorithm performs.
    """
    candidates, _, _ = maximal_segment_state(values)
    return [
        (start, end, right_sum - left_sum)
        for start, end, left_sum, right_sum in candidates
    ]


# ----------------------------------------------------------------------
# Running-mean burstiness matrix (Eq. 7, paper-default baseline)
# ----------------------------------------------------------------------
def running_mean_burstiness(
    counts: np.ndarray,
    start: int,
    warmup: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Discrepancy burstiness of every (stream, snapshot) cell at once.

    Args:
        counts: Dense ``(streams × span)`` observed frequencies, column
            ``j`` holding global timestamp ``start + j``.  Rows must
            cover each stream's entire observation window: the running
            mean at column ``j`` divides the row's cumulative total
            before ``j`` by the *global* timestamp, which is exactly the
            state a lazily-created, zero-primed
            :class:`~repro.temporal.baselines.RunningMeanBaseline`
            reaches after replaying the same snapshots.
        start: Global timestamp of column 0.
        warmup: Snapshots (global) during which burstiness is forced to
            zero while the baseline learns.

    Returns:
        ``(burstiness, totals)`` — the ``observed − expected`` matrix
        and each row's final cumulative total (the model state after
        the last column, for reconstructing live-compatible trackers).
    """
    n, span = counts.shape
    cumulative = np.cumsum(counts, axis=1)
    before = np.empty_like(cumulative)
    before[:, 0] = 0.0
    before[:, 1:] = cumulative[:, :-1]
    timestamps = np.arange(start, start + span, dtype=float)
    divisor = np.maximum(timestamps, 1.0)
    expected = before / divisor
    if start == 0:
        expected[:, 0] = 0.0  # count == 0 → the model's zero prior
    burstiness = counts - expected
    if warmup > start:
        burstiness[:, : warmup - start] = 0.0
    totals = cumulative[:, -1] if span else np.zeros(n)
    return burstiness, totals


# ----------------------------------------------------------------------
# Kleinberg emission costs
# ----------------------------------------------------------------------
def binomial_cost_series(
    log_p: float,
    log_1p: float,
    relevant: np.ndarray,
    observed: np.ndarray,
) -> np.ndarray:
    """Per-timestamp negative binomial log-likelihoods (coefficient-free).

    ``log_p``/``log_1p`` are scalar logarithms the caller computed with
    ``math.log`` on the clipped emission probability — taking the log
    outside the array keeps the elementwise arithmetic byte-identical
    to :func:`repro.temporal.kleinberg._binomial_cost` per element.
    """
    return -(relevant * log_p + (observed - relevant) * log_1p)
