"""Columnar STLocal burst sweep: one tensor slice, zero per-snapshot dicts.

The legacy snapshot-major sweep (:mod:`repro.pipeline.batch`) advances a
:class:`~repro.core.stlocal.STLocalTermTracker` one snapshot at a time:
every ``process`` call updates per-stream expectation-model *objects*,
builds :class:`~repro.spatial.discrepancy.WeightedPoint` dataclasses,
and re-enters NumPy for a grid the size of a postage stamp.  This module
is the columnar rewrite of that inner loop, in three phases:

1. **prepare** — each term's whole ``observed − expected`` burstiness
   matrix is computed in one vectorized pass
   (:func:`repro.columnar.kernels.running_mean_burstiness`), along with
   one coordinate compression per activation segment;
2. **batch** — the first R-Bursty rectangle of every segment-batchable
   snapshot of *every* term is extracted by a single padded-tensor
   Kadane (:func:`repro.columnar.kernels.batched_first_rectangles`);
   a snapshot is batchable when no active stream's weight is exactly
   zero, so its per-snapshot compression provably equals its segment's
   shared one.  The remaining extractions — unclean first rounds and
   all second-and-later rectangles after point retirement — are
   resolved by the same batched kernel in rounds, each round
   compressing every still-pending snapshot exactly as the reference
   per-snapshot call would;
3. **finish** — rectangles become region lifecycles: a region's whole
   r-score series is read off its member set's cached score series
   (sequential member-row additions over the matrix), its pruning
   snapshot found by one scalar running-total scan, and its
   Ruzzo–Tompa state materialised in one batch pass.  The result is a
   *real* ``STLocalTermTracker`` whose state — open sequences,
   archived windows, histories, expectation models — is
   indistinguishable from a snapshot-by-snapshot replay.

The fast path only engages for the paper-default baseline (a zero-prior
:class:`~repro.temporal.baselines.RunningMeanBaseline`), whose running
mean is expressible as a prefix sum; any other ``baseline_factory``
falls back to the legacy replay (see :func:`columnar_supported`).
Output equality is enforced by ``tests/test_columnar_differential.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from repro.columnar import kernels
from repro.core.config import STLocalConfig
from repro.core.stlocal import RegionSequence, STLocalTermTracker
from repro.errors import StreamError
from repro.intervals.interval import Interval
from repro.spatial.geometry import Point, Rectangle
from repro.spatial.index import IntervalSpatialIndex, SpatialIndex
from repro.temporal.baselines import RunningMeanBaseline
from repro.temporal.max_segments import OnlineMaxSegments

__all__ = [
    "columnar_supported",
    "LocationStore",
    "sweep_term",
    "sweep_terms",
]

#: Below this stream count a scalar membership scan beats the
#: vectorized rectangle mask (NumPy call overhead again).
_SCALAR_MEMBER_SCAN = 256

#: Sentinel distinguishing "no precomputed first rectangle" from "the
#: batch proved there is none".
_UNBATCHED = object()

#: Rectangle bounds tuple: (score, min_x, min_y, max_x, max_y).
Bounds = Tuple[float, float, float, float, float]


def columnar_supported(config: STLocalConfig) -> bool:
    """True when the columnar sweep reproduces this configuration.

    The vectorized burstiness matrix encodes exactly one baseline: the
    paper's default running mean over all earlier snapshots with a zero
    prior (``expected(i) = Σ_{j<i} y_j / i``).  A customised
    ``baseline_factory`` — different model class, subclass, or non-zero
    prior — routes the miner back to the legacy per-snapshot replay.
    """
    try:
        probe = config.baseline_factory()
    except (TypeError, ValueError):
        # A factory that rejects the no-argument probe call (extra
        # required parameters, constructor validation) is by definition
        # not the paper default; anything else it raises is a real bug
        # and must surface.
        return False
    return (
        type(probe) is RunningMeanBaseline
        and probe.expected(0) == 0.0
        and getattr(probe, "_count", None) == 0
        and getattr(probe, "_total", None) == 0.0
    )


class LocationStore:
    """Shared columnar view of the stream locations for one mine call.

    Holds the coordinate columns every term's sweep reads from, plus
    the (optional) spatial index handed to each produced tracker — the
    per-call equivalents of what ``BatchMiner.regional_trackers`` built
    inline for the legacy path.
    """

    def __init__(self, locations: Dict[Hashable, Point]) -> None:
        self.locations = dict(locations)
        self.ids: List[Hashable] = list(self.locations)
        self.xs: List[float] = [p.x for p in self.locations.values()]
        self.ys: List[float] = [p.y for p in self.locations.values()]
        self._x_arr = np.asarray(self.xs, dtype=float)
        self._y_arr = np.asarray(self.ys, dtype=float)
        self.coords: Dict[Hashable, Tuple[float, float]] = {
            sid: (p.x, p.y) for sid, p in self.locations.items()
        }
        self.index: Optional[SpatialIndex] = None
        if len(self.locations) > STLocalTermTracker.INDEX_THRESHOLD:
            self.index = IntervalSpatialIndex(list(self.locations.items()))
        # Membership is a pure function of the rectangle bounds and the
        # (fixed) stream set, and burst regions recur across snapshots
        # and terms — memoising pays for itself immediately.
        self._members: Dict[
            Tuple[float, float, float, float], FrozenSet[Hashable]
        ] = {}

    def members_of(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> FrozenSet[Hashable]:
        """Streams whose geostamps fall inside a closed rectangle."""
        bounds = (min_x, min_y, max_x, max_y)
        cached = self._members.get(bounds)
        if cached is not None:
            return cached
        if len(self.ids) <= _SCALAR_MEMBER_SCAN:
            xs, ys, ids = self.xs, self.ys, self.ids
            members = frozenset(
                ids[i]
                for i in range(len(ids))
                if min_x <= xs[i] <= max_x and min_y <= ys[i] <= max_y
            )
        else:
            mask = (
                (self._x_arr >= min_x)
                & (self._x_arr <= max_x)
                & (self._y_arr >= min_y)
                & (self._y_arr <= max_y)
            )
            members = frozenset(self.ids[i] for i in np.flatnonzero(mask))
        self._members[bounds] = members
        return members


class _Region:
    """One region's whole lifecycle, resolved at creation time.

    A region's r-score series is a pure function of the burstiness
    matrix and its member rows, so the moment a rectangle opens a new
    region its entire value sequence — including the snapshot (if any)
    whose appended value drives the running total negative, Algorithm
    2's pruning rule — is read off the member-set's precomputed score
    series (see ``_finish_term``); no per-snapshot bookkeeping remains.
    """

    __slots__ = ("region", "members", "start", "values", "prune_timestamp")

    def __init__(
        self,
        region: Rectangle,
        members: FrozenSet[Hashable],
        start: int,
        values: List[float],
        prune_timestamp: int,
    ) -> None:
        self.region = region
        self.members = members
        self.start = start
        self.values = values
        self.prune_timestamp = prune_timestamp

    def windows(self) -> List[Tuple[Interval, float]]:
        """Maximal windows of the buffered sequence (global timeframes)."""
        start = self.start
        return [
            (Interval(start + seg_start, start + seg_end), score)
            for seg_start, seg_end, score in kernels.maximal_segment_bounds(
                self.values
            )
        ]

    def to_sequence(self) -> RegionSequence:
        """Materialise the equivalent live ``RegionSequence``."""
        candidates, cumulative, length = kernels.maximal_segment_state(
            self.values
        )
        return RegionSequence(
            region=self.region,
            stream_ids=self.members,
            start=self.start,
            tracker=OnlineMaxSegments.restore(candidates, cumulative, length),
        )


class _Segment:
    """A run of snapshots sharing one active row set (and compression).

    The active point set only grows at activation timestamps, so the
    span between consecutive activations shares one coordinate
    compression.  Within the segment, a snapshot is *batchable* when
    every active row's weight is non-zero: all active points then
    survive the legacy non-zero filter, so the per-snapshot compression
    provably equals the segment's shared one.
    """

    __slots__ = (
        "rows",
        "cxs",
        "cys",
        "x_index",
        "y_index",
        "grid_x",
        "grid_y",
        "clean_columns",
    )


class ColumnarTermTracker(STLocalTermTracker):
    """A sweep-built tracker that answers history queries columnar-ly.

    Indistinguishable from a replayed ``STLocalTermTracker`` (same
    sequences, archives, models, histories), but it additionally keeps
    the term's burstiness matrix so :meth:`bursty_members` — the
    dominant cost of pattern extraction on history-rich corpora — can
    sum a row slice instead of probing a per-timestamp dict.  Further
    ``process`` calls append to state the matrix does not cover, so the
    first one drops the acceleration and falls back to the inherited
    dict-walk.
    """

    _burst_rows: Optional[List[List[float]]] = None
    _burst_row_of: Dict[Hashable, int] = {}
    _burst_first: int = 0
    _burst_totals: Optional[Dict[Tuple[int, int, int], bool]] = None

    def process(self, frequencies: Dict[Hashable, float]) -> int:
        self._burst_rows = None
        return super().process(frequencies)

    def bursty_members(self, streams, timeframe):
        rows = self._burst_rows
        if rows is None or not self.config.track_history:
            return super().bursty_members(streams, timeframe)
        first = self._burst_first
        row_of = self._burst_row_of
        span = len(rows[0]) if rows else 0
        lo = timeframe.start - first
        hi = timeframe.end - first + 1
        if lo < 0:
            lo = 0
        if hi > span:
            hi = span
        if lo >= hi:
            return frozenset()
        cache = self._burst_totals
        if cache is None:
            cache = self._burst_totals = {}
        bursty = set()
        for sid in streams:
            row = row_of.get(sid)
            if row is None:
                continue
            key = (row, lo, hi)
            positive = cache.get(key)
            if positive is None:
                # Sequential sum over the frame slice: the same
                # non-zero values the history dict holds, in the same
                # ascending order, with inert zeros in between —
                # byte-identical.  Patterns of one term share frames
                # and member streams heavily, hence the memo.
                positive = sum(rows[row][lo:hi]) > 0.0
                cache[key] = positive
            if positive:
                bursty.add(sid)
        return frozenset(bursty)


class _TermPlan:
    """Per-term intermediate state between the prepare and finish phases."""

    __slots__ = (
        "snapshots",
        "first",
        "end",
        "row_ids",
        "row_of",
        "first_active",
        "burstiness",
        "columns",
        "totals",
        "row_x",
        "row_y",
        "segments",
        "clean_count",
    )


def _prepare_term(
    snapshots: Dict[int, Dict[Hashable, float]],
    store: LocationStore,
    config: STLocalConfig,
    timeline: int,
    truncate_tails: bool,
) -> _TermPlan:
    """Phase 1: burstiness matrix, coordinate compression, batch mask."""
    plan = _TermPlan()
    plan.snapshots = snapshots
    first = min(snapshots)
    last = max(snapshots)
    plan.first = first
    plan.end = last if truncate_tails else timeline - 1
    span = plan.end - first + 1

    # Rows: every stream the term ever touches, in the same
    # sorted-by-repr order the tracker evaluates active streams in.
    seen: Dict[Hashable, None] = {}
    for slice_ in snapshots.values():
        for sid in slice_:
            if sid not in store.coords:
                raise StreamError(f"unknown stream {sid!r} in snapshot")
            seen.setdefault(sid, None)
    row_ids = sorted(seen, key=repr)
    plan.row_ids = row_ids
    plan.row_of = {sid: row for row, sid in enumerate(row_ids)}
    n_rows = len(row_ids)

    counts = np.zeros((n_rows, span), dtype=float)
    for timestamp, slice_ in snapshots.items():
        column = timestamp - first
        for sid, value in slice_.items():
            counts[plan.row_of[sid], column] = float(value)

    plan.burstiness, plan.totals = kernels.running_mean_burstiness(
        counts, first, config.warmup
    )
    plan.columns = plan.burstiness.T.tolist()
    # Global timestamp of each row's first observation (model creation):
    # from then on the stream is an active point of every snapshot.
    plan.first_active = (
        first + np.argmax(counts > 0.0, axis=1)
    ).tolist()
    coords = store.coords
    plan.row_x = [coords[sid][0] for sid in row_ids]
    plan.row_y = [coords[sid][1] for sid in row_ids]

    # Segment the span by activation events; each segment gets its own
    # compression over the rows active there, and the batchable columns
    # are those where every *active* row's weight is non-zero.
    boundaries = sorted(
        {t for t in plan.first_active if first < t <= plan.end}
    )
    plan.segments = []
    plan.clean_count = 0
    nonzero = plan.burstiness != 0.0
    segment_starts = [first] + boundaries
    segment_ends = boundaries + [plan.end + 1]
    previous: Optional[_Segment] = None
    for seg_start, seg_end in zip(segment_starts, segment_ends):
        if seg_start >= seg_end:
            continue
        segment = _Segment()
        segment.rows = [
            row for row in range(n_rows) if plan.first_active[row] <= seg_start
        ]
        if previous is not None:
            known = set(previous.rows)
            fresh = [row for row in segment.rows if row not in known]
            reusable = all(
                plan.row_x[row] in previous.x_index for row in fresh
            ) and all(plan.row_y[row] in previous.y_index for row in fresh)
        else:
            reusable = False
        if reusable:
            # Streams share a coordinate lattice, so most activations
            # introduce no new distinct coordinate — the previous
            # segment's compression extends to the grown row set.
            segment.cxs = previous.cxs
            segment.cys = previous.cys
            segment.x_index = previous.x_index
            segment.y_index = previous.y_index
        else:
            segment.cxs = sorted({plan.row_x[row] for row in segment.rows})
            segment.cys = sorted({plan.row_y[row] for row in segment.rows})
            segment.x_index = {x: i for i, x in enumerate(segment.cxs)}
            segment.y_index = {y: i for i, y in enumerate(segment.cys)}
        segment.grid_x = [
            segment.x_index[plan.row_x[row]] for row in segment.rows
        ]
        segment.grid_y = [
            segment.y_index[plan.row_y[row]] for row in segment.rows
        ]
        local = slice(seg_start - first, seg_end - first)
        segment.clean_columns = (
            np.flatnonzero(nonzero[segment.rows, local].all(axis=0))
            + (seg_start - first)
        ).tolist()
        plan.clean_count += len(segment.clean_columns)
        plan.segments.append(segment)
        previous = segment
    return plan


def _scatter_grids(
    plans: List[_TermPlan], m_pad: int, k_pad: int
) -> np.ndarray:
    """Phase 2a: pack every batchable snapshot into one padded tensor.

    Accumulation follows the legacy order — rows ascending (the
    sorted-by-repr point order) within each snapshot — via one
    sequential ``bincount`` per mine call.
    """
    total = sum(plan.clean_count for plan in plans)
    flat_indices: List[np.ndarray] = []
    flat_values: List[np.ndarray] = []
    offset = 0
    for plan in plans:
        for segment in plan.segments:
            clean = segment.clean_columns
            if not clean:
                continue
            s = len(clean)
            n_rows = len(segment.rows)
            weights = plan.burstiness[np.ix_(segment.rows, clean)]
            cell = (
                np.asarray(segment.grid_y, dtype=np.int64) * k_pad
                + np.asarray(segment.grid_x, dtype=np.int64)
            )
            base = (offset + np.arange(s, dtype=np.int64)) * (m_pad * k_pad)
            # Row-major: all of row 0's snapshots, then row 1's, … so
            # cells shared by several rows accumulate in ascending-row
            # (sorted-by-repr point) order, matching the legacy grid.
            flat_indices.append(
                (base[None, :] + cell[:, None]).reshape(n_rows * s)
            )
            flat_values.append(weights.reshape(n_rows * s))
            offset += s
    grids = np.zeros(total * m_pad * k_pad)
    if flat_indices:
        grids = np.bincount(
            np.concatenate(flat_indices),
            weights=np.concatenate(flat_values),
            minlength=total * m_pad * k_pad,
        )
    return grids.reshape(total, m_pad, k_pad)


class _PendingExtraction:
    """One snapshot's in-progress iterated R-Bursty extraction.

    Lives across extraction rounds: every round the still-positive
    remainder of each pending snapshot is compressed (per-snapshot, so
    the grid is exact with no cleanliness precondition) and joins one
    shared :func:`~repro.columnar.kernels.batched_first_rectangles`
    call; the winner is retired and the snapshot stays pending while
    points remain.
    """

    __slots__ = ("found", "px", "py", "pw", "live")

    def __init__(
        self,
        found: List[Bounds],
        px: List[float],
        py: List[float],
        pw: List[float],
        live: List[int],
    ) -> None:
        self.found = found
        self.px = px
        self.py = py
        self.pw = pw
        self.live = live


def _resolve_rectangles(
    plans: List[_TermPlan],
    batch: Optional[Tuple[np.ndarray, ...]],
) -> List[Dict[int, List[Bounds]]]:
    """Phase 2c: complete every snapshot's R-Bursty extraction.

    Seeds each snapshot with its batched first rectangle (when clean),
    then resolves all remaining extractions — unclean first rounds and
    second-and-later rectangles alike — in shared batched-Kadane
    rounds.  Snapshot ``local`` columns with no entry in the result map
    had no rectangle at all.
    """
    all_results: List[Dict[int, List[Bounds]]] = []
    pending: List[_PendingExtraction] = []
    offset = 0
    for plan in plans:
        decoded = _decode_batch(plan, offset, batch)
        offset += plan.clean_count
        results: Dict[int, List[Bounds]] = {}
        all_results.append(results)
        first, end = plan.first, plan.end
        n_rows = len(plan.row_ids)
        columns = plan.columns
        first_active = plan.first_active
        row_x, row_y = plan.row_x, plan.row_y
        activations = dict.fromkeys(first_active, True)
        rows: List[int] = []
        active_x: List[float] = []
        active_y: List[float] = []
        all_active = False
        for timestamp in range(first, end + 1):
            local = timestamp - first
            if timestamp in activations:
                rows = [
                    r for r in range(n_rows) if first_active[r] <= timestamp
                ]
                all_active = len(rows) == n_rows
                active_x = row_x if all_active else [row_x[r] for r in rows]
                active_y = row_y if all_active else [row_y[r] for r in rows]
            first_rect = decoded.get(local, _UNBATCHED)
            if first_rect is None:
                continue  # the batch proved there is no rectangle
            column = columns[local]
            weights = column if all_active else [column[r] for r in rows]
            found: List[Bounds] = []
            if first_rect is _UNBATCHED:
                live = list(range(len(weights)))
            else:
                found.append(first_rect)
                _, x0, y0, x1, y1 = first_rect
                live = [
                    i
                    for i in range(len(weights))
                    if not (
                        x0 <= active_x[i] <= x1 and y0 <= active_y[i] <= y1
                    )
                ]
            results[local] = found
            if live:
                pending.append(
                    _PendingExtraction(found, active_x, active_y, weights, live)
                )

    while pending:
        round_states: List[_PendingExtraction] = []
        compressions: List[Tuple[List[float], List[float]]] = []
        grids: List[List[List[float]]] = []
        for state in pending:
            ax: List[float] = []
            ay: List[float] = []
            aw: List[float] = []
            pw = state.pw
            px = state.px
            py = state.py
            for i in state.live:
                w = pw[i]
                if w != 0.0:
                    ax.append(px[i])
                    ay.append(py[i])
                    aw.append(w)
            if not any(w > 0.0 for w in aw):
                continue  # extraction finished for this snapshot
            cxs = sorted(set(ax))
            cys = sorted(set(ay))
            x_index = {x: i for i, x in enumerate(cxs)}
            y_index = {y: i for i, y in enumerate(cys)}
            grid = [[0.0] * len(cxs) for _ in cys]
            for i, w in enumerate(aw):
                grid[y_index[ay[i]]][x_index[ax[i]]] += w
            round_states.append(state)
            compressions.append((cxs, cys))
            grids.append(grid)
        if not round_states:
            break
        m_pad = max(len(cys) for _, cys in compressions)
        k_pad = max(len(cxs) for cxs, _ in compressions)
        tensor = np.zeros((len(grids), m_pad, k_pad))
        for index, grid in enumerate(grids):
            tensor[index, : len(grid), : len(grid[0])] = grid
        found_mask, score, y_lo, y_hi, x_lo, x_hi = (
            kernels.batched_first_rectangles(tensor)
        )
        pending = []
        for index, state in enumerate(round_states):
            if not found_mask[index]:
                continue
            cxs, cys = compressions[index]
            bounds = (
                float(score[index]),
                cxs[x_lo[index]],
                cys[y_lo[index]],
                cxs[x_hi[index]],
                cys[y_hi[index]],
            )
            state.found.append(bounds)
            _, x0, y0, x1, y1 = bounds
            px, py = state.px, state.py
            state.live = [
                i
                for i in state.live
                if not (x0 <= px[i] <= x1 and y0 <= py[i] <= y1)
            ]
            if state.live:
                pending.append(state)
    return all_results


def _decode_batch(
    plan: _TermPlan,
    offset: int,
    batch: Optional[Tuple[np.ndarray, ...]],
) -> Dict[int, Optional[Bounds]]:
    """Phase 2b: map one term's batched results back to coordinates."""
    decoded: Dict[int, Optional[Bounds]] = {}
    if batch is None:
        return decoded
    found, score, y_lo, y_hi, x_lo, x_hi = batch
    slot = offset
    for segment in plan.segments:
        cxs, cys = segment.cxs, segment.cys
        for column in segment.clean_columns:
            if found[slot]:
                decoded[column] = (
                    float(score[slot]),
                    cxs[x_lo[slot]],
                    cys[y_lo[slot]],
                    cxs[x_hi[slot]],
                    cys[y_hi[slot]],
                )
            else:
                decoded[column] = None
            slot += 1
    return decoded


def _finish_term(
    plan: _TermPlan,
    store: LocationStore,
    config: STLocalConfig,
    rectangle_map: Dict[int, List[Bounds]],
) -> STLocalTermTracker:
    """Phase 3: region lifecycles and histories off the matrices."""
    tracker = ColumnarTermTracker(
        store.locations, config=config, index=store.index, copy_locations=False
    )
    first, end = plan.first, plan.end
    row_of = plan.row_of
    n_rows = len(plan.row_ids)

    tracker.fast_forward(first)
    rectangle_history = tracker.rectangle_history
    key_by_geometry = config.key_by_geometry

    span = end - first + 1
    burstiness = plan.burstiness
    regions: List[Tuple[Hashable, _Region]] = []
    #: key → prune timestamp of its latest region; a same-key rectangle
    #: is ignored while ``timestamp <= blocked_until`` (the region is
    #: still in the sequence map during its pruning snapshot).
    blocked_until: Dict[Hashable, int] = {}
    #: members → full-span r-score series of that member set.  The
    #: per-snapshot value is start-independent (the same sequential
    #: member-row additions), so recurring rectangles share one series.
    series_cache: Dict[FrozenSet[Hashable], List[float]] = {}
    open_deltas = [0] * (span + 1)

    empty: List[Bounds] = []
    for timestamp in range(first, end + 1):
        local = timestamp - first
        rectangles = rectangle_map.get(local, empty)
        rectangle_history.append(len(rectangles))

        for _, min_x, min_y, max_x, max_y in rectangles:
            members = store.members_of(min_x, min_y, max_x, max_y)
            if not members:
                # Memberless rectangles are dropped, as in the tracker:
                # they cannot score and would alias to one frozenset().
                continue
            key: Hashable
            if key_by_geometry:
                key = (min_x, min_y, max_x, max_y)
            else:
                key = members
            if timestamp <= blocked_until.get(key, -1):
                continue
            series = series_cache.get(members)
            if series is None:
                member_rows = [
                    row_of[sid]
                    for sid in sorted(members, key=repr)
                    if sid in row_of
                ]
                accumulated = np.zeros(span)
                for row in member_rows:
                    accumulated += burstiness[row]
                series = accumulated.tolist()
                series_cache[members] = series
            # Scalar lifecycle scan: the same sequential running total
            # the per-snapshot loop would accumulate, stopped at the
            # pruning snapshot (Algorithm 2, lines 11-12).
            total = 0.0
            prune_timestamp = end + 1
            prune_bound = span
            for column_index in range(local, span):
                total += series[column_index]
                if total < 0.0:
                    prune_timestamp = first + column_index
                    prune_bound = column_index + 1
                    break
            values = series[local:prune_bound]
            region = _Region(
                region=Rectangle(min_x, min_y, max_x, max_y),
                members=members,
                start=timestamp,
                values=values,
                prune_timestamp=prune_timestamp,
            )
            regions.append((key, region))
            blocked_until[key] = prune_timestamp
            open_deltas[local] += 1
            if prune_timestamp <= end:
                open_deltas[prune_timestamp - first] -= 1

    running_open = 0
    open_history = tracker.open_history
    for local in range(span):
        running_open += open_deltas[local]
        open_history.append(running_open)

    # Archive pruned regions in the legacy order: by pruning snapshot,
    # then by position in the sequence map (creation order).
    archived = tracker._archived
    pruned = [
        (region.prune_timestamp, index, key, region)
        for index, (key, region) in enumerate(regions)
        if region.prune_timestamp <= end
    ]
    pruned.sort(key=lambda item: (item[0], item[1]))
    for _, _, _, region in pruned:
        for timeframe, score in region.windows():
            archived.append((region.region, region.members, timeframe, score))

    tracker._clock = end + 1
    tracker._sequences = {
        key: region.to_sequence()
        for key, region in regions
        if region.prune_timestamp > end
    }

    # Reconstruct the per-stream expectation models so the tracker can
    # keep processing (or fork) exactly as a replayed one would.
    first_active = plan.first_active
    for row, sid in enumerate(plan.row_ids):
        model = config.baseline_factory()
        model.prime_zeros(first_active[row])
        model._count += (end + 1) - first_active[row]
        model._total = float(plan.totals[row])
        tracker._models[sid] = model

    if config.track_history:
        history = tracker._history
        nz_rows, nz_cols = np.nonzero(plan.burstiness)
        values = plan.burstiness[nz_rows, nz_cols].tolist()
        timestamps = (first + nz_cols).tolist()
        # np.nonzero is row-major, so each row's entries are contiguous
        # and ascending — one dict(zip(…)) per stream.
        counts_per_row = np.bincount(nz_rows, minlength=n_rows).tolist()
        position = 0
        for row, count in enumerate(counts_per_row):
            if count:
                history[plan.row_ids[row]] = dict(
                    zip(
                        timestamps[position : position + count],
                        values[position : position + count],
                    )
                )
                position += count
        tracker._burst_rows = plan.burstiness.tolist()
        tracker._burst_row_of = plan.row_of
        tracker._burst_first = first
    return tracker


def sweep_terms(
    term_snapshots: Dict[str, Dict[int, Dict[Hashable, float]]],
    store: LocationStore,
    config: STLocalConfig,
    timeline: int,
    truncate_tails: bool = True,
) -> Dict[str, STLocalTermTracker]:
    """Mine many terms' regional state off their sparse snapshot slices.

    The multi-term driver: per-term matrices are prepared first, every
    batchable snapshot across *all* terms shares one padded-tensor
    Kadane, and the scalar finish runs per term.  Each returned tracker
    is byte-equivalent to feeding the same snapshots through
    :meth:`~repro.core.stlocal.STLocalTermTracker.process` one
    timestamp at a time.
    """
    trackers: Dict[str, STLocalTermTracker] = {}
    plans: List[Tuple[str, _TermPlan]] = []
    for term, snapshots in term_snapshots.items():
        if snapshots:
            plans.append(
                (
                    term,
                    _prepare_term(
                        snapshots, store, config, timeline, truncate_tails
                    ),
                )
            )
        else:
            trackers[term] = STLocalTermTracker(
                store.locations,
                config=config,
                index=store.index,
                copy_locations=False,
            )

    batch: Optional[Tuple[np.ndarray, ...]] = None
    if plans:
        sizes = [
            (len(segment.cys), len(segment.cxs))
            for _, plan in plans
            for segment in plan.segments
        ]
        m_pad = max(m for m, _ in sizes)
        k_pad = max(k for _, k in sizes)
        grids = _scatter_grids([plan for _, plan in plans], m_pad, k_pad)
        if len(grids):
            batch = kernels.batched_first_rectangles(grids)

    rectangle_maps = _resolve_rectangles([plan for _, plan in plans], batch)
    for (term, plan), rectangle_map in zip(plans, rectangle_maps):
        trackers[term] = _finish_term(plan, store, config, rectangle_map)
    return trackers


def sweep_term(
    snapshots: Dict[int, Dict[Hashable, float]],
    store: LocationStore,
    config: STLocalConfig,
    timeline: int,
    truncate_tails: bool = True,
) -> STLocalTermTracker:
    """Mine one term's regional state from its sparse snapshot slices.

    Single-term convenience wrapper over the :func:`sweep_terms`
    driver.

    Args:
        snapshots: The term's non-empty per-timestamp slices (the
            :meth:`~repro.streams.FrequencyTensor.term_snapshots` shape).
        store: Shared location columns for this mine call.
        config: STLocal settings (must pass :func:`columnar_supported`).
        timeline: Collection timeline length.
        truncate_tails: Stop after the term's last active snapshot (the
            batch pipeline's tail truncation).

    Returns:
        A tracker byte-equivalent to feeding the same snapshots through
        :meth:`STLocalTermTracker.process` one timestamp at a time.
    """
    return sweep_terms(
        {"": snapshots}, store, config, timeline, truncate_tails
    )[""]
