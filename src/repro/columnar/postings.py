"""Sorted posting arrays behind the ``PostingList`` API.

A :class:`~repro.search.inverted_index.PostingList` sorts Python
``Posting`` objects with a per-element key callable and keeps a dict for
random access — fine per query term, expensive when the search layer
builds postings for an entire vocabulary.  :class:`PostingArray` is the
columnar drop-in: scores, tiebreaks and document ids live in parallel
arrays, ordering is one ``np.lexsort`` over the same ``(-score,
crc32(doc))`` key, and merge/compaction are array concatenations.

Order is *byte-identical* to the legacy list: ``lexsort`` is a stable
mergesort over the identical key values, so equal keys preserve input
order exactly as Python's stable ``sorted`` does.  ``Posting`` objects
are materialised lazily — the Threshold Algorithm usually touches only
a short sorted-access prefix.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence

import numpy as np

from repro.search.inverted_index import Posting, PostingList, rank_tiebreak

__all__ = ["PackedPostingArray", "PostingArray"]


class PostingArray(PostingList):
    """A term's postings as struct-of-arrays, sorted by score descending.

    Implements the full sorted-access / random-access protocol of
    :class:`~repro.search.inverted_index.PostingList` (TA, delta merge
    and compaction all operate on it unchanged).

    Args:
        doc_ids: Document identifiers, in scoring order.
        scores: Per-document scores, parallel to ``doc_ids``.
        tiebreaks: Optional precomputed ``rank_tiebreak`` values; computed
            on demand when omitted.
        presorted: Skip the sort when the inputs are already in posting
            order (e.g. the output of :meth:`merged_with`).
    """

    def __init__(
        self,
        doc_ids: Sequence[Hashable],
        scores: Sequence[float],
        tiebreaks: Optional[Sequence[int]] = None,
        presorted: bool = False,
    ) -> None:
        # Deliberately *not* calling PostingList.__init__: the arrays
        # replace its _sorted/_by_doc storage wholesale.
        ids = list(doc_ids)
        score_arr = np.asarray(scores, dtype="<f8")
        if tiebreaks is None:
            tie_arr = np.fromiter(
                (rank_tiebreak(doc_id) for doc_id in ids),
                dtype="<i8",
                count=len(ids),
            )
        else:
            tie_arr = np.asarray(tiebreaks, dtype="<i8")
        if not presorted and len(ids) > 1:
            # Stable sort by (-score, tiebreak): lexsort keys are listed
            # least-significant first.
            order = np.lexsort((tie_arr, -score_arr))
            ids = [ids[i] for i in order]
            score_arr = score_arr[order]
            tie_arr = tie_arr[order]
        self._ids: List[Hashable] = ids
        self._scores = score_arr
        self._ties = tie_arr
        self._score_list: Optional[List[float]] = None
        self._postings: Dict[int, Posting] = {}
        self._by_doc_lazy: Optional[Dict[Hashable, float]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_postings(cls, postings: Sequence[Posting]) -> "PostingArray":
        """Build from ``Posting`` objects (any order)."""
        return cls(
            [p.doc_id for p in postings], [p.score for p in postings]
        )

    @classmethod
    def from_columns(
        cls,
        doc_ids: Sequence[Hashable],
        scores,
        tiebreaks,
        random_access: Optional[Dict[Hashable, float]] = None,
    ) -> "PostingArray":
        """Wrap already-sorted columns without copying or re-sorting.

        The segment-store load path (:mod:`repro.store`) hands in
        memory-mapped score/tiebreak slices; they are served as-is.
        ``random_access`` optionally seeds the full random-access map —
        a reloaded *pruned* list knows more documents than its sorted
        columns expose (see
        :meth:`~repro.search.inverted_index.PostingList.truncated`).
        """
        array = cls(doc_ids, scores, tiebreaks=tiebreaks, presorted=True)
        if random_access is not None:
            array._by_doc_lazy = dict(random_access)
        return array

    # ------------------------------------------------------------------
    @property
    def _by_doc(self) -> Dict[Hashable, float]:
        """Random-access map, built on first use."""
        if self._by_doc_lazy is None:
            self._by_doc_lazy = dict(zip(self._ids, self._float_scores()))
        return self._by_doc_lazy

    @_by_doc.setter
    def _by_doc(self, value: Dict[Hashable, float]) -> None:
        self._by_doc_lazy = dict(value)

    def _float_scores(self) -> List[float]:
        if self._score_list is None:
            self._score_list = self._scores.tolist()
        return self._score_list

    def _posting_at(self, rank: int) -> Posting:
        posting = self._postings.get(rank)
        if posting is None:
            posting = Posting(
                doc_id=self._ids[rank], score=self._float_scores()[rank]
            )
            self._postings[rank] = posting
        return posting

    # ------------------------------------------------------------------
    # PostingList protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Posting]:
        return (self._posting_at(rank) for rank in range(len(self._ids)))

    def sorted_access(self, rank: int) -> Optional[Posting]:
        """The posting at a given rank, or ``None`` past the end."""
        if 0 <= rank < len(self._ids):
            return self._posting_at(rank)
        return None

    def random_access(self, doc_id: Hashable) -> Optional[float]:
        """Score of a document in this list, or ``None`` if absent."""
        return self._by_doc.get(doc_id)

    def top(self, k: int) -> List[Posting]:
        """The ``k`` best postings."""
        return [self._posting_at(rank) for rank in range(min(k, len(self._ids)))]

    def truncated(self, depth: int) -> "PostingArray":
        """Impact-ordered pruning with full random access retained."""
        clone = PostingArray(
            self._ids[:depth],
            self._scores[:depth],
            tiebreaks=self._ties[:depth],
            presorted=True,
        )
        clone._by_doc_lazy = dict(self._by_doc)
        return clone

    # ------------------------------------------------------------------
    # Columnar extensions
    # ------------------------------------------------------------------
    #: True when every doc id appears at most once in this list.  Only
    #: construction paths that *guarantee* it set the flag (the segment
    #: store's load path, whose save input is a one-entry-per-document
    #: relation); the single-list scan shortcut in
    #: :mod:`repro.search.topk` requires it and falls back to the full
    #: scan otherwise.
    ids_unique: bool = False

    def prefix_columns(self, k: int):
        """The first ``k`` postings' ``(doc_ids, scores, tiebreaks)``.

        The columns are sorted by the ranking key, so this prefix *is*
        the list's top-``k`` — packed subclasses serve it from the
        covering blocks alone.
        """
        return self._ids[:k], self._scores[:k], self._ties[:k]

    def columns(self):
        """The raw sorted columns ``(doc_ids, scores, tiebreaks)``.

        The vectorized top-k kernel (:mod:`repro.search.topk`) reads
        these directly — no ``Posting`` materialisation, no recomputed
        ``crc32`` tiebreaks.  Callers must treat the arrays as
        immutable.
        """
        return self._ids, self._scores, self._ties

    def merged_with(self, delta: "PostingArray") -> "PostingArray":
        """Merge another sorted array into a fresh sorted array.

        Equivalent to compacting a
        :class:`~repro.live.index.DeltaPostingList` built over the two:
        concatenating base-then-delta and stable-sorting by the shared
        key yields the exact two-way merge order, base side preferred
        on full-key ties.
        """
        ids = self._ids + delta._ids
        scores = np.concatenate((self._scores, delta._scores))
        ties = np.concatenate((self._ties, delta._ties))
        return PostingArray(ids, scores, tiebreaks=ties)


class PackedPostingArray(PostingArray):
    """A :class:`PostingArray` over block-compressed stored columns.

    Wraps a packed segment term source (``_PackedTermSource`` in
    :mod:`repro.store.segments`) and defers every column decode to
    first touch: ``len`` and block-boundary score reads cost no decode
    at all, the top-k kernel pulls score/tiebreak blocks individually
    through the ``packed`` attribute, and the dense-column protocol
    below (iteration, merge, re-save) materialises full columns only
    when actually used.  Decoded values are byte-identical to the raw
    layout, so every consumer sees the same postings either way.
    """

    class _DecodedColumn:
        """Non-data descriptor: decode on first touch, then vanish.

        The first attribute access decodes the column and writes the
        result into the instance ``__dict__``; because the descriptor
        defines no ``__set__``, the instance attribute shadows it from
        then on — dense consumers (the TA reference path iterates
        per-posting) pay zero per-access overhead after the decode.
        """

        def __init__(self, decode: str) -> None:
            self._decode = decode

        def __set_name__(self, owner, name: str) -> None:
            self._name = name

        def __get__(self, instance, owner=None):
            if instance is None:
                return self
            value = getattr(instance.packed, self._decode)()
            instance.__dict__[self._name] = value
            return value

    def __init__(
        self,
        source,
        random_access: Optional[Dict[Hashable, float]] = None,
    ) -> None:
        # Like the parent, no PostingList.__init__: columns live in the
        # packed source until first dense touch.
        self.packed = source
        self._score_list = None
        self._postings = {}
        self._by_doc_lazy = (
            None if random_access is None else dict(random_access)
        )

    # Dense columns, decoded on demand.  The descriptors keep the
    # parent's protocol methods working unchanged against packed
    # storage.
    _ids = _DecodedColumn("ids")  # type: ignore[assignment]
    _scores = _DecodedColumn("scores")  # type: ignore[assignment]
    _ties = _DecodedColumn("ties")  # type: ignore[assignment]

    def __len__(self) -> int:
        return int(self.packed.length)

    def prefix_columns(self, k: int):
        if all(
            name in self.__dict__ for name in ("_ids", "_scores", "_ties")
        ):  # already densely decoded — plain slices, no descriptor pull
            return super().prefix_columns(k)
        source = self.packed
        return (
            source.ids_prefix(k),
            source.scores_slice(0, k),
            source.ties_slice(0, k),
        )
