"""Struct-of-arrays document store with a term-major index.

:class:`~repro.streams.collection.SpatiotemporalCollection` is the
ingestion-friendly representation — documents live in per-stream,
per-timestamp dict-of-lists.  Analytical passes (posting construction,
batch mining) want the transpose: *for one term, give me every document
row / stream / timestamp at once*.  :class:`ColumnarCollection` is that
transpose, built in one pass:

* per-document columns — ``doc_ids``, int-coded ``stream_codes``,
  ``timestamps``, precomputed ranking tiebreaks — in exactly the
  ``collection.documents()`` iteration order (so stable sorts over the
  columns reproduce legacy orderings bit-for-bit);
* a CSR-style term-major index: for every int-coded term, the document
  rows containing it (ascending) and the in-document frequencies;
* stream coordinate columns for vectorized geometry.

The store is a frozen snapshot, like
:class:`~repro.streams.frequency.FrequencyTensor`: collection mutations
after construction are not reflected.  It also duck-types the tensor
protocol (``timeline`` / ``terms`` / ``term_snapshots`` / ``sequence`` /
``streams_with`` / ``total``), so :class:`repro.pipeline.BatchMiner`
can mine straight off it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

import numpy as np

from repro.search.inverted_index import rank_tiebreak
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.document import Document

__all__ = ["ColumnarCollection"]


class ColumnarCollection:
    """Columnar snapshot of a spatiotemporal collection.

    Args:
        collection: The source collection; contents are copied.
    """

    def __init__(self, collection: SpatiotemporalCollection) -> None:
        self.timeline = collection.timeline
        self.stream_ids: List[Hashable] = collection.stream_ids
        self._stream_code: Dict[Hashable, int] = {
            sid: code for code, sid in enumerate(self.stream_ids)
        }
        locations = collection.locations()
        self.stream_x = np.array(
            [locations[sid].x for sid in self.stream_ids], dtype=float
        )
        self.stream_y = np.array(
            [locations[sid].y for sid in self.stream_ids], dtype=float
        )
        self._locations = locations

        doc_ids: List[Hashable] = []
        documents: List[Document] = []
        stream_codes: List[int] = []
        timestamps: List[int] = []
        vocabulary: Dict[str, int] = {}
        entry_terms: List[int] = []
        entry_docs: List[int] = []
        entry_counts: List[int] = []
        for row, document in enumerate(collection.documents()):
            doc_ids.append(document.doc_id)
            documents.append(document)
            stream_codes.append(self._stream_code[document.stream_id])
            timestamps.append(document.timestamp)
            for term, count in document.term_counts().items():
                tid = vocabulary.setdefault(term, len(vocabulary))
                entry_terms.append(tid)
                entry_docs.append(row)
                entry_counts.append(count)

        self.doc_ids = doc_ids
        self.documents = documents
        self.stream_codes = np.asarray(stream_codes, dtype=np.int32)
        self.timestamps = np.asarray(timestamps, dtype=np.int32)
        self.tiebreaks = np.fromiter(
            (rank_tiebreak(doc_id) for doc_id in doc_ids),
            dtype=np.int64,
            count=len(doc_ids),
        )
        self._vocabulary = vocabulary

        terms_arr = np.asarray(entry_terms, dtype=np.int64)
        # Stable sort groups entries by term while keeping document rows
        # ascending inside each group (entries were appended doc-major).
        order = np.argsort(terms_arr, kind="stable")
        self._entry_docs = np.asarray(entry_docs, dtype=np.int64)[order]
        self._entry_counts = np.asarray(entry_counts, dtype=np.int64)[order]
        group_sizes = np.bincount(terms_arr, minlength=len(vocabulary))
        self._indptr = np.concatenate(
            ([0], np.cumsum(group_sizes))
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # Document / stream access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.doc_ids)

    @property
    def document_count(self) -> int:
        return len(self.doc_ids)

    def locations(self):
        """Map of stream id → projected location (tensor-compat)."""
        return dict(self._locations)

    # ------------------------------------------------------------------
    # Term-major access
    # ------------------------------------------------------------------
    @property
    def terms(self) -> Set[str]:
        """All indexed terms (tensor-compat)."""
        return set(self._vocabulary)

    def term_id(self, term: str) -> Optional[int]:
        """The int code of a term, or ``None`` when never observed."""
        return self._vocabulary.get(term)

    def doc_rows(self, term: str) -> np.ndarray:
        """Rows of the documents containing ``term`` (ascending)."""
        tid = self._vocabulary.get(term)
        if tid is None:
            return np.empty(0, dtype=np.int64)
        return self._entry_docs[self._indptr[tid] : self._indptr[tid + 1]]

    def frequencies(self, term: str) -> np.ndarray:
        """In-document frequencies parallel to :meth:`doc_rows`."""
        tid = self._vocabulary.get(term)
        if tid is None:
            return np.empty(0, dtype=np.int64)
        return self._entry_counts[self._indptr[tid] : self._indptr[tid + 1]]

    # ------------------------------------------------------------------
    # Frequency-tensor protocol
    # ------------------------------------------------------------------
    def total(self, term: str) -> float:
        """Total mass of a term across the collection."""
        return float(self.frequencies(term).sum())

    def streams_with(self, term: str) -> List[Hashable]:
        """Streams in which the term occurs, in first-occurrence order.

        Matches :meth:`repro.streams.FrequencyTensor.streams_with`,
        whose dict-of-dicts records streams in document order.
        """
        rows = self.doc_rows(term)
        seen: Dict[Hashable, None] = {}
        for code in self.stream_codes[rows].tolist():
            seen.setdefault(self.stream_ids[code], None)
        return list(seen)

    def sequence(self, term: str, stream_id: Hashable) -> List[float]:
        """The term's dense frequency sequence for one stream."""
        dense = [0.0] * self.timeline
        code = self._stream_code.get(stream_id)
        if code is None:
            return dense
        rows = self.doc_rows(term)
        counts = self.frequencies(term)
        mask = self.stream_codes[rows] == code
        for row_ts, count in zip(
            self.timestamps[rows[mask]].tolist(),
            counts[mask].tolist(),
        ):
            dense[row_ts] += count
        return dense

    def term_snapshots(self, term: str) -> Dict[int, Dict[Hashable, float]]:
        """All non-empty per-timestamp slices of a term at once.

        Same shape and values as
        :meth:`repro.streams.FrequencyTensor.term_snapshots`: integer
        per-document counts aggregate exactly regardless of order.
        """
        rows = self.doc_rows(term)
        counts = self.frequencies(term)
        snapshots: Dict[int, Dict[Hashable, float]] = {}
        codes = self.stream_codes[rows].tolist()
        times = self.timestamps[rows].tolist()
        for code, timestamp, count in zip(codes, times, counts.tolist()):
            slice_ = snapshots.setdefault(timestamp, {})
            sid = self.stream_ids[code]
            slice_[sid] = slice_.get(sid, 0.0) + count
        return snapshots

    # ------------------------------------------------------------------
    def member_mask(self, stream_ids) -> np.ndarray:
        """Boolean per-stream-code membership mask for a stream set."""
        mask = np.zeros(len(self.stream_ids), dtype=bool)
        for sid in stream_ids:
            code = self._stream_code.get(sid)
            if code is not None:
                mask[code] = True
        return mask
