"""NumPy-backed columnar storage kernel.

The paper's pipeline — burstiness scoring, maximal-segment discovery,
spatial discrepancy over term streams — is expressed everywhere else in
this repository as pure-Python loops over dicts and object lists.  On
the single-core target that caps throughput well below what the
hardware allows, and the wins available are algorithmic/vectorized, not
parallel.  This package is the hardware-conscious storage layer the
rest of the system delegates to:

* :mod:`repro.columnar.kernels` — numerical kernels (burst sweeps,
  prefix-sum maximal segments, spatial discrepancy grids) that are
  *byte-identical* to the pure-Python reference implementations they
  replace: NumPy's sequential ``cumsum``/``minimum.accumulate`` and
  elementwise arithmetic perform the same IEEE-754 operations in the
  same order, and an adaptive scalar path takes over below the array
  sizes where NumPy's per-call overhead dominates;
* :mod:`repro.columnar.collection` — :class:`ColumnarCollection`, a
  struct-of-arrays document store (int-coded terms, timestamps,
  stream coordinates, a term-major CSR index) replacing dict-of-lists
  traversals in the search layer;
* :mod:`repro.columnar.postings` — :class:`PostingArray`, sorted
  ``(doc, score)`` ndarrays with vectorized sort/merge/top-k behind the
  existing :class:`~repro.search.inverted_index.PostingList` API;
* :mod:`repro.columnar.sweep` — the columnar STLocal burst sweep used
  by :class:`repro.pipeline.BatchMiner`, producing trackers whose state
  is indistinguishable from a snapshot-by-snapshot replay.

Every consumer keeps its pure-Python path as the reference oracle; the
differential tests (``tests/test_columnar_differential.py``) hold the
two byte-equal on random corpora.

Submodule attributes are resolved lazily (PEP 562) so that low-level
modules (e.g. :mod:`repro.temporal.max_segments`) can import
:mod:`repro.columnar.kernels` without dragging the whole package — and
its higher-layer dependencies — into their import graph.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columnar.collection import ColumnarCollection
    from repro.columnar.postings import PostingArray
    from repro.columnar.sweep import columnar_supported, sweep_term

__all__ = [
    "ColumnarCollection",
    "PostingArray",
    "columnar_supported",
    "sweep_term",
]

_EXPORTS = {
    "ColumnarCollection": ("repro.columnar.collection", "ColumnarCollection"),
    "PostingArray": ("repro.columnar.postings", "PostingArray"),
    "columnar_supported": ("repro.columnar.sweep", "columnar_supported"),
    "sweep_term": ("repro.columnar.sweep", "sweep_term"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
