"""The program-rule base class.

A :class:`ProgramRule` is the whole-program sibling of
:class:`repro.analysis.base.Rule`: same ``name``/``description``
contract (so ``--list-rules``, ``--select``/``--ignore`` and
``# repro: noqa[...]`` treat both kinds uniformly), but ``check``
receives the assembled :class:`~repro.analysis.program.graph.ProgramGraph`
instead of one module's AST, and runs once per analysis run rather
than once per file.

Scoping differs too: a per-file rule is scoped by which *files* it
runs on; a program rule sees every summarized module (the graph is
only sound when whole) and instead applies its configured scopes to
the *anchor* of each finding — the function whose contract is
violated — via :meth:`ProgramRule.in_scope`.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.program.graph import ProgramGraph
from repro.analysis.program.summary import FunctionSummary

__all__ = ["ProgramRule"]


class ProgramRule(abc.ABC):
    """One cross-module project invariant."""

    #: Registry key; also the ``# repro: noqa[<name>]`` suppression key.
    name: ClassVar[str] = ""
    #: One-line summary for ``--list-rules`` and reports.
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def check(
        self, graph: ProgramGraph, config: AnalysisConfig
    ) -> Iterator[Finding]:
        """Yield every violation of this rule across the program."""

    def in_scope(
        self, func: FunctionSummary, graph: ProgramGraph, config: AnalysisConfig
    ) -> bool:
        """Does this rule's scope cover the module defining ``func``?"""
        return config.applies(self.name, graph.path_of(func.qualname))

    def emit(
        self, graph: ProgramGraph, qualname: str, line: int, message: str
    ) -> Finding:
        """Anchor a finding to a line of the function's defining module."""
        return Finding(
            rule=self.name,
            path=graph.path_of(qualname),
            line=line,
            col=0,
            message=message,
        )
