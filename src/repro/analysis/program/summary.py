"""Per-module summaries: the unit the program analysis caches.

A summary captures exactly what the cross-module fixpoints need and
nothing else, so it round-trips through JSON (for the incremental
cache) and stays cheap to rebuild when a file changes:

* every function/method: its call sites (callee name candidates after
  import-alias resolution, bare-``Name`` argument shapes, enclosing
  ``try``/``except`` guards), raise sites (resolved exception-type
  candidates — a bare ``raise`` resolves to the enclosing handler's
  types), return-value origins (raw array loader, or the result of a
  named call), locals frozen read-only, and which parameters get a
  version-attribute bump or an invalidation-hook call;
* every class: resolved base-name candidates, its methods, and the
  version attributes assigned anywhere in its body;
* the module's import bindings, for cross-module name resolution.

Names are resolved lexically through the module's
:class:`~repro.analysis.imports.ImportMap` (including relative
imports); final resolution to project functions happens in
:class:`~repro.analysis.program.graph.ProgramGraph`.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.imports import ImportMap

# Version-attribute and hook-name patterns shared with the per-file
# cache-invalidation rule, so both layers agree on what "bumping" means.
from repro.analysis.rules.cache_invalidation import HOOK_NAME, VERSION_ATTR

__all__ = [
    "CallSite",
    "ClassSummary",
    "FunctionSummary",
    "Handler",
    "ModuleSummary",
    "RaiseSite",
    "ReturnSite",
    "summarize_module",
]

#: Raw array loaders whose results are writeable until frozen.
RAW_LOADERS = frozenset({"numpy.load", "numpy.memmap", "numpy.fromfile"})

_Def = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclasses.dataclass(frozen=True)
class Handler:
    """One ``except`` clause guarding a call/raise site.

    ``types`` holds resolved type-name candidates; ``("*",)`` is a
    catch-all (bare ``except`` or ``except BaseException``).  A handler
    whose body re-raises (bare ``raise``) is *transparent*: it does not
    absorb the exception for escape purposes.
    """

    types: Tuple[str, ...]
    reraises: bool = False

    def to_jsonable(self) -> List[object]:
        return [list(self.types), self.reraises]

    @classmethod
    def from_jsonable(cls, payload: Sequence[object]) -> "Handler":
        types, reraises = payload
        return cls(
            types=tuple(str(name) for name in list(types)),  # type: ignore[call-overload]
            reraises=bool(reraises),
        )


#: One enclosing ``try``: the tuple of its handlers.
Guard = Tuple[Handler, ...]


def _guards_to_jsonable(guards: Tuple[Guard, ...]) -> List[object]:
    return [[handler.to_jsonable() for handler in level] for level in guards]


def _guards_from_jsonable(payload: Sequence[object]) -> Tuple[Guard, ...]:
    levels: List[Guard] = []
    for level in payload:
        levels.append(
            tuple(
                Handler.from_jsonable(entry)  # type: ignore[arg-type]
                for entry in list(level)  # type: ignore[call-overload]
            )
        )
    return tuple(levels)


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    callee: str  #: import-resolved candidate (``self.m`` / ``pkg.mod.f``)
    line: int
    args: Tuple[Optional[str], ...]  #: bare-``Name`` positional args
    guards: Tuple[Guard, ...]  #: enclosing try handlers, innermost last

    def to_jsonable(self) -> List[object]:
        return [
            self.callee,
            self.line,
            list(self.args),
            _guards_to_jsonable(self.guards),
        ]

    @classmethod
    def from_jsonable(cls, payload: Sequence[object]) -> "CallSite":
        callee, line, args, guards = payload
        return cls(
            callee=str(callee),
            line=int(line),  # type: ignore[arg-type]
            args=tuple(
                None if arg is None else str(arg)
                for arg in list(args)  # type: ignore[call-overload]
            ),
            guards=_guards_from_jsonable(guards),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement; ``types`` empty when unresolvable."""

    types: Tuple[str, ...]
    line: int
    guards: Tuple[Guard, ...]

    def to_jsonable(self) -> List[object]:
        return [list(self.types), self.line, _guards_to_jsonable(self.guards)]

    @classmethod
    def from_jsonable(cls, payload: Sequence[object]) -> "RaiseSite":
        types, line, guards = payload
        return cls(
            types=tuple(str(name) for name in list(types)),  # type: ignore[call-overload]
            line=int(line),  # type: ignore[arg-type]
            guards=_guards_from_jsonable(guards),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class ReturnSite:
    """One ``return`` whose value has a trackable origin.

    ``origin`` is ``"raw"`` for a raw-loader result or ``"call:<name>"``
    for the result of a named call; ``frozen`` records whether the
    function marks that value read-only anywhere in its body.
    """

    origin: str
    frozen: bool
    line: int

    def to_jsonable(self) -> List[object]:
        return [self.origin, self.frozen, self.line]

    @classmethod
    def from_jsonable(cls, payload: Sequence[object]) -> "ReturnSite":
        origin, frozen, line = payload
        return cls(
            origin=str(origin),
            frozen=bool(frozen),
            line=int(line),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """Everything the program fixpoints know about one function."""

    qualname: str  #: ``<module>.<name>`` or ``<module>.<Class>.<name>``
    module: str
    name: str
    cls: Optional[str]  #: bare enclosing class name for methods
    line: int
    is_async: bool
    decorators: Tuple[str, ...]
    params: Tuple[str, ...]
    calls: Tuple[CallSite, ...]
    raises: Tuple[RaiseSite, ...]
    returns: Tuple[ReturnSite, ...]
    bumps_params: Tuple[str, ...]  #: params whose version attr is assigned
    hook_params: Tuple[str, ...]  #: params with an invalidation-hook call
    forwards: Tuple[Tuple[str, str, int], ...]  #: (param, callee, position)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "is_async": self.is_async,
            "decorators": list(self.decorators),
            "params": list(self.params),
            "calls": [site.to_jsonable() for site in self.calls],
            "raises": [site.to_jsonable() for site in self.raises],
            "returns": [site.to_jsonable() for site in self.returns],
            "bumps_params": list(self.bumps_params),
            "hook_params": list(self.hook_params),
            "forwards": [list(entry) for entry in self.forwards],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(payload["qualname"]),
            module=str(payload["module"]),
            name=str(payload["name"]),
            cls=(
                None if payload["cls"] is None else str(payload["cls"])
            ),
            line=int(payload["line"]),
            is_async=bool(payload["is_async"]),
            decorators=tuple(str(d) for d in payload["decorators"]),
            params=tuple(str(p) for p in payload["params"]),
            calls=tuple(
                CallSite.from_jsonable(entry) for entry in payload["calls"]
            ),
            raises=tuple(
                RaiseSite.from_jsonable(entry) for entry in payload["raises"]
            ),
            returns=tuple(
                ReturnSite.from_jsonable(entry)
                for entry in payload["returns"]
            ),
            bumps_params=tuple(str(p) for p in payload["bumps_params"]),
            hook_params=tuple(str(p) for p in payload["hook_params"]),
            forwards=tuple(
                (str(param), str(callee), int(position))
                for param, callee, position in payload["forwards"]
            ),
        )


@dataclasses.dataclass(frozen=True)
class ClassSummary:
    """Hierarchy and versioning facts about one class body."""

    qualname: str
    module: str
    name: str
    line: int
    bases: Tuple[str, ...]  #: import-resolved base-name candidates
    methods: Dict[str, str]  #: method name → function qualname
    version_attrs: Tuple[str, ...]

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": dict(self.methods),
            "version_attrs": list(self.version_attrs),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "ClassSummary":
        return cls(
            qualname=str(payload["qualname"]),
            module=str(payload["module"]),
            name=str(payload["name"]),
            line=int(payload["line"]),
            bases=tuple(str(base) for base in payload["bases"]),
            methods={
                str(key): str(value)
                for key, value in payload["methods"].items()
            },
            version_attrs=tuple(
                str(attr) for attr in payload["version_attrs"]
            ),
        )


@dataclasses.dataclass(frozen=True)
class ModuleSummary:
    """One module's contribution to the program graph."""

    module: str
    path: str
    is_package: bool
    bindings: Dict[str, str]
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassSummary, ...]

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "bindings": dict(self.bindings),
            "functions": [func.to_jsonable() for func in self.functions],
            "classes": [klass.to_jsonable() for klass in self.classes],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=str(payload["module"]),
            path=str(payload["path"]),
            is_package=bool(payload["is_package"]),
            bindings={
                str(key): str(value)
                for key, value in payload["bindings"].items()
            },
            functions=tuple(
                FunctionSummary.from_jsonable(entry)
                for entry in payload["functions"]
            ),
            classes=tuple(
                ClassSummary.from_jsonable(entry)
                for entry in payload["classes"]
            ),
        )


# --------------------------------------------------------------------------
# extraction
# --------------------------------------------------------------------------

_CATCH_ALL = frozenset({"BaseException", ""})

_NESTED_SCOPES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


def _pruned_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested scopes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if not isinstance(child, _NESTED_SCOPES):
                stack.append(child)


def _decorator_names(node: _Def, imports: ImportMap) -> Tuple[str, ...]:
    names: List[str] = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = imports.resolve(target)
        if resolved is None and isinstance(target, ast.Attribute):
            resolved = target.attr
        if resolved is not None:
            names.append(resolved)
    return tuple(names)


def _param_names(node: _Def) -> Tuple[str, ...]:
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    return tuple(arg.arg for arg in ordered)


def _handler_types(
    handler: ast.ExceptHandler, imports: ImportMap
) -> Tuple[str, ...]:
    if handler.type is None:
        return ("*",)
    nodes: List[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        nodes = list(handler.type.elts)
    else:
        nodes = [handler.type]
    names: List[str] = []
    for node in nodes:
        resolved = imports.resolve(node)
        if resolved is None:
            return ("*",)  # dynamic handler type: assume it catches all
        if resolved in _CATCH_ALL:
            return ("*",)
        names.append(resolved)
    return tuple(names)


def _has_bare_reraise(handler: ast.ExceptHandler) -> bool:
    for node in _pruned_walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


class _FunctionWalker:
    """Single pass over one function body collecting all site facts."""

    def __init__(self, func: _Def, imports: ImportMap) -> None:
        self.imports = imports
        self.params = _param_names(func)
        self.calls: List[CallSite] = []
        self.raises: List[RaiseSite] = []
        self.returns: List[ReturnSite] = []
        self.bumps: List[str] = []
        self.hooks: List[str] = []
        self.forwards: List[Tuple[str, str, int]] = []
        self.frozen: List[str] = []
        #: local name → origin ("raw" or "call:<name>")
        self.origins: Dict[str, str] = {}
        self._walk_body(func.body, guards=(), handler_types=())

    # -- helpers -------------------------------------------------------
    def _callee_of(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            return f"super.{func.attr}"
        return self.imports.resolve(func)

    def _origin_of_call(self, call: ast.Call) -> Optional[str]:
        callee = self._callee_of(call)
        if callee is None:
            return None
        if callee in RAW_LOADERS:
            return "raw"
        return f"call:{callee}"

    def _record_call(
        self, call: ast.Call, guards: Tuple[Guard, ...]
    ) -> None:
        callee = self._callee_of(call)
        if callee is None:
            return
        args = tuple(
            arg.id if isinstance(arg, ast.Name) else None
            for arg in call.args
        )
        self.calls.append(
            CallSite(callee=callee, line=call.lineno, args=args, guards=guards)
        )
        for position, arg in enumerate(args):
            if arg is not None and arg in self.params:
                self.forwards.append((arg, callee, position))
        # parameter hook calls: `obj.invalidate_caches()` on a param
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.params
            and HOOK_NAME.search(func.attr) is not None
        ):
            self.hooks.append(func.value.id)

    def _record_raise(
        self,
        node: ast.Raise,
        guards: Tuple[Guard, ...],
        handler_types: Tuple[Tuple[str, Tuple[str, ...]], ...],
    ) -> None:
        types: Tuple[str, ...] = ()
        exc = node.exc
        if exc is None:
            # bare re-raise: the innermost handler's caught types
            if handler_types:
                types = handler_types[-1][1]
        else:
            target = exc.func if isinstance(exc, ast.Call) else exc
            resolved = self.imports.resolve(target)
            if resolved is not None:
                if isinstance(target, ast.Name):
                    # `raise exc` of a handler-bound variable
                    for bound_name, bound_types in reversed(handler_types):
                        if bound_name == target.id:
                            types = bound_types
                            break
                    else:
                        types = (resolved,)
                else:
                    types = (resolved,)
        if types and "*" in types:
            types = ()
        self.raises.append(
            RaiseSite(types=types, line=node.lineno, guards=guards)
        )

    def _record_assign_facts(self, node: ast.stmt) -> None:
        """Track version bumps on params and raw/call value origins."""
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            plain = target
            if isinstance(plain, ast.Subscript):
                plain = plain.value
            if (
                isinstance(plain, ast.Attribute)
                and isinstance(plain.value, ast.Name)
                and plain.value.id in self.params
                and VERSION_ATTR.match(plain.attr) is not None
            ):
                self.bumps.append(plain.value.id)
        if value is not None and isinstance(value, ast.Call):
            origin = self._origin_of_call(value)
            if origin is not None:
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.origins[target.id] = origin

    def _record_freeze(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "writeable"
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "flags"
                    and isinstance(target.value.value, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is False
                ):
                    self.frozen.append(target.value.value.id)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
            and isinstance(node.func.value, ast.Name)
        ):
            for keyword in node.keywords:
                if (
                    keyword.arg == "write"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    self.frozen.append(node.func.value.id)

    def _record_return(self, node: ast.Return) -> None:
        value = node.value
        if value is None:
            return
        origin: Optional[str] = None
        frozen = False
        if isinstance(value, ast.Call):
            origin = self._origin_of_call(value)
        elif isinstance(value, ast.Name):
            origin = self.origins.get(value.id)
            frozen = value.id in self.frozen
        if origin is not None:
            self.returns.append(
                ReturnSite(origin=origin, frozen=frozen, line=node.lineno)
            )

    # -- traversal -----------------------------------------------------
    def _scan_expressions(
        self, node: ast.stmt, guards: Tuple[Guard, ...]
    ) -> None:
        """Record calls/freezes in a statement, skipping nested scopes."""
        for child in _pruned_walk(node):
            if isinstance(child, ast.Call):
                self._record_call(child, guards)
            self._record_freeze(child)

    def _walk_body(
        self,
        body: Sequence[ast.stmt],
        guards: Tuple[Guard, ...],
        handler_types: Tuple[Tuple[str, Tuple[str, ...]], ...],
    ) -> None:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes summarize (or not) on their own
            self._record_assign_facts(stmt)
            if isinstance(stmt, ast.Return):
                self._record_return(stmt)
            if isinstance(stmt, ast.Raise):
                self._record_raise(stmt, guards, handler_types)
                self._scan_expressions(stmt, guards)
                continue
            if isinstance(stmt, ast.Try):
                level: Guard = tuple(
                    Handler(
                        types=_handler_types(handler, self.imports),
                        reraises=_has_bare_reraise(handler),
                    )
                    for handler in stmt.handlers
                )
                self._walk_body(stmt.body, guards + (level,), handler_types)
                for handler in stmt.handlers:
                    caught = _handler_types(handler, self.imports)
                    bound = handler.name or ""
                    self._walk_body(
                        handler.body, guards, handler_types + ((bound, caught),)
                    )
                self._walk_body(stmt.orelse, guards, handler_types)
                self._walk_body(stmt.finalbody, guards, handler_types)
                # the try/except headers carry no executable calls
                continue
            # compound statements: scan headers, recurse into bodies
            nested: List[Sequence[ast.stmt]] = []
            if isinstance(stmt, (ast.If, ast.While)):
                nested = [stmt.body, stmt.orelse]
                self._scan_node_expr(stmt.test, guards)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                nested = [stmt.body, stmt.orelse]
                self._scan_node_expr(stmt.iter, guards)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                nested = [stmt.body]
                for item in stmt.items:
                    self._scan_node_expr(item.context_expr, guards)
            elif isinstance(stmt, ast.Match):
                nested = [case.body for case in stmt.cases]
                self._scan_node_expr(stmt.subject, guards)
            else:
                self._scan_expressions(stmt, guards)
                continue
            for block in nested:
                self._walk_body(block, guards, handler_types)

    def _scan_node_expr(
        self, node: ast.expr, guards: Tuple[Guard, ...]
    ) -> None:
        for child in _pruned_walk(node):
            if isinstance(child, ast.Call):
                self._record_call(child, guards)
            self._record_freeze(child)


def _summarize_function(
    func: _Def,
    module_name: str,
    cls: Optional[str],
    imports: ImportMap,
) -> FunctionSummary:
    walker = _FunctionWalker(func, imports)
    qualname = (
        f"{module_name}.{cls}.{func.name}"
        if cls is not None
        else f"{module_name}.{func.name}"
    )
    return FunctionSummary(
        qualname=qualname,
        module=module_name,
        name=func.name,
        cls=cls,
        line=func.lineno,
        is_async=isinstance(func, ast.AsyncFunctionDef),
        decorators=_decorator_names(func, imports),
        params=walker.params,
        calls=tuple(walker.calls),
        raises=tuple(walker.raises),
        returns=tuple(walker.returns),
        bumps_params=tuple(dict.fromkeys(walker.bumps)),
        hook_params=tuple(dict.fromkeys(walker.hooks)),
        forwards=tuple(dict.fromkeys(walker.forwards)),
    )


def _class_version_attrs(node: ast.ClassDef) -> Tuple[str, ...]:
    attrs: List[str] = []
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = [child.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and VERSION_ATTR.match(target.attr) is not None
                ):
                    attrs.append(target.attr)
    return tuple(dict.fromkeys(attrs))


def _iter_defs(
    body: Sequence[ast.stmt],
) -> Iterator[Union[_Def, ast.ClassDef]]:
    for node in body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            yield node


def summarize_module(
    path: str, module_name: str, tree: ast.Module
) -> ModuleSummary:
    """Distil one parsed module into its program-graph summary."""
    is_package = path.replace("\\", "/").endswith("__init__.py")
    imports = ImportMap(tree, module_name, is_package)
    functions: List[FunctionSummary] = []
    classes: List[ClassSummary] = []
    for node in _iter_defs(tree.body):
        if isinstance(node, ast.ClassDef):
            methods: Dict[str, str] = {}
            for member in _iter_defs(node.body):
                if isinstance(member, ast.ClassDef):
                    continue  # nested classes stay out of the graph
                summary = _summarize_function(
                    member, module_name, node.name, imports
                )
                functions.append(summary)
                methods[member.name] = summary.qualname
            bases = tuple(
                resolved
                for resolved in (
                    imports.resolve(base) for base in node.bases
                )
                if resolved is not None
            )
            classes.append(
                ClassSummary(
                    qualname=f"{module_name}.{node.name}",
                    module=module_name,
                    name=node.name,
                    line=node.lineno,
                    bases=bases,
                    methods=methods,
                    version_attrs=_class_version_attrs(node),
                )
            )
        else:
            functions.append(
                _summarize_function(node, module_name, None, imports)
            )
    return ModuleSummary(
        module=module_name,
        path=path,
        is_package=is_package,
        bindings=dict(imports.bindings),
        functions=tuple(functions),
        classes=tuple(classes),
    )
