"""Whole-program analysis: module graph → call graph → summaries.

The per-file rules in :mod:`repro.analysis.rules` see one module's AST
at a time, so they can only check a contract where it happens to live
in one file.  This package parses the whole project once and gives
rules the cross-module picture:

* :mod:`~repro.analysis.program.summary` distils each module into a
  compact, JSON-serializable :class:`ModuleSummary` — import bindings,
  class hierarchy facts, and per-function facts (raised exception
  types with their ``try``/``except`` guards, call sites with argument
  shapes, return-value origins, version-attribute bumps);
* :mod:`~repro.analysis.program.graph` assembles the summaries into a
  :class:`ProgramGraph`: a cross-module name resolver (growing
  :class:`~repro.analysis.imports.ImportMap` through package
  re-exports), a call graph, and the fixpoint analyses program rules
  query — escaping exception types, blocking-call reachability,
  unfrozen raw-array returns, version-bump reachability;
* :mod:`~repro.analysis.program.base` defines :class:`ProgramRule`,
  the base class for rules that check the graph instead of one AST;
* :mod:`~repro.analysis.program.rules` ships the interprocedural
  rules: ``error-contract``, ``mmap-escape``,
  ``invalidation-reachability`` and ``blocking-in-async``.

Summaries are what the incremental cache persists
(:mod:`repro.analysis.cache`): a warm ``repro check`` re-reads and
re-hashes sources but only re-parses changed files, then re-runs the
(cheap) graph fixpoints over mostly-cached summaries.
"""

from __future__ import annotations

from repro.analysis.program.base import ProgramRule
from repro.analysis.program.graph import ProgramGraph
from repro.analysis.program.summary import (
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    summarize_module,
)

__all__ = [
    "ClassSummary",
    "FunctionSummary",
    "ModuleSummary",
    "ProgramGraph",
    "ProgramRule",
    "summarize_module",
]
