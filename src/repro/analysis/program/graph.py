"""The program graph: summaries → resolver → call graph → fixpoints.

:class:`ProgramGraph` assembles per-module summaries into the
cross-module structures program rules query:

* **name resolution** — a call-site candidate (``repro.search.scan``,
  ``self.helper``, a package re-export) is chased through module
  import bindings to the :class:`FunctionSummary` it denotes, with
  method lookup through declared base classes;
* **exception hierarchy** — ``is_exception_subtype`` unifies builtin
  exceptions (via :mod:`builtins`) with project classes (via their
  summarized bases), so ``except ReproError`` is known to absorb
  ``SearchError`` and ``except Exception`` to spare ``InjectedCrash``;
* **fixpoints** — escaping exception types per function (absorbed by
  enclosing ``try``/``except`` guards at each call site), blocking-call
  reachability through sync helpers, unfrozen raw-array returns, and
  version-bump reachability through free-function helpers.

Every fixpoint iterates functions in sorted qualname order and keeps
first-writer provenance, so results (and the findings built from
them) are deterministic across runs.

All resolution is lexical and best-effort: an unresolvable callee
(a method on an arbitrary object, a dynamic dispatch) contributes
nothing, which keeps the rules' false-positive rate at zero at the
cost of known blind spots — the same trade the per-file rules make.
"""

from __future__ import annotations

import builtins
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.program.summary import (
    CallSite,
    ClassSummary,
    FunctionSummary,
    Guard,
    ModuleSummary,
)

__all__ = ["BlockingSite", "Provenance", "ProgramGraph"]

#: Call names that block the event loop when reached under ``async def``.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "open",
        "io.open",
        "socket.create_connection",
    }
)
BLOCKING_PREFIXES = ("subprocess.", "urllib.request.", "requests.")

#: (op, owning function qualname, line) of a direct blocking call.
BlockingSite = Tuple[str, str, int]

#: How an exception type entered a function's escape set: a direct
#: ``("raise", line)`` or a propagating ``("call", line, callee)``.
Provenance = Tuple[str, int, str]


def _builtin_exception(name: str) -> Optional[type]:
    if "." in name:
        return None
    obj = getattr(builtins, name, None)
    if isinstance(obj, type) and issubclass(obj, BaseException):
        return obj
    return None


def is_blocking_call(callee: str) -> bool:
    return callee in BLOCKING_CALLS or callee.startswith(BLOCKING_PREFIXES)


class ProgramGraph:
    """Whole-project view over the per-module summaries."""

    def __init__(self, modules: Mapping[str, ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = dict(modules)
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        for module in self.modules.values():
            for func in module.functions:
                self.functions[func.qualname] = func
            for klass in module.classes:
                self.classes[klass.qualname] = klass
        self._subtype_cache: Dict[Tuple[str, str], bool] = {}
        self._edges: Optional[
            Dict[str, Tuple[Tuple[CallSite, Optional[str]], ...]]
        ] = None
        self._callers: Optional[Dict[str, Set[str]]] = None
        self._escapes: Optional[Dict[str, Dict[str, Provenance]]] = None
        self._blocking: Optional[Dict[str, BlockingSite]] = None
        self._raw_returns: Optional[Dict[str, int]] = None
        self._param_bumps: Optional[Dict[str, Set[str]]] = None

    # -- sizing (for --stats) ------------------------------------------
    @property
    def call_edge_count(self) -> int:
        return sum(
            1
            for targets in self.edges().values()
            for _, target in targets
            if target is not None
        )

    def path_of(self, qualname: str) -> str:
        """Source path of the module owning a function qualname."""
        func = self.functions.get(qualname)
        if func is not None and func.module in self.modules:
            return self.modules[func.module].path
        return qualname

    # -- name resolution -----------------------------------------------
    def _longest_module_prefix(self, name: str) -> Optional[str]:
        parts = name.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix
        return None

    def canonicalize(self, name: str) -> str:
        """Chase package re-export bindings to a defining-module name."""
        current = name
        for _ in range(16):
            if current in self.functions or current in self.classes:
                return current
            prefix = self._longest_module_prefix(current)
            if prefix is None:
                return current
            remainder = current[len(prefix) + 1 :]
            if not remainder:
                return current
            head, _, tail = remainder.partition(".")
            binding = self.modules[prefix].bindings.get(head)
            if binding is None or binding == current:
                return current
            current = binding + (f".{tail}" if tail else "")
        return current

    def resolve_symbol(self, name: str, module: str) -> Optional[str]:
        """Canonical qualname of a project function or class, if any."""
        if "." not in name:
            local = f"{module}.{name}"
            if local in self.functions or local in self.classes:
                return local
            return None
        current = self.canonicalize(name)
        if current in self.functions or current in self.classes:
            return current
        prefix, _, attr = current.rpartition(".")
        if prefix in self.classes:
            method = self.resolve_method(prefix, attr)
            if method is not None:
                return method.qualname
        return None

    def _resolve_base(self, candidate: str, module: str) -> Optional[str]:
        if "." not in candidate:
            local = f"{module}.{candidate}"
            return local if local in self.classes else None
        canonical = self.canonicalize(candidate)
        return canonical if canonical in self.classes else None

    def resolve_method(
        self, class_qualname: str, method: str
    ) -> Optional[FunctionSummary]:
        """Look a method up in a class and its declared base chain."""
        seen: Set[str] = set()
        queue: List[str] = [class_qualname]
        while queue:
            qualname = queue.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            klass = self.classes.get(qualname)
            if klass is None:
                continue
            if method in klass.methods:
                return self.functions.get(klass.methods[method])
            for base in klass.bases:
                resolved = self._resolve_base(base, klass.module)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def resolve_callee(
        self, callee: str, caller: FunctionSummary
    ) -> Optional[FunctionSummary]:
        """The function a call-site candidate denotes, if resolvable."""
        if callee.startswith("self."):
            rest = callee[len("self.") :]
            if "." in rest or caller.cls is None:
                return None
            return self.resolve_method(
                f"{caller.module}.{caller.cls}", rest
            )
        if callee.startswith("super."):
            rest = callee[len("super.") :]
            if "." in rest or caller.cls is None:
                return None
            klass = self.classes.get(f"{caller.module}.{caller.cls}")
            if klass is None:
                return None
            for base in klass.bases:
                resolved = self._resolve_base(base, klass.module)
                if resolved is not None:
                    found = self.resolve_method(resolved, rest)
                    if found is not None:
                        return found
            return None
        symbol = self.resolve_symbol(callee, caller.module)
        if symbol is None:
            return None
        if symbol in self.functions:
            return self.functions[symbol]
        if symbol in self.classes:
            return self.resolve_method(symbol, "__init__")
        return None

    # -- call graph ------------------------------------------------------
    def edges(
        self,
    ) -> Dict[str, Tuple[Tuple[CallSite, Optional[str]], ...]]:
        """caller qualname → ((call site, resolved target qualname), ...)."""
        if self._edges is None:
            edges: Dict[str, Tuple[Tuple[CallSite, Optional[str]], ...]] = {}
            for qualname in sorted(self.functions):
                func = self.functions[qualname]
                resolved: List[Tuple[CallSite, Optional[str]]] = []
                for site in func.calls:
                    target = self.resolve_callee(site.callee, func)
                    resolved.append(
                        (site, None if target is None else target.qualname)
                    )
                edges[qualname] = tuple(resolved)
            self._edges = edges
        return self._edges

    def callers_of(self, qualname: str) -> Set[str]:
        if self._callers is None:
            callers: Dict[str, Set[str]] = {}
            for caller, targets in self.edges().items():
                for _, target in targets:
                    if target is not None:
                        callers.setdefault(target, set()).add(caller)
            self._callers = callers
        return self._callers.get(qualname, set())

    # -- exception hierarchy --------------------------------------------
    def is_exception_subtype(self, name: str, base: str) -> bool:
        """Is exception type ``name`` a subtype of ``base``?

        Both are canonical(ized) dotted names; builtins and project
        classes mix freely (``StoreError`` → ``ValueError``).
        """
        key = (name, base)
        cached = self._subtype_cache.get(key)
        if cached is not None:
            return cached
        result = self._subtype_uncached(
            self.canonicalize(name), self.canonicalize(base), set()
        )
        self._subtype_cache[key] = result
        return result

    def _subtype_uncached(
        self, name: str, base: str, seen: Set[str]
    ) -> bool:
        if name == base or name in seen:
            return name == base
        seen.add(name)
        name_builtin = _builtin_exception(name)
        base_builtin = _builtin_exception(base)
        if name_builtin is not None:
            return base_builtin is not None and issubclass(
                name_builtin, base_builtin
            )
        klass = self.classes.get(name)
        if klass is None:
            return False
        for candidate in klass.bases:
            resolved = self._resolve_base(candidate, klass.module)
            if resolved is None:
                resolved = self.canonicalize(candidate)
            if self._subtype_uncached(resolved, base, seen):
                return True
        return False

    def is_known_exception(self, name: str) -> bool:
        canonical = self.canonicalize(name)
        return (
            _builtin_exception(canonical) is not None
            or canonical in self.classes
        )

    def _absorbed(self, exc_type: str, guards: Tuple[Guard, ...]) -> bool:
        """Would an enclosing handler stop ``exc_type`` here?"""
        for level in guards:
            for handler in level:
                if handler.reraises:
                    continue
                for caught in handler.types:
                    if caught == "*" or self.is_exception_subtype(
                        exc_type, caught
                    ):
                        return True
        return False

    # -- fixpoint: escaping exception types ------------------------------
    def escaping_exceptions(self) -> Dict[str, Dict[str, Provenance]]:
        """qualname → {canonical exception type → first provenance}.

        A type escapes a function when a ``raise`` (or a callee's
        escape) is not absorbed by a non-transparent enclosing handler.
        """
        if self._escapes is not None:
            return self._escapes
        escapes: Dict[str, Dict[str, Provenance]] = {
            qualname: {} for qualname in self.functions
        }
        for qualname in sorted(self.functions):
            func = self.functions[qualname]
            for site in func.raises:
                for raw in site.types:
                    exc_type = self.canonicalize(raw)
                    if not self.is_known_exception(exc_type):
                        continue
                    if self._absorbed(exc_type, site.guards):
                        continue
                    escapes[qualname].setdefault(
                        exc_type, ("raise", site.line, "")
                    )
        edges = self.edges()
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                mine = escapes[qualname]
                for site, target in edges[qualname]:
                    if target is None:
                        continue
                    for exc_type in sorted(escapes[target]):
                        if exc_type in mine:
                            continue
                        if self._absorbed(exc_type, site.guards):
                            continue
                        mine[exc_type] = ("call", site.line, target)
                        changed = True
        self._escapes = escapes
        return escapes

    def escape_chain(
        self, qualname: str, exc_type: str, limit: int = 12
    ) -> List[Tuple[str, int]]:
        """(qualname, line) hops from a function to the origin raise."""
        chain: List[Tuple[str, int]] = []
        escapes = self.escaping_exceptions()
        current = qualname
        for _ in range(limit):
            provenance = escapes.get(current, {}).get(exc_type)
            if provenance is None:
                break
            kind, line, callee = provenance
            chain.append((current, line))
            if kind == "raise":
                break
            current = callee
        return chain

    # -- fixpoint: blocking-call reachability ----------------------------
    def blocking_reach(self) -> Dict[str, BlockingSite]:
        """Sync functions → the first direct blocking site they reach."""
        if self._blocking is not None:
            return self._blocking
        blocking: Dict[str, BlockingSite] = {}
        for qualname in sorted(self.functions):
            func = self.functions[qualname]
            if func.is_async:
                continue
            for site in func.calls:
                if is_blocking_call(site.callee):
                    blocking[qualname] = (site.callee, qualname, site.line)
                    break
        edges = self.edges()
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                func = self.functions[qualname]
                if func.is_async or qualname in blocking:
                    continue
                for site, target in edges[qualname]:
                    if target is None:
                        continue
                    reached = blocking.get(target)
                    if reached is not None and not self.functions[
                        target
                    ].is_async:
                        blocking[qualname] = reached
                        changed = True
                        break
        self._blocking = blocking
        return blocking

    # -- fixpoint: unfrozen raw-array returns ----------------------------
    def raw_unfrozen_returns(self) -> Dict[str, int]:
        """Functions returning a raw-loader array without freezing it."""
        if self._raw_returns is not None:
            return self._raw_returns
        raw: Dict[str, int] = {}
        for qualname in sorted(self.functions):
            func = self.functions[qualname]
            for site in func.returns:
                if site.origin == "raw" and not site.frozen:
                    raw[qualname] = site.line
                    break
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                if qualname in raw:
                    continue
                func = self.functions[qualname]
                for site in func.returns:
                    if site.frozen or not site.origin.startswith("call:"):
                        continue
                    target = self.resolve_callee(
                        site.origin[len("call:") :], func
                    )
                    if target is not None and target.qualname in raw:
                        raw[qualname] = site.line
                        changed = True
                        break
        self._raw_returns = raw
        return raw

    # -- fixpoint: version bumps through free helpers --------------------
    def param_bumps(self) -> Dict[str, Set[str]]:
        """qualname → parameter names that (transitively) get bumped."""
        if self._param_bumps is not None:
            return self._param_bumps
        bumps: Dict[str, Set[str]] = {
            qualname: set(func.bumps_params) | set(func.hook_params)
            for qualname, func in self.functions.items()
        }
        edges = self.edges()
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                func = self.functions[qualname]
                mine = bumps[qualname]
                for param, callee, position in func.forwards:
                    if param in mine:
                        continue
                    target = self.resolve_callee(callee, func)
                    if (
                        target is not None
                        and position < len(target.params)
                        and target.params[position]
                        in bumps[target.qualname]
                    ):
                        mine.add(param)
                        changed = True
                # self/super delegation: a method call whose target
                # bumps its own receiver bumps ours too.  An
                # unresolvable super() target (external base class) is
                # given the benefit of the doubt, matching the
                # per-file rule's leniency.
                receiver = func.params[0] if func.params else ""
                if not receiver or receiver in mine:
                    continue
                for site, target in edges[qualname]:
                    if not site.callee.startswith(("self.", "super.")):
                        continue
                    if target is None:
                        if site.callee.startswith("super."):
                            mine.add(receiver)
                            changed = True
                            break
                        continue
                    callee_func = self.functions[target]
                    if (
                        callee_func.params
                        and callee_func.params[0] in bumps[target]
                    ):
                        mine.add(receiver)
                        changed = True
                        break
        self._param_bumps = bumps
        return bumps
