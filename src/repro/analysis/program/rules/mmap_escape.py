"""mmap-escape: raw segment arrays freeze before leaving the store.

``SegmentReader.array`` (the one sanctioned raw-loader call site, per
the per-file ``mmap-safety`` rule) freezes every array it returns with
``writeable = False`` — a write to a memory-mapped page would silently
corrupt the segment file on disk.  That guarantee is only as good as
the paths around it: a helper that re-loads without freezing, or a
wrapper that returns the raw value before the freeze line, hands a
writeable mmap to code outside ``repro/store/``.

This rule tracks return-value origins through the call graph: a
function in the store whose returned value originates (possibly via a
chain of calls) from a raw loader and is not frozen on that path is
flagged when the value can cross the store boundary — the function is
public, or some caller lives outside ``repro/store/``.  Private
helpers whose only consumers freeze before returning are fine.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.program.base import ProgramRule
from repro.analysis.program.graph import ProgramGraph
from repro.analysis.registry import register_program


@register_program
class MmapEscapeRule(ProgramRule):
    name = "mmap-escape"
    description = (
        "raw-loader arrays must be frozen read-only on every path "
        "that returns them out of repro/store/"
    )

    def _origin_fragments(self, config: AnalysisConfig) -> Tuple[str, ...]:
        raw = config.option(self.name, "origin", ("repro/store/",))
        if isinstance(raw, (tuple, list)):
            return tuple(str(fragment) for fragment in raw)
        return ("repro/store/",)

    def check(
        self, graph: ProgramGraph, config: AnalysisConfig
    ) -> Iterator[Finding]:
        origin = self._origin_fragments(config)

        def inside(path: str) -> bool:
            posix = path.replace("\\", "/")
            return any(fragment in posix for fragment in origin)

        for qualname, line in sorted(graph.raw_unfrozen_returns().items()):
            func = graph.functions[qualname]
            if not self.in_scope(func, graph, config):
                continue
            outside_callers = sorted(
                caller
                for caller in graph.callers_of(qualname)
                if not inside(graph.path_of(caller))
            )
            if not func.is_public and not outside_callers:
                continue
            how = (
                f"reachable from outside the store via "
                f"{outside_callers[0]}()"
                if outside_callers
                else "part of the store's public surface"
            )
            yield self.emit(
                graph,
                qualname,
                line,
                f"{qualname}() returns a raw-loader array without "
                f"freezing it ({how}); set .flags.writeable = False "
                f"before the array leaves repro/store/",
            )
