"""error-contract: public entry points fail with typed errors only.

The project's failure contract (README, ``repro.errors``): anything a
caller of the public surface — ``repro.cli``, ``repro/search/``,
``repro/store/``, ``repro/live/`` — can observe going wrong must
surface as a :class:`~repro.errors.ReproError` subtype (or the
deliberate :class:`~repro.faults.io.InjectedCrash`), never a bare
``ValueError`` three helpers deep.  The per-file ``error-escalation``
rule checks the handlers it can see; this rule checks the raises it
cannot: every exception type that *transitively* escapes a public
function, through the call graph, with ``try``/``except`` absorption
modeled at each hop.

The finding is anchored at the entry point's ``def`` line and names
the full propagation chain down to the offending ``raise``, so the fix
site is one click away even when the raise is modules deep.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.config import (
    ERROR_CONTRACT_ALLOWED,
    AnalysisConfig,
)
from repro.analysis.findings import Finding
from repro.analysis.program.base import ProgramRule
from repro.analysis.program.graph import ProgramGraph
from repro.analysis.program.summary import FunctionSummary
from repro.analysis.registry import register_program


def _is_entry_point(func: FunctionSummary, graph: ProgramGraph) -> bool:
    """Public module function, or public method of a public class."""
    if not func.is_public:
        return False
    if func.cls is None:
        return True
    klass = graph.classes.get(f"{func.module}.{func.cls}")
    return klass is None or klass.is_public


@register_program
class ErrorContractRule(ProgramRule):
    name = "error-contract"
    description = (
        "public entry points may only let ReproError subtypes (or "
        "InjectedCrash) escape, transitively through the call graph"
    )

    def _allowed(
        self, graph: ProgramGraph, config: AnalysisConfig, exc_type: str
    ) -> bool:
        allowed_raw = config.option(self.name, "allowed", ERROR_CONTRACT_ALLOWED)
        allowed: Tuple[str, ...] = (
            tuple(str(name) for name in allowed_raw)
            if isinstance(allowed_raw, (tuple, list))
            else ERROR_CONTRACT_ALLOWED
        )
        return any(
            graph.is_exception_subtype(exc_type, base) for base in allowed
        )

    def check(
        self, graph: ProgramGraph, config: AnalysisConfig
    ) -> Iterator[Finding]:
        escapes = graph.escaping_exceptions()
        for qualname in sorted(graph.functions):
            func = graph.functions[qualname]
            if not _is_entry_point(func, graph):
                continue
            if not self.in_scope(func, graph, config):
                continue
            for exc_type in sorted(escapes[qualname]):
                if self._allowed(graph, config, exc_type):
                    continue
                chain = graph.escape_chain(qualname, exc_type)
                origin_qualname, origin_line = chain[-1]
                origin = (
                    f"{graph.path_of(origin_qualname)}:{origin_line}"
                )
                hops = " -> ".join(hop for hop, _ in chain)
                yield self.emit(
                    graph,
                    qualname,
                    func.line,
                    f"public entry point {qualname}() lets "
                    f"{exc_type} escape (raised at {origin}, via "
                    f"{hops}); raise a ReproError subtype or absorb "
                    f"it at the boundary",
                )
