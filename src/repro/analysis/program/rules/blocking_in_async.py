"""blocking-in-async: no synchronous waits under ``async def``.

An event loop serves every live query on one thread; a single
``time.sleep``, blocking ``open``/``subprocess`` call, or a sync
helper that hides one, stalls all of them.  The per-call-site version
of this check is easy to grep for; the value of the program rule is
the *hidden* case — an ``async def`` calling an innocent-looking sync
helper that reaches ``time.sleep`` three frames down.

Blocking-call reachability is computed as a fixpoint over sync
functions only (awaiting an async callee is the event loop working as
designed), and each finding is anchored at the call site inside the
``async def``, naming the ultimate blocking operation and where it
lives.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.program.base import ProgramRule
from repro.analysis.program.graph import (
    ProgramGraph,
    is_blocking_call,
)
from repro.analysis.registry import register_program


@register_program
class BlockingInAsyncRule(ProgramRule):
    name = "blocking-in-async"
    description = (
        "async functions must not reach time.sleep, blocking IO or "
        "subprocess calls, directly or through sync helpers"
    )

    def check(
        self, graph: ProgramGraph, config: AnalysisConfig
    ) -> Iterator[Finding]:
        blocking = graph.blocking_reach()
        edges = graph.edges()
        for qualname in sorted(graph.functions):
            func = graph.functions[qualname]
            if not func.is_async:
                continue
            if not self.in_scope(func, graph, config):
                continue
            for site, target in edges[qualname]:
                if is_blocking_call(site.callee):
                    yield self.emit(
                        graph,
                        qualname,
                        site.line,
                        f"async function {qualname}() calls blocking "
                        f"{site.callee}(); use the asyncio "
                        f"equivalent or run it in an executor",
                    )
                    continue
                if target is None or graph.functions[target].is_async:
                    continue
                reached = blocking.get(target)
                if reached is not None:
                    op, owner, line = reached
                    yield self.emit(
                        graph,
                        qualname,
                        site.line,
                        f"async function {qualname}() calls "
                        f"{target}(), which reaches blocking {op}() "
                        f"at {graph.path_of(owner)}:{line}; use the "
                        f"asyncio equivalent or run it in an executor",
                    )
