"""invalidation-reachability: mutators bump versions, even via helpers.

The per-file ``cache-invalidation`` rule proves, within one class
body, that every mutator of versioned state bumps a version attribute
or calls an invalidation hook.  Its blind spot is delegation: a
mutator that hands ``self`` to a free function in another module
(``maintenance.compact(index)``) looks clean per-file even when no
code on that chain ever bumps.

This rule re-checks the same contract over the program graph, where
"bumps" is a fixpoint: a parameter is bumped if the function assigns a
version attribute on it, calls an invalidation hook on it, forwards it
positionally to a function that bumps the matching parameter, or (for
``self``) delegates to a method/``super()`` target that bumps.  A
mutator-named public method of a version-carrying class with no bump
reachable on *any* chain is flagged at its ``def`` line.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.program.base import ProgramRule
from repro.analysis.program.graph import ProgramGraph
from repro.analysis.program.summary import ClassSummary
from repro.analysis.registry import register_program

# Same mutator/read-only heuristics as the per-file rule, so the two
# layers never disagree on what counts as a mutator.
from repro.analysis.rules.cache_invalidation import (
    _READ_DECORATORS,
    _is_mutator_name,
)


def _inherited_version_attrs(
    graph: ProgramGraph, klass: ClassSummary
) -> List[str]:
    """Version attributes of a class and its resolvable base chain."""
    attrs: List[str] = []
    seen: Set[str] = set()
    queue = [klass.qualname]
    while queue:
        qualname = queue.pop(0)
        if qualname in seen:
            continue
        seen.add(qualname)
        current = graph.classes.get(qualname)
        if current is None:
            continue
        attrs.extend(current.version_attrs)
        for base in current.bases:
            resolved = graph._resolve_base(base, current.module)
            if resolved is not None:
                queue.append(resolved)
    return sorted(set(attrs))


@register_program
class InvalidationReachabilityRule(ProgramRule):
    name = "invalidation-reachability"
    description = (
        "mutators of versioned classes must reach a version bump or "
        "invalidation hook through any cross-module helper chain"
    )

    def check(
        self, graph: ProgramGraph, config: AnalysisConfig
    ) -> Iterator[Finding]:
        bumps = graph.param_bumps()
        for class_qualname in sorted(graph.classes):
            klass = graph.classes[class_qualname]
            attrs = _inherited_version_attrs(graph, klass)
            if not attrs:
                continue
            for method_name in sorted(klass.methods):
                func = graph.functions.get(klass.methods[method_name])
                if func is None or method_name.startswith("_"):
                    continue
                if not _is_mutator_name(method_name):
                    continue
                if any(
                    deco.rpartition(".")[2] in _READ_DECORATORS
                    for deco in func.decorators
                ):
                    continue
                if not self.in_scope(func, graph, config):
                    continue
                receiver = func.params[0] if func.params else ""
                if receiver and receiver in bumps[func.qualname]:
                    continue
                shown = ", ".join(attrs[:3])
                yield self.emit(
                    graph,
                    func.qualname,
                    func.line,
                    f"mutator {func.qualname}() never reaches a bump "
                    f"of {shown} on any call chain; bump a version "
                    f"attribute or call an invalidation hook (directly "
                    f"or via the helper it delegates to)",
                )
