"""Built-in program rules; importing registers them all."""

from __future__ import annotations

from repro.analysis.program.rules import (  # noqa: F401
    blocking_in_async,
    error_contract,
    invalidation_reachability,
    mmap_escape,
)
