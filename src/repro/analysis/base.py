"""Rule framework: the per-module context and the rule base class.

A rule is a small class with a ``name``, a ``description`` (shown by
``repro check --list-rules`` and reused by the README's rule table) and
a ``check`` method that walks one module's AST and yields
:class:`~repro.analysis.findings.Finding` objects.  Rules never see
suppressions or scoping — the runner applies both — so a rule is
exactly "find every occurrence of the pattern".
"""

from __future__ import annotations

import abc
import ast
from typing import ClassVar, Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.imports import ImportMap


class ModuleContext:
    """Everything a rule may inspect about one analyzed module."""

    def __init__(
        self, path: str, source: str, tree: ast.Module, config: AnalysisConfig
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.imports = ImportMap(tree)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Anchor a finding to an AST node's source position."""
        return Finding(
            rule=rule,
            path=self.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            message=message,
        )


class Rule(abc.ABC):
    """One statically-checkable project invariant."""

    #: Registry key; also the ``# repro: noqa[<name>]`` suppression key.
    name: ClassVar[str] = ""
    #: One-line summary for ``--list-rules`` and reports.
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""

    def emit(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return module.finding(self.name, node, message)
