"""Line-level finding suppression: ``# repro: noqa[rule] -- reason``.

Three accepted shapes, matched inside real comment tokens only (a
string literal containing the marker text does not suppress):

* ``# repro: noqa`` — suppress every rule on this line;
* ``# repro: noqa[rule-a, rule-b]`` — suppress the named rules;
* either form followed by ``-- reason`` — document *why*; required by
  convention for ``exception-hygiene`` (a broad handler must state why
  broadness is intended).

A directive applies to the **logical line** it sits on, not just the
physical one: a statement continued across several lines (a
bracketed call, a multi-line ``def`` signature, a decorated function
header) is one suppression target, so the directive may live on any of
its lines — trailing the closing bracket, or on the decorator line —
and still cover a finding anchored to the statement's first line.
Standalone comment lines belong to no statement and only cover
findings on their own line.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

__all__ = ["Suppressions", "parse_suppressions"]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"(?:\s*--\s*(?P<reason>.*\S))?",
    re.IGNORECASE,
)

#: (suppressed rule names, or None for "suppress all"; reason)
_Directive = Tuple[Optional[FrozenSet[str]], str]


class Suppressions:
    """The ``noqa`` directives of one module, keyed by physical line."""

    def __init__(
        self,
        by_line: Dict[int, _Directive],
        groups: Optional[List[FrozenSet[int]]] = None,
    ) -> None:
        self._by_line = by_line
        # physical line -> every line of its logical statement, so a
        # directive anywhere on the statement covers all of it.
        self._peers: Dict[int, FrozenSet[int]] = {}
        for group in groups or []:
            for line in group:
                self._peers[line] = group

    def _directive_for(self, line: int) -> Optional[_Directive]:
        entry = self._by_line.get(line)
        if entry is not None:
            return entry
        for peer in sorted(self._peers.get(line, frozenset())):
            entry = self._by_line.get(peer)
            if entry is not None:
                return entry
        return None

    def covers(self, line: int, rule: str) -> bool:
        entry = self._directive_for(line)
        if entry is None:
            return False
        rules, _ = entry
        return rules is None or rule in rules

    def reason(self, line: int) -> str:
        entry = self._directive_for(line)
        return entry[1] if entry is not None else ""

    def lines(self) -> Iterator[int]:
        return iter(self._by_line)

    def __len__(self) -> int:
        return len(self._by_line)

    def to_jsonable(self) -> Dict[str, object]:
        """Serializable form for the incremental summary cache."""
        return {
            "by_line": {
                str(line): [
                    sorted(rules) if rules is not None else None,
                    reason,
                ]
                for line, (rules, reason) in self._by_line.items()
            },
            "groups": [
                sorted(group)
                for group in sorted(
                    {
                        group
                        for group in self._peers.values()
                        if len(group) > 1
                    },
                    key=min,
                )
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, object]) -> "Suppressions":
        by_line_raw = payload.get("by_line", {})
        by_line: Dict[int, _Directive] = {}
        if isinstance(by_line_raw, dict):
            for key, value in by_line_raw.items():
                rules_raw, reason = value
                rules = (
                    frozenset(str(name) for name in rules_raw)
                    if rules_raw is not None
                    else None
                )
                by_line[int(key)] = (rules, str(reason))
        groups_raw = payload.get("groups", [])
        groups: List[FrozenSet[int]] = []
        if isinstance(groups_raw, list):
            groups = [
                frozenset(int(line) for line in group)
                for group in groups_raw
            ]
        return cls(by_line, groups)


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) of every comment token; lenient on tokenize errors.

    A module that parses as AST can still defeat ``tokenize`` in edge
    cases; falling back to a per-line scan errs on the side of
    honouring a suppression rather than resurrecting a silenced
    finding.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        for number, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                yield number, text[text.index("#"):]


def _logical_groups(source: str) -> List[FrozenSet[int]]:
    """The physical-line sets of each multi-line logical statement.

    Tokenize terminates a logical line with NEWLINE (NL marks blank or
    comment-only lines and in-bracket line breaks), so the lines seen
    between NEWLINEs form one statement.  Decorator lines are their own
    logical lines syntactically but one suppression target practically,
    so a ``@...`` group is merged into the statement that follows it.
    Only groups spanning more than one line are kept — single-line
    statements already match by physical line.
    """
    groups: List[Tuple[Set[int], bool]] = []  # (lines, starts_with_@)
    current: Set[int] = set()
    is_decorator = False
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return []
    for token in tokens:
        if token.type in (
            tokenize.NL,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        if token.type == tokenize.COMMENT:
            if current:  # trailing or in-bracket comment of an open stmt
                current.add(token.start[0])
            continue
        if not current and token.string == "@":
            is_decorator = True
        current.update(range(token.start[0], token.end[0] + 1))
        if token.type == tokenize.NEWLINE:
            groups.append((current, is_decorator))
            current = set()
            is_decorator = False
    if current:
        groups.append((current, is_decorator))
    merged: List[Set[int]] = []
    pending: Set[int] = set()
    for lines, decorator in groups:
        if decorator:
            pending |= lines
            continue
        merged.append(pending | lines)
        pending = set()
    if pending:
        merged.append(pending)
    return [frozenset(lines) for lines in merged if len(lines) > 1]


def parse_suppressions(source: str) -> Suppressions:
    """Collect every ``# repro: noqa`` directive in ``source``."""
    by_line: Dict[int, _Directive] = {}
    for line, text in _comment_tokens(source):
        match = _NOQA.search(text)
        if match is None:
            continue
        raw_rules = match.group("rules")
        rules: Optional[FrozenSet[str]]
        if raw_rules is None:
            rules = None
        else:
            rules = frozenset(
                name.strip() for name in raw_rules.split(",") if name.strip()
            )
        by_line[line] = (rules, match.group("reason") or "")
    return Suppressions(by_line, _logical_groups(source))
