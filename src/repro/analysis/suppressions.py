"""Line-level finding suppression: ``# repro: noqa[rule] -- reason``.

Three accepted shapes, matched inside real comment tokens only (a
string literal containing the marker text does not suppress):

* ``# repro: noqa`` — suppress every rule on this line;
* ``# repro: noqa[rule-a, rule-b]`` — suppress the named rules;
* either form followed by ``-- reason`` — document *why*; required by
  convention for ``exception-hygiene`` (a broad handler must state why
  broadness is intended).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

__all__ = ["Suppressions", "parse_suppressions"]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"(?:\s*--\s*(?P<reason>.*\S))?",
    re.IGNORECASE,
)


class Suppressions:
    """The ``noqa`` directives of one module, keyed by physical line."""

    def __init__(
        self, by_line: Dict[int, Tuple[Optional[FrozenSet[str]], str]]
    ) -> None:
        # line -> (suppressed rule names, or None for "all"; reason)
        self._by_line = by_line

    def covers(self, line: int, rule: str) -> bool:
        entry = self._by_line.get(line)
        if entry is None:
            return False
        rules, _ = entry
        return rules is None or rule in rules

    def reason(self, line: int) -> str:
        entry = self._by_line.get(line)
        return entry[1] if entry is not None else ""

    def lines(self) -> Iterator[int]:
        return iter(self._by_line)

    def __len__(self) -> int:
        return len(self._by_line)


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) of every comment token; lenient on tokenize errors.

    A module that parses as AST can still defeat ``tokenize`` in edge
    cases; falling back to a per-line scan errs on the side of
    honouring a suppression rather than resurrecting a silenced
    finding.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        for number, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                yield number, text[text.index("#"):]


def parse_suppressions(source: str) -> Suppressions:
    """Collect every ``# repro: noqa`` directive in ``source``."""
    by_line: Dict[int, Tuple[Optional[FrozenSet[str]], str]] = {}
    for line, text in _comment_tokens(source):
        match = _NOQA.search(text)
        if match is None:
            continue
        raw_rules = match.group("rules")
        rules: Optional[FrozenSet[str]]
        if raw_rules is None:
            rules = None
        else:
            rules = frozenset(
                name.strip() for name in raw_rules.split(",") if name.strip()
            )
        by_line[line] = (rules, match.group("reason") or "")
    return Suppressions(by_line)
