"""The unit of analyzer output: one rule violation at one source line."""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    Attributes:
        rule: Registered rule name (e.g. ``"determinism"``) — also the
            name a ``# repro: noqa[...]`` comment suppresses it by.
        path: Path of the analyzed module, as given to the runner.
        line: 1-based source line of the offending node.
        col: 0-based column of the offending node.
        message: Human-readable explanation of the violation and,
            where possible, the fix.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (the JSON reporter's row format)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The text reporter's row format: ``path:line:col rule message``."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
