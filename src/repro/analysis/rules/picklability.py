"""Rule ``picklability``: only module-level callables cross a process
pool boundary.

Work shipped to a ``ProcessPoolExecutor`` / ``multiprocessing.Pool``
worker is pickled; lambdas, nested functions and bound methods are
not picklable, and the failure surfaces at *submit time in production
schedules*, not at definition time.  The term-sharded mining pipeline
(:mod:`repro.pipeline.sharding`) documents the same contract for
user-supplied ``baseline_factory`` callables — this rule enforces the
statically-visible half of it at every submission site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Union

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Constructors whose result is a process pool.
POOL_FACTORIES: Set[str] = {
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}

#: Pool methods whose first argument is pickled and shipped to a worker.
SUBMIT_METHODS: Set[str] = {
    "submit",
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "map_async",
}

_Function = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_pool_expr(module: ModuleContext, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = module.imports.resolve(node.func)
    if resolved in POOL_FACTORIES:
        return True
    # ctx.Pool() from multiprocessing.get_context(...)
    return isinstance(node.func, ast.Attribute) and node.func.attr == "Pool"


class _FunctionScope:
    """Names that are pools, lambdas, or nested defs within one function."""

    def __init__(self, module: ModuleContext, function: _Function) -> None:
        self.pools: Set[str] = set()
        self.unpicklable: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not function:
                    self.unpicklable.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_pool_expr(module, node.value):
                        self.pools.add(target.id)
                    elif isinstance(node.value, ast.Lambda):
                        self.unpicklable.add(target.id)
            elif isinstance(node, ast.With) or isinstance(
                node, ast.AsyncWith
            ):
                for item in node.items:
                    if (
                        item.optional_vars is not None
                        and isinstance(item.optional_vars, ast.Name)
                        and _is_pool_expr(module, item.context_expr)
                    ):
                        self.pools.add(item.optional_vars.id)


@register
class PicklabilityRule(Rule):
    name = "picklability"
    description = (
        "only module-level callables may be submitted to a process "
        "pool (lambdas, nested functions and bound methods do not "
        "pickle)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function in ast.walk(module.tree):
            if not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            scope = _FunctionScope(module, function)
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in SUBMIT_METHODS:
                    continue
                receiver = node.func.value
                if not (
                    isinstance(receiver, ast.Name)
                    and receiver.id in scope.pools
                    or _is_pool_expr(module, receiver)
                ):
                    continue
                if not node.args:
                    continue
                yield from self._check_callable(
                    module, scope, node.args[0]
                )

    def _check_callable(
        self,
        module: ModuleContext,
        scope: _FunctionScope,
        callable_expr: ast.expr,
    ) -> Iterator[Finding]:
        if isinstance(callable_expr, ast.Lambda):
            yield self.emit(
                module,
                callable_expr,
                "lambda submitted to a process pool cannot be pickled; "
                "define a module-level function",
            )
            return
        if isinstance(callable_expr, ast.Name):
            if callable_expr.id in scope.unpicklable:
                yield self.emit(
                    module,
                    callable_expr,
                    f"{callable_expr.id!r} is defined inside the "
                    "enclosing function; only module-level callables "
                    "pickle across the pool boundary",
                )
            return
        if isinstance(callable_expr, ast.Attribute):
            root: ast.expr = callable_expr
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in ("self", "cls"):
                yield self.emit(
                    module,
                    callable_expr,
                    "bound method / instance attribute submitted to a "
                    "process pool; ship a module-level function and pass "
                    "the instance state as arguments",
                )
            return
        if isinstance(callable_expr, ast.Call):
            resolved = module.imports.resolve(callable_expr.func)
            if resolved == "functools.partial" and callable_expr.args:
                yield from self._check_callable(
                    module, scope, callable_expr.args[0]
                )
