"""Rule ``dtype-discipline``: store codecs pin little-endian dtypes.

A store written on one host must load bit-exactly on any other.
``dtype=int`` / ``dtype=float`` / ``np.int_`` follow the *platform*
(``long`` is 32-bit on Windows), and even ``np.int64`` follows the
*host byte order* — a big-endian writer would emit bytes a
little-endian reader misparses.  Codec modules therefore spell dtypes
as explicit little-endian strings: ``"<i8"``, ``"<f8"``, ``"<i4"``
(``"|b1"`` for the order-free byte kinds).

The rule is lenient about indirection: a dtype passed through a
variable (e.g. the codec's canonical ``_STORE_DTYPES`` lookup) is not
flagged — only expressions that are *visibly* platform-dependent are.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Bare Python scalar types: width and order follow the platform/NumPy
#: defaults, not the store format.
_PYTHON_SCALARS: Set[str] = {"int", "float", "bool", "complex"}

#: NumPy scalar types with platform-dependent width or native order.
_NATIVE_NUMPY: Set[str] = {
    "numpy.int_",
    "numpy.intp",
    "numpy.intc",
    "numpy.long",
    "numpy.longlong",
    "numpy.int8",
    "numpy.int16",
    "numpy.int32",
    "numpy.int64",
    "numpy.uint8",
    "numpy.uint16",
    "numpy.uint32",
    "numpy.uint64",
    "numpy.half",
    "numpy.single",
    "numpy.double",
    "numpy.float16",
    "numpy.float32",
    "numpy.float64",
    "numpy.longdouble",
    "numpy.bool_",
}

#: Array constructors whose ``dtype=`` reaches stored bytes.
_ARRAY_FACTORIES: Set[str] = {
    "numpy.array",
    "numpy.asarray",
    "numpy.ascontiguousarray",
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.arange",
    "numpy.fromiter",
    "numpy.frombuffer",
    "numpy.fromstring",
}


def _dtype_argument(
    node: ast.Call, resolved: Optional[str]
) -> Optional[ast.expr]:
    """The dtype expression of a factory call or ``.astype`` call."""
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "astype"
        and node.args
    ):
        return node.args[0]
    if resolved in _ARRAY_FACTORIES:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return keyword.value
    return None


@register
class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    description = (
        "store codecs must pin explicit little-endian dtypes "
        '("<i8"/"<f8"), never platform-native int/float/np.int_'
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(node.func)
            dtype = _dtype_argument(node, resolved)
            if dtype is None:
                continue
            problem = self._describe_problem(module, dtype)
            if problem is not None:
                yield self.emit(
                    module,
                    dtype,
                    f"{problem}; store codecs pin explicit little-endian "
                    'dtypes ("<i8"/"<f8"/"<i4", "|b1" for order-free '
                    "byte kinds) so segments are byte-identical across "
                    "hosts",
                )

    def _describe_problem(
        self, module: ModuleContext, dtype: ast.expr
    ) -> Optional[str]:
        if isinstance(dtype, ast.Constant) and isinstance(dtype.value, str):
            if not dtype.value.startswith(("<", "|")):
                return (
                    f'dtype "{dtype.value}" does not pin little-endian '
                    "byte order"
                )
            return None
        if isinstance(dtype, ast.Name) and dtype.id in _PYTHON_SCALARS:
            return (
                f"dtype={dtype.id} resolves to the platform default "
                "width and byte order"
            )
        resolved = module.imports.resolve(dtype)
        if resolved in _NATIVE_NUMPY:
            short = resolved.replace("numpy.", "np.")
            return f"dtype={short} uses native byte order"
        return None
