"""Rule ``mmap-safety``: loaded segment arrays are frozen and never
mutated in place.

The store serves NumPy arrays straight off memory-mapped segment
files.  Writing through such an array corrupts the CRC-verified bytes
on disk (or, for an eagerly-loaded copy, silently diverges from them).
Three statically-checkable sub-contracts:

1. **one read boundary** — raw loaders (``np.load``/``np.memmap``/
   ``np.fromfile``) are called only in the boundary module(s)
   (``repro/store/format.py``); everything else goes through
   ``SegmentReader.array``;
2. **frozen at the boundary** — a function that calls a raw loader
   must mark the result read-only (``arr.flags.writeable = False`` or
   ``arr.setflags(write=False)``) before handing it out;
3. **no downstream in-place mutation** — a value bound from
   ``<reader>.array(...)`` (locally or as ``self._attr``) must never
   be the target of subscript/augmented assignment, an in-place array
   method, an ``out=`` argument, or ``setflags(write=True)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Union

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Raw array loaders that bypass the manifest/CRC read path.
LOADER_CALLS: Set[str] = {"numpy.load", "numpy.memmap", "numpy.fromfile"}

#: ndarray methods that mutate their receiver in place.
INPLACE_METHODS: Set[str] = {
    "fill",
    "sort",
    "partition",
    "put",
    "itemset",
    "setfield",
    "resize",
    "byteswap",
}

#: Attribute-call names that bind a segment array at a call site.
READER_METHODS: Set[str] = {"array"}

_Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef]


def _ref_key(node: ast.expr) -> Optional[str]:
    """``"name"`` / ``"self.attr"`` for trackable reference shapes."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _is_reader_load(node: ast.expr) -> bool:
    """True for ``<receiver>.array(...)`` call expressions."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in READER_METHODS
    )


def _freezes_result(body: Sequence[ast.stmt]) -> bool:
    """Does this function body mark an array read-only?"""
    for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "writeable"
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "flags"
                ):
                    return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
        ):
            for keyword in node.keywords:
                if keyword.arg == "write" and isinstance(
                    keyword.value, ast.Constant
                ):
                    if keyword.value.value is False:
                        return True
    return False


@register
class MmapSafetyRule(Rule):
    name = "mmap-safety"
    description = (
        "segment arrays are loaded only at the read boundary, frozen "
        "writeable=False there, and never mutated in place downstream"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        boundary = module.config.option("mmap-safety", "boundary", ())
        posix = module.path.replace("\\", "/")
        in_boundary = isinstance(boundary, (list, tuple)) and any(
            fragment in posix for fragment in boundary
        )
        yield from self._check_loaders(module, in_boundary)
        yield from self._check_mutations(module)

    # -- sub-contracts 1 and 2 -----------------------------------------
    def _check_loaders(
        self, module: ModuleContext, in_boundary: bool
    ) -> Iterator[Finding]:
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            loaders = [
                node
                for node in ast.walk(scope)
                if isinstance(node, ast.Call)
                and module.imports.resolve(node.func) in LOADER_CALLS
            ]
            if not loaders:
                continue
            if not in_boundary:
                for node in loaders:
                    resolved = module.imports.resolve(node.func)
                    yield self.emit(
                        module,
                        node,
                        f"{resolved}() outside the store read boundary; "
                        "segment arrays must be loaded via "
                        "SegmentReader.array, which freezes them "
                        "writeable=False",
                    )
            elif not _freezes_result(scope.body):
                for node in loaders:
                    yield self.emit(
                        module,
                        node,
                        "loaded array leaves the read boundary without "
                        "flags.writeable = False; accidental mutation of "
                        "served state would corrupt CRC-verified segments "
                        "silently",
                    )
        # Module-level loader calls (outside any function) are always a
        # boundary escape.
        stack: List[ast.AST] = [
            node
            for node in module.tree.body
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, ast.Call) and (
                module.imports.resolve(node.func) in LOADER_CALLS
            ):
                yield self.emit(
                    module,
                    node,
                    "raw segment load at module scope; go through "
                    "SegmentReader.array",
                )
            stack.extend(ast.iter_child_nodes(node))

    # -- sub-contract 3 ------------------------------------------------
    def _check_mutations(self, module: ModuleContext) -> Iterator[Finding]:
        for scope in self._tracking_scopes(module.tree):
            tracked = self._tracked_refs(scope)
            if not tracked:
                continue
            yield from self._mutations_in(module, scope, tracked)

    def _tracking_scopes(self, tree: ast.Module) -> Iterator[_Scope]:
        """Classes (self-attr + local tracking) and top-level functions."""
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                yield node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _tracked_refs(self, scope: _Scope) -> Set[str]:
        tracked: Set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_reader_load(node.value):
                for target in node.targets:
                    key = _ref_key(target)
                    if key is not None:
                        tracked.add(key)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_reader_load(node.value):
                    key = _ref_key(node.target)
                    if key is not None:
                        tracked.add(key)
        return tracked

    def _mutations_in(
        self, module: ModuleContext, scope: _Scope, tracked: Set[str]
    ) -> Iterator[Finding]:
        def is_tracked(expr: ast.expr) -> bool:
            key = _ref_key(expr)
            return key is not None and key in tracked

        message = (
            "in-place mutation of an array loaded from a store segment; "
            "these are served read-only (mmap or frozen) — copy first "
            "(arr.copy() / np.asarray(arr, dtype=...)) if a private "
            "mutable buffer is needed"
        )
        for node in ast.walk(scope):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and is_tracked(
                        target.value
                    ):
                        yield self.emit(module, target, message)
                # arr += x on the whole array goes through __iadd__ and
                # writes in place, unlike a plain rebind.
                if isinstance(node, ast.AugAssign) and is_tracked(
                    node.target
                ):
                    yield self.emit(module, node.target, message)
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                if node.func.attr in INPLACE_METHODS and is_tracked(receiver):
                    yield self.emit(module, node, message)
                if node.func.attr == "setflags" and is_tracked(receiver):
                    for keyword in node.keywords:
                        if (
                            keyword.arg == "write"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            yield self.emit(
                                module,
                                node,
                                "re-enabling writes on a loaded segment "
                                "array defeats the read-boundary freeze",
                            )
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "out" and is_tracked(keyword.value):
                        yield self.emit(
                            module,
                            keyword.value,
                            "loaded segment array used as an out= buffer; "
                            "vectorized kernels must write into freshly "
                            "allocated arrays",
                        )
