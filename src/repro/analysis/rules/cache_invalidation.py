"""Rule ``cache-invalidation``: versioned classes bump on every mutator.

The serving layers derive state (posting lists, doc maps, pattern
caches, epoch-keyed result caches) from versioned containers:
``SpatiotemporalCollection._version``, ``LiveCollection._epoch``.  A
mutator that forgets to bump leaves every derived view silently stale
— the exact bug class the live layer fixed three times by hand before
the ``version``/``subscribe`` hooks existed.

The rule applies to classes that maintain a version counter (an
attribute like ``_version`` / ``_epoch`` / ``_term_versions`` assigned
somewhere in the class).  Every *public mutator-named* method of such
a class must, directly or through other methods of the same class,
either bump a version counter or call an invalidation hook
(``*invalidate*`` / ``*refresh*`` / ``*rebuild*`` / ``*reset*`` /
``notify*``).  Delegating to ``super()`` counts — the parent
implementation is checked wherever it is defined.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Union

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Attribute names that look like a mutation-version counter.
VERSION_ATTR = re.compile(r"^_?(term_)?(version|epoch|generation)s?$")

#: Method-name prefixes that imply mutation of indexed state.
MUTATOR_PREFIXES = (
    "add",
    "ingest",
    "advance",
    "append",
    "extend",
    "insert",
    "remove",
    "delete",
    "discard",
    "clear",
    "replace",
    "update",
    "set_",
    "seal",
    "push",
    "write",
)

#: Self-call names accepted as invalidation hooks even when the hook is
#: inherited (not defined in the analyzed class).
HOOK_NAME = re.compile(r"(invalidate|refresh|rebuild|reset|touch|bump|notify)")

#: Decorators that mark a read path (not a mutator).
_READ_DECORATORS = {"property", "cached_property", "staticmethod"}

_Method = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_self_attr(node: ast.expr, pattern: re.Pattern[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and pattern.match(node.attr) is not None
    )


def _decorator_names(method: _Method) -> Set[str]:
    names: Set[str] = set()
    for decorator in method.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        while isinstance(target, ast.Attribute):
            if target.attr in _READ_DECORATORS:
                names.add(target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _is_mutator_name(name: str) -> bool:
    """Match a mutator prefix only at a word boundary.

    ``ingest`` and ``ingest_snapshot`` are mutators; ``ingested_documents``
    (a getter over past ingests) is not.
    """
    if name.startswith("_"):
        return False
    return any(
        name == stem or name.startswith(stem + "_")
        for stem in (prefix.rstrip("_") for prefix in MUTATOR_PREFIXES)
    )


class _ClassModel:
    """Bump/delegation facts about one class body."""

    def __init__(self, class_def: ast.ClassDef) -> None:
        self.class_def = class_def
        self.methods: Dict[str, _Method] = {}
        for node in class_def.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[node.name] = node
        self.version_attrs: Set[str] = set()
        for method in self.methods.values():
            for node in ast.walk(method):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        target = target.value
                    if _is_self_attr(target, VERSION_ATTR):
                        self.version_attrs.add(target.attr)  # type: ignore[attr-defined]

    def bumping_methods(self) -> Set[str]:
        """Fixpoint of methods that (transitively) bump or invalidate."""
        bumps: Set[str] = set()
        for name, method in self.methods.items():
            if self._bumps_directly(method):
                bumps.add(name)
        changed = True
        while changed:
            changed = False
            for name, method in self.methods.items():
                if name in bumps:
                    continue
                for called in self._self_calls(method):
                    if called in bumps:
                        bumps.add(name)
                        changed = True
                        break
        return bumps

    def _bumps_directly(self, method: _Method) -> bool:
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                if _is_self_attr(target, VERSION_ATTR):
                    return True
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                # super().anything() delegates to an implementation that
                # is itself subject to this rule where it is defined.
                if (
                    isinstance(receiver, ast.Call)
                    and isinstance(receiver.func, ast.Name)
                    and receiver.func.id == "super"
                ):
                    return True
                # self.<inherited invalidation hook>()
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "self"
                    and node.func.attr not in self.methods
                    and HOOK_NAME.search(node.func.attr) is not None
                ):
                    return True
        return False

    def _self_calls(self, method: _Method) -> Iterator[str]:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                yield node.func.attr


@register
class CacheInvalidationRule(Rule):
    name = "cache-invalidation"
    description = (
        "classes with a version/epoch counter must bump it (or call an "
        "invalidation hook) in every public mutator method"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = _ClassModel(node)
            if not model.version_attrs:
                continue
            bumps = model.bumping_methods()
            attrs = ", ".join(sorted(model.version_attrs))
            for name, method in model.methods.items():
                if not _is_mutator_name(name):
                    continue
                if _decorator_names(method) & _READ_DECORATORS:
                    continue
                if name in bumps:
                    continue
                yield self.emit(
                    module,
                    method,
                    f"{node.name}.{name}() mutates indexed state without "
                    f"bumping a version counter ({attrs}) or calling an "
                    "invalidation hook; derived views (posting lists, "
                    "caches) would serve stale state",
                )
