"""Rule ``exception-hygiene``: no bare/broad ``except`` without a
stated reason.

``except Exception`` around a probe swallows *everything* — including
the ``KeyboardInterrupt``-adjacent bugs (``RecursionError``,
``MemoryError`` subclasses of ``Exception``) that should surface, and
genuine library defects that then present as the fallback path's
behaviour.  Handlers must name the concrete exceptions the guarded
code can raise; where broadness is genuinely intended (e.g. probing a
user-supplied factory), the line carries::

    except Exception:  # repro: noqa[exception-hygiene] -- <why>

so the intent is reviewable instead of implicit.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_BROAD = {"Exception", "BaseException"}


def _named_exceptions(node: ast.expr) -> List[str]:
    """Leaf exception names of an ``except`` type expression."""
    if isinstance(node, ast.Tuple):
        names: List[str] = []
        for element in node.elts:
            names.extend(_named_exceptions(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


@register
class ExceptionHygieneRule(Rule):
    name = "exception-hygiene"
    description = (
        "no bare or broad except Exception without a suppression "
        "comment stating why broadness is intended"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.emit(
                    module,
                    node,
                    "bare except: catches everything, including "
                    "SystemExit/KeyboardInterrupt; name the concrete "
                    "exceptions (or add '# repro: "
                    "noqa[exception-hygiene] -- <why>' if broadness is "
                    "intended)",
                )
                continue
            broad = [
                name
                for name in _named_exceptions(node.type)
                if name in _BROAD
            ]
            if broad:
                yield self.emit(
                    module,
                    node,
                    f"broad 'except {broad[0]}' hides unrelated bugs "
                    "behind the fallback path; narrow to the concrete "
                    "exceptions the guarded code raises (or add "
                    "'# repro: noqa[exception-hygiene] -- <why>')",
                )
