"""Rule ``error-escalation``: store/serving code must not swallow I/O
or corruption failures.

The persistence layer's failure contract is *typed escalation*: an
``OSError`` (or a :class:`~repro.errors.StoreCorruptionError` /
:class:`~repro.errors.StoreIOError` already typed by a lower layer)
caught in store, live-serving or fault-injection code must either be
re-raised as a typed :class:`~repro.errors.ReproError` or recorded as
a quarantine decision (degraded-mode serving).  A handler that does
neither turns disk damage into silently-wrong serving state — the
exact failure mode the crash-point sweep and ``repro fsck`` exist to
rule out.

Plain ``except StoreError`` probes stay allowed: ``StoreError`` is the
library's *typed* umbrella, so catching it is consuming an
already-escalated condition, not swallowing a raw one.  Where a
swallow is genuinely the contract (best-effort directory fsync on
platforms without directory file descriptors), the line carries::

    except OSError:  # repro: noqa[error-escalation] -- <why>
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Exception names whose handlers must escalate or quarantine: the
#: whole raw ``OSError`` family, plus the two typed store conditions
#: that carry damage/IO facts a caller is not allowed to drop.
_GUARDED = {
    "OSError",
    "IOError",
    "EnvironmentError",
    "PermissionError",
    "FileNotFoundError",
    "InterruptedError",
    "TimeoutError",
    "BlockingIOError",
    "StoreCorruptionError",
    "StoreIOError",
}


def _named_exceptions(node: ast.expr) -> List[str]:
    """Leaf exception names of an ``except`` type expression."""
    if isinstance(node, ast.Tuple):
        names: List[str] = []
        for element in node.elts:
            names.extend(_named_exceptions(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _call_name(node: ast.Call) -> str:
    """Dotted-leaf name of a call's callee (``self._quarantine`` → that)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _escalates(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or records a quarantine."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and "quarantine" in _call_name(node):
            return True
    return False


@register
class ErrorEscalationRule(Rule):
    name = "error-escalation"
    description = (
        "except OSError / StoreCorruptionError / StoreIOError in "
        "store and serving code must re-raise a typed ReproError or "
        "record a quarantine, never swallow"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                # Bare excepts are exception-hygiene's finding; flagging
                # them twice would just double the noise.
                continue
            guarded = [
                name
                for name in _named_exceptions(node.type)
                if name in _GUARDED
            ]
            if not guarded or _escalates(node):
                continue
            yield self.emit(
                module,
                node,
                f"'except {guarded[0]}' swallows an I/O or corruption "
                "failure without re-raising a typed error or recording "
                "a quarantine; escalate it (raise StoreIOError / "
                "StoreCorruptionError / another ReproError), call a "
                "quarantine recorder, or state the swallow's contract "
                "with '# repro: noqa[error-escalation] -- <why>'",
            )
