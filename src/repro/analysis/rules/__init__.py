"""Built-in rules; importing this package registers all of them."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    cache_invalidation,
    determinism,
    dtype_discipline,
    error_escalation,
    exception_hygiene,
    mmap_safety,
    picklability,
)

__all__ = [
    "cache_invalidation",
    "determinism",
    "dtype_discipline",
    "error_escalation",
    "exception_hygiene",
    "mmap_safety",
    "picklability",
]
