"""Rule ``determinism``: kernel modules must be schedule-independent.

The mining/ranking kernels promise byte-identical output across runs,
hosts and worker processes.  Three statically-visible ways to break
that promise:

* **wall-clock reads** (``time.time()``, ``datetime.now()``) — output
  depends on when the code ran;
* **global / unseeded RNG draws** (``random.random()``,
  ``np.random.rand()``, ``random.Random()`` with no seed) — output
  depends on interpreter-global state no caller controls;
* **set-iteration-order dependence** — iterating a ``set`` of strings
  observes ``PYTHONHASHSEED``; two processes mining the same shard can
  disagree (the exact failure mode term-sharded multiprocessing
  guards against by evaluating streams in sorted order).

Iterating a set *inside an order-insensitive consumer* —
``sorted(...)``, ``min``/``max``/``sum``/``any``/``all``,
``set``/``frozenset``/``len`` — is fine and stays unflagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Union

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Wall-clock / entropy reads: nondeterministic regardless of arguments.
BANNED_CALLS: Dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "clock read",
    "time.monotonic_ns": "clock read",
    "time.perf_counter": "clock read",
    "time.perf_counter_ns": "clock read",
    "time.process_time": "clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy read",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "OS entropy read",
}

#: RNG constructors that are deterministic *when given a seed*.
SEEDED_FACTORIES: Set[str] = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

#: Call targets whose argument's iteration order cannot reach output.
ORDER_INSENSITIVE_CONSUMERS: Set[str] = {
    "sorted",
    "min",
    "max",
    "sum",
    "any",
    "all",
    "len",
    "set",
    "frozenset",
}

#: Set methods that return another set.
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

#: Reordering constructors: a name rebound through these is no longer
#: treated as a set (``terms = sorted(terms)``).
_REORDERERS = {"sorted", "list", "tuple"}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]
_CompNode = Union[ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp]


def _scope_bodies(tree: ast.Module) -> Iterator[_FunctionNode]:
    """The module and every (async) function, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _direct_children(scope: _FunctionNode) -> Iterator[ast.AST]:
    """Nodes of ``scope`` excluding nested function bodies.

    Name bindings inside a nested function belong to that function's
    scope, which gets its own pass.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _SetTracker:
    """Local, flow-insensitive inference of set-typed names in a scope."""

    def __init__(self, module: ModuleContext, scope: _FunctionNode) -> None:
        self._module = module
        set_named: Set[str] = set()
        reordered: Set[str] = set()
        self.names: Set[str] = set()
        for node in _direct_children(scope):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            value = node.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if self.is_set_expr(value):
                    set_named.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and self._module.imports.resolve(value.func) in _REORDERERS
                ):
                    reordered.add(target.id)
            # Iterative: a later binding may reference an earlier one
            # (``remaining = set(pending)``), so publish as we go.
            self.names = set_named - reordered

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            resolved = self._module.imports.resolve(node.func)
            if resolved in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
            ):
                return self.is_set_expr(node.func.value)
        return False


def _blessed_nodes(tree: ast.Module, module: ModuleContext) -> Set[int]:
    """ids of comprehension nodes fed directly to an order-insensitive
    consumer (``sorted(term for term in set(a) | set(b))``)."""
    blessed: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if module.imports.resolve(node.func) not in ORDER_INSENSITIVE_CONSUMERS:
            continue
        for arg in node.args:
            if isinstance(
                arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
            ):
                blessed.add(id(arg))
    return blessed


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "kernel modules must not read clocks, draw from global/unseeded "
        "RNGs, or depend on set iteration order"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._check_calls(module)
        yield from self._check_set_iteration(module)

    # -- clocks and RNGs -----------------------------------------------
    def _check_calls(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved in BANNED_CALLS:
                yield self.emit(
                    module,
                    node,
                    f"{resolved}() is a {BANNED_CALLS[resolved]}; kernel "
                    "output must not depend on when or where it runs",
                )
            elif resolved in SEEDED_FACTORIES:
                if not node.args and not node.keywords:
                    yield self.emit(
                        module,
                        node,
                        f"{resolved}() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
            elif resolved.startswith(("random.", "numpy.random.")):
                yield self.emit(
                    module,
                    node,
                    f"{resolved}() draws from interpreter-global RNG state; "
                    "thread a seeded random.Random / numpy Generator "
                    "through instead",
                )

    # -- set iteration order -------------------------------------------
    def _check_set_iteration(self, module: ModuleContext) -> Iterator[Finding]:
        blessed = _blessed_nodes(module.tree, module)
        message = (
            "iteration order of a set observes PYTHONHASHSEED for str "
            "elements; sort first (sorted(..., key=...)) or feed it to an "
            "order-insensitive consumer"
        )
        for scope in _scope_bodies(module.tree):
            tracker = _SetTracker(module, scope)
            for node in _direct_children(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if tracker.is_set_expr(node.iter):
                        yield self.emit(module, node.iter, message)
                elif isinstance(
                    node, (ast.GeneratorExp, ast.ListComp, ast.DictComp)
                ):
                    # SetComp is exempt: producing a *set* from a set
                    # carries no order (and the result is tracked as a
                    # set wherever it is iterated next).
                    if id(node) in blessed:
                        continue
                    # Only the first generator's iterable order can reach
                    # the produced sequence order directly; nested
                    # generators over sets are equally flagged — they
                    # interleave output order too.
                    for comp in node.generators:
                        if tracker.is_set_expr(comp.iter):
                            yield self.emit(module, comp.iter, message)
