"""The rule registries: rules self-register at import time.

Two kinds of rules share one name space (so ``--select``/``--ignore``
and ``# repro: noqa[...]`` treat them uniformly):

* per-file rules (:class:`~repro.analysis.base.Rule`) register with
  :func:`register` and run once per analyzed module;
* program rules (:class:`~repro.analysis.program.base.ProgramRule`)
  register with :func:`register_program` and run once per analysis
  run, over the assembled program graph.

Adding a rule is three steps (see README "Static analysis &
invariants"): subclass the right base, decorate it with the matching
register function, and give it a scope in
:data:`~repro.analysis.config.DEFAULT_SCOPES` (or construct an
:class:`~repro.analysis.config.AnalysisConfig` that scopes it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Type

from repro.analysis.base import Rule
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # deferred: program.base transitively imports rules
    from repro.analysis.program.base import ProgramRule

_REGISTRY: Dict[str, Rule] = {}
_PROGRAM_REGISTRY: Dict[str, "ProgramRule"] = {}


def _claim_name(name: str, class_name: str) -> None:
    if not name:
        raise ConfigurationError(f"rule class {class_name} has no name")
    if name in _REGISTRY or name in _PROGRAM_REGISTRY:
        raise ConfigurationError(f"duplicate rule name {name!r}")


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a per-file rule."""
    _claim_name(rule_class.name, rule_class.__name__)
    _REGISTRY[rule_class.name] = rule_class()
    return rule_class


def register_program(
    rule_class: "Type[ProgramRule]",
) -> "Type[ProgramRule]":
    """Class decorator: instantiate and register a program rule."""
    _claim_name(rule_class.name, rule_class.__name__)
    _PROGRAM_REGISTRY[rule_class.name] = rule_class()
    return rule_class


def _import_builtin_rules() -> None:
    import repro.analysis.program.rules  # noqa: F401  (registration)
    import repro.analysis.rules  # noqa: F401  (registration side effect)


def all_rules() -> List[Rule]:
    """Every registered per-file rule, in name order."""
    _import_builtin_rules()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def all_program_rules() -> List["ProgramRule"]:
    """Every registered program rule, in name order."""
    _import_builtin_rules()
    return [
        _PROGRAM_REGISTRY[name] for name in sorted(_PROGRAM_REGISTRY)
    ]


def all_rule_names() -> List[str]:
    """Every valid rule name (both kinds), sorted."""
    _import_builtin_rules()
    return sorted(set(_REGISTRY) | set(_PROGRAM_REGISTRY))


def get_rule(name: str) -> Rule:
    """Look up one registered per-file rule.

    Raises:
        ConfigurationError: for an unknown rule name.
    """
    _import_builtin_rules()
    if name not in _REGISTRY:
        known = ", ".join(all_rule_names())
        raise ConfigurationError(
            f"unknown rule {name!r}; registered rules: {known}"
        )
    return _REGISTRY[name]
