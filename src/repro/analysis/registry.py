"""The rule registry: rules self-register at import time.

Adding a rule is three steps (see README "Static analysis &
invariants"): subclass :class:`~repro.analysis.base.Rule`, decorate it
with :func:`register`, and give it a scope in
:data:`~repro.analysis.config.DEFAULT_SCOPES` (or construct an
:class:`~repro.analysis.config.AnalysisConfig` that scopes it).
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.base import Rule
from repro.errors import ConfigurationError

_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its name."""
    if not rule_class.name:
        raise ConfigurationError(
            f"rule class {rule_class.__name__} has no name"
        )
    if rule_class.name in _REGISTRY:
        raise ConfigurationError(
            f"duplicate rule name {rule_class.name!r}"
        )
    _REGISTRY[rule_class.name] = rule_class()
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, in name order (importing the built-ins)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rule(name: str) -> Rule:
    """Look up one registered rule.

    Raises:
        ConfigurationError: for an unknown rule name.
    """
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown rule {name!r}; registered rules: {known}"
        )
    return _REGISTRY[name]
