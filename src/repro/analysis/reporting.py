"""Reporters: render an :class:`~repro.analysis.runner.AnalysisReport`.

Two built-in formats.  ``text`` is the human/CI-log format — one
finding per line (``path:line:col: [rule] message``) plus a summary
footer.  ``json`` is the machine format the CI ``lint`` job uploads as
an artifact: per-rule counts, every active finding, and the suppressed
findings so accepted deviations stay auditable.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.runner import AnalysisReport

__all__ = ["render_json", "render_text"]


def _counts_by_rule(report: AnalysisReport) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in report.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(report: AnalysisReport, show_stats: bool = False) -> str:
    """The human-readable report: findings then a one-line summary."""
    lines: List[str] = [finding.render() for finding in report.findings]
    if report.findings:
        counts = ", ".join(
            f"{rule}: {count}"
            for rule, count in _counts_by_rule(report).items()
        )
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.checked_files} file(s) ({counts}); "
            f"{len(report.suppressed)} suppressed"
        )
    else:
        lines.append(
            f"clean: {report.checked_files} file(s) checked, "
            f"0 findings, {len(report.suppressed)} suppressed"
        )
    stats = report.stats
    if show_stats and stats is not None:
        cache = (
            f"cache: {stats.cache_hits} hit(s), "
            f"{stats.cache_misses} miss(es)"
            if stats.cache_enabled
            else "cache: disabled"
        )
        lines.append(
            f"stats: {cache}; graph: {stats.modules} module(s), "
            f"{stats.functions} function(s), {stats.call_edges} call "
            f"edge(s); {stats.elapsed_seconds:.2f}s"
        )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """The machine-readable report (the CI artifact format)."""
    payload = {
        "checked_files": report.checked_files,
        "clean": report.clean,
        "counts": _counts_by_rule(report),
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "stats": None if report.stats is None else report.stats.to_dict(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
