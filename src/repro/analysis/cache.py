"""The incremental summary cache behind warm ``repro check`` runs.

The expensive part of an analysis run is per-file: parsing, the
per-file rule walks, and summary extraction.  All of it is a pure
function of (file bytes, analyzer code, configuration), so the runner
persists each file's outputs — its program summary, its suppression
table, and its per-file findings — in one JSON file under
``.repro-check-cache/``, keyed by content hash.  A warm run re-reads
and re-hashes every source file (cheap) but re-analyzes only the ones
whose bytes changed, then re-runs the graph fixpoints over the mostly
cached summaries; the fixpoints themselves are not cached because any
single-file edit can invalidate them globally and they are cheap to
recompute.

Staleness is handled by construction, not mtime heuristics:

* the cache **fingerprint** hashes every ``repro.analysis`` source
  file plus the effective configuration, so editing a rule, the
  summarizer, or scopes/selects silently discards the whole cache;
* each entry stores the content hash it was computed from, so an
  edited file is a miss even when the cache file is fresh.

Writes are atomic (temp file + ``os.replace``) and best-effort: a
read-only checkout degrades to cold runs, never to an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.analysis.config import AnalysisConfig

__all__ = [
    "CacheStats",
    "SummaryCache",
    "compute_fingerprint",
    "content_hash",
]

#: Bump when the cached entry layout changes shape.
_SCHEMA = "repro-check-cache-v1"

_CACHE_FILENAME = "summaries.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _config_key(config: AnalysisConfig) -> str:
    return repr(
        (
            sorted((name, tuple(frags)) for name, frags in config.scopes.items()),
            sorted(
                (name, sorted((key, repr(value)) for key, value in opts.items()))
                for name, opts in config.options.items()
            ),
            None if config.select is None else sorted(config.select),
            sorted(config.ignore),
        )
    )


def compute_fingerprint(config: AnalysisConfig) -> str:
    """Hash of the analyzer's own code plus the effective config."""
    hasher = hashlib.sha256()
    hasher.update(_SCHEMA.encode("utf-8"))
    root = os.path.dirname(os.path.abspath(__file__))
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            name for name in dirnames if name != "__pycache__"
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            relative = os.path.relpath(full, root).replace(os.sep, "/")
            hasher.update(relative.encode("utf-8"))
            try:
                with open(full, "rb") as handle:
                    hasher.update(handle.read())
            except OSError:  # pragma: no cover - unreadable own source
                hasher.update(b"?")
    hasher.update(_config_key(config).encode("utf-8"))
    return hasher.hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one run (mutated in place by the runner)."""

    enabled: bool = False
    hits: int = 0
    misses: int = 0


class SummaryCache:
    """One JSON file of per-path entries keyed by content hash."""

    def __init__(self, directory: str, fingerprint: str) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    @property
    def path(self) -> str:
        return os.path.join(self.directory, _CACHE_FILENAME)

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("fingerprint") != self.fingerprint:
            return  # analyzer or config changed: start cold
        entries = payload.get("files")
        if isinstance(entries, dict):
            self._entries = {
                str(path): entry
                for path, entry in entries.items()
                if isinstance(entry, dict)
            }

    def get(self, path: str, digest: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``path`` iff its content hash matches."""
        entry = self._entries.get(path.replace(os.sep, "/"))
        if entry is not None and entry.get("hash") == digest:
            return entry
        return None

    def put(self, path: str, digest: str, entry: Dict[str, Any]) -> None:
        stored = dict(entry)
        stored["hash"] = digest
        self._entries[path.replace(os.sep, "/")] = stored
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache; silent no-op when unchanged."""
        if not self._dirty:
            return
        payload = {
            "fingerprint": self.fingerprint,
            "files": self._entries,
        }
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=self.directory,
                prefix=".summaries-",
                suffix=".tmp",
                delete=False,
            )
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, self.path)
        except OSError:  # read-only checkout: degrade to cold runs
            return
        self._dirty = False
