"""Per-rule configuration: which rules run, and on which modules.

Each rule carries a *scope* — a tuple of path fragments; the rule runs
on a module when any fragment occurs in the module's POSIX-normalised
path (``"*"`` matches every module).  The defaults below encode this
project's contracts: determinism is a property of the ranking/mining
kernels, dtype discipline of the store codecs, exception hygiene of
everything.  Tests (and future rules) override scopes by constructing
an :class:`AnalysisConfig` directly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: The byte-identical ranking/mining kernel modules: everything on the
#: mine → score → serve path whose output the differential harnesses
#: pin against the reference implementation.
KERNEL_SCOPE: Tuple[str, ...] = (
    "repro/columnar/",
    "repro/search/topk.py",
    "repro/search/planner.py",
    "repro/temporal/",
    "repro/spatial/",
    "repro/store/",
    "repro/faults/",
)

#: Modules bound by the typed-escalation failure contract: everything
#: that touches store bytes or serves from them.  An ``except OSError``
#: in this scope must escalate (typed ReproError) or quarantine.
ESCALATION_SCOPE: Tuple[str, ...] = (
    "repro/store/",
    "repro/live/",
    "repro/search/",
    "repro/faults/",
)

#: Modules that touch (or receive) memory-mapped segment arrays.
MMAP_SCOPE: Tuple[str, ...] = (
    "repro/store/",
    "repro/columnar/",
    "repro/search/",
    "repro/live/",
)

#: The single module allowed to call a raw array loader — the read
#: boundary where segment arrays are frozen ``writeable=False``.
MMAP_BOUNDARY: Tuple[str, ...] = ("repro/store/format.py",)

#: Classes holding versioned, cache-backed indexed state.
INVALIDATION_SCOPE: Tuple[str, ...] = (
    "repro/streams/",
    "repro/live/",
    "repro/search/",
    "repro/store/",
)

#: Public entry-point modules bound by the typed-error contract: a
#: public function here may only let ``ReproError`` subtypes (or the
#: deliberate ``InjectedCrash``) escape, however deep the raise sits.
ERROR_CONTRACT_SCOPE: Tuple[str, ...] = (
    "repro/cli.py",
    "repro/search/",
    "repro/store/",
    "repro/live/",
)

#: Exception types a public entry point may let escape besides
#: ``ReproError`` subtypes: the fault-injection crash (a deliberate
#: ``BaseException`` so ``except Exception`` cannot eat it) and the
#: control-flow builtins that are protocol, not failure.
ERROR_CONTRACT_ALLOWED: Tuple[str, ...] = (
    "repro.errors.ReproError",
    "repro.faults.io.InjectedCrash",
    "SystemExit",
    "KeyboardInterrupt",
    "GeneratorExit",
    "StopIteration",
    "StopAsyncIteration",
    "NotImplementedError",
)

DEFAULT_SCOPES: Dict[str, Tuple[str, ...]] = {
    "determinism": KERNEL_SCOPE,
    "mmap-safety": MMAP_SCOPE,
    "dtype-discipline": ("repro/store/", "repro/columnar/postings.py"),
    "exception-hygiene": ("*",),
    "error-escalation": ESCALATION_SCOPE,
    "picklability": ("*",),
    "cache-invalidation": INVALIDATION_SCOPE,
    # program (whole-project) rules
    "error-contract": ERROR_CONTRACT_SCOPE,
    "mmap-escape": ("repro/store/",),
    "invalidation-reachability": INVALIDATION_SCOPE,
    "blocking-in-async": ("*",),
}


@dataclasses.dataclass(frozen=True)
class AnalysisConfig:
    """Which rules run where.

    Attributes:
        scopes: rule name → path fragments the rule applies to
            (``"*"`` = everywhere).  A registered rule missing from the
            map never runs.
        options: rule name → free-form rule settings (e.g. the
            mmap-safety boundary module list).
        select: when given, only these rules run.
        ignore: these rules never run (applied after ``select``).
    """

    scopes: Mapping[str, Tuple[str, ...]]
    options: Mapping[str, Mapping[str, object]] = dataclasses.field(
        default_factory=dict
    )
    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()

    def enabled(self, rule_name: str) -> bool:
        if rule_name in self.ignore:
            return False
        if self.select is not None and rule_name not in self.select:
            return False
        return rule_name in self.scopes

    def applies(self, rule_name: str, path: str) -> bool:
        """True when ``rule_name`` should run on the module at ``path``."""
        if not self.enabled(rule_name):
            return False
        posix = path.replace("\\", "/")
        return any(
            fragment == "*" or fragment in posix
            for fragment in self.scopes[rule_name]
        )

    def option(self, rule_name: str, key: str, default: object) -> object:
        return self.options.get(rule_name, {}).get(key, default)


def default_config(
    select: Optional[FrozenSet[str]] = None,
    ignore: FrozenSet[str] = frozenset(),
) -> AnalysisConfig:
    """The project configuration: every rule, project-contract scopes.

    Raises:
        ConfigurationError: when ``select`` or ``ignore`` names a rule
            that is not registered — a typo in ``--select`` must fail
            loudly (exit 2), not pass silently as "no findings".
    """
    from repro.analysis.registry import all_rule_names  # import cycle

    known = all_rule_names()
    for name in sorted((select or frozenset()) | ignore):
        if name not in known:
            raise ConfigurationError(
                f"unknown rule {name!r}; registered rules: "
                f"{', '.join(known)}"
            )
    return AnalysisConfig(
        scopes=dict(DEFAULT_SCOPES),
        options={
            "mmap-safety": {"boundary": MMAP_BOUNDARY},
            "error-contract": {"allowed": ERROR_CONTRACT_ALLOWED},
            "mmap-escape": {"origin": ("repro/store/",)},
        },
        select=select,
        ignore=ignore,
    )
