"""Qualified-name resolution for AST expressions.

Rules match calls by fully-qualified dotted name (``numpy.load``,
``time.time``, ``concurrent.futures.ProcessPoolExecutor``), so alias
forms — ``import numpy as np``, ``from time import time as now`` —
must resolve to the same name.  :class:`ImportMap` records every
import binding of a module and rewrites a ``Name``/``Attribute`` chain
to its canonical dotted form.

Resolution is purely lexical (no type inference): a name that is not
an import binding resolves to itself, which deliberately covers the
builtins (``set``, ``sorted``) the determinism rule matches on.

When the analyzed module's own dotted name is known (the program
analysis layer always knows it), relative imports resolve too:
``from .topk import scan_topk`` inside ``repro.search.engine`` binds
``scan_topk`` to ``repro.search.topk.scan_topk``.  The full alias →
canonical table is exposed as :attr:`ImportMap.bindings`, which is how
:mod:`repro.analysis.program` chases names through package
re-exports (``from repro.search import BurstySearchEngine`` →
``repro.search.engine.BurstySearchEngine``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Mapping, Optional

__all__ = ["ImportMap", "dotted_name", "module_name_for_path"]


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def module_name_for_path(path: str) -> str:
    """Dotted module name of a source file, derived from its path.

    The name starts after the innermost ``src/`` directory when one is
    present (``src/repro/search/topk.py`` → ``repro.search.topk``),
    else at the first ``repro/`` component (so fixture trees that fake
    repo-like paths resolve the same way), else it is the bare file
    stem (``benchmarks/bench_search.py`` → ``bench_search``).  A
    package ``__init__.py`` maps to the package name itself.
    """
    posix = path.replace("\\", "/")
    parts = [part for part in posix.split("/") if part not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        start = len(parts) - 1 - parts[::-1].index("src") + 1
        parts = parts[start:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts)


def _relative_base(
    module_name: str, is_package: bool, level: int
) -> Optional[str]:
    """The package a ``from ..x import y`` (level dots) resolves against."""
    parts = module_name.split(".") if module_name else []
    if not is_package and parts:
        parts = parts[:-1]  # the module's own package
    drop = level - 1
    if drop > len(parts):
        return None
    if drop:
        parts = parts[:-drop]
    return ".".join(parts)


class ImportMap:
    """Alias → canonical dotted name bindings of one module."""

    def __init__(
        self,
        tree: ast.Module,
        module_name: str = "",
        is_package: bool = False,
    ) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else bound
                    self._aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    if not module_name:
                        continue  # caller did not say where we are
                    base = _relative_base(
                        module_name, is_package, node.level
                    )
                    if base is None:
                        continue
                    source = (
                        f"{base}.{node.module}" if node.module else base
                    )
                elif node.module is None:
                    continue
                else:
                    source = node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._aliases[bound] = f"{source}.{alias.name}"

    @property
    def bindings(self) -> Mapping[str, str]:
        """The full alias → canonical-dotted-name table."""
        return self._aliases

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of an expression, or ``None``.

        The chain's root name is rewritten through the import bindings;
        unbound roots (locals, builtins) pass through unchanged.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        canonical = self._aliases.get(root, root)
        return f"{canonical}.{rest}" if rest else canonical
