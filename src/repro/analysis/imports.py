"""Qualified-name resolution for AST expressions.

Rules match calls by fully-qualified dotted name (``numpy.load``,
``time.time``, ``concurrent.futures.ProcessPoolExecutor``), so alias
forms — ``import numpy as np``, ``from time import time as now`` —
must resolve to the same name.  :class:`ImportMap` records every
import binding of a module and rewrites a ``Name``/``Attribute`` chain
to its canonical dotted form.

Resolution is purely lexical (no type inference): a name that is not
an import binding resolves to itself, which deliberately covers the
builtins (``set``, ``sorted``) the determinism rule matches on.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = ["ImportMap", "dotted_name"]


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Alias → canonical dotted name bindings of one module."""

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else bound
                    self._aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay package-local names
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of an expression, or ``None``.

        The chain's root name is rewritten through the import bindings;
        unbound roots (locals, builtins) pass through unchanged.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        canonical = self._aliases.get(root, root)
        return f"{canonical}.{rest}" if rest else canonical
