"""Static invariant analysis for the repro codebase (``repro check``).

Every speedup this reproduction ships rests on one promise: the
columnar kernels, the top-k strategies and the mmap-served store are
**byte-identical** to the reference implementation.  The differential
test harnesses enforce that promise dynamically — but they can only
see a nondeterminism or aliasing bug on a schedule that happens to
trigger it.  This package enforces the project's cross-layer contracts
*statically*, on every commit, by walking the AST of each module:

* :mod:`~repro.analysis.rules.determinism` — no wall-clock reads,
  unseeded RNG draws, or set-iteration-order dependence inside the
  ranking/mining kernel modules;
* :mod:`~repro.analysis.rules.mmap_safety` — segment arrays are loaded
  only through the read boundary, frozen ``writeable=False`` there,
  and never mutated in place downstream;
* :mod:`~repro.analysis.rules.dtype_discipline` — store codecs pin
  explicit little-endian dtypes, never platform-native ones;
* :mod:`~repro.analysis.rules.exception_hygiene` — no bare/broad
  ``except`` without a suppression stating why;
* :mod:`~repro.analysis.rules.picklability` — only module-level
  callables cross a process-pool boundary;
* :mod:`~repro.analysis.rules.cache_invalidation` — versioned classes
  bump their version (or call an invalidation hook) in every mutator.

Per-file rules judge one module at a time.  The
:mod:`~repro.analysis.program` subpackage adds a whole-program layer:
each module is distilled into a JSON-serializable summary, the
summaries are linked into a project-wide call graph
(:class:`~repro.analysis.program.graph.ProgramGraph`), and fixpoint
propagations over that graph power four interprocedural rules —
``error-contract`` (only ``ReproError`` subtypes escape public entry
points, however deep the raise), ``mmap-escape`` (raw loader arrays
frozen on every path out of ``store/``), ``invalidation-reachability``
(mutators reach a version bump through helper chains) and
``blocking-in-async`` (nothing transitively reachable from ``async
def`` blocks the event loop).  Summaries are cached under
``.repro-check-cache/`` keyed by content hash, so a warm ``repro
check`` re-summarizes only edited files while producing findings
identical to a cold run.

Findings are suppressed line-by-line with ``# repro: noqa[rule-name]
-- reason``; the rule set, per-rule scoping and reporters are pluggable
(see :mod:`~repro.analysis.registry` and
:mod:`~repro.analysis.config`).  The ``repro check`` CLI subcommand and
the CI ``lint`` job run the analyzer over ``src/`` and ``benchmarks/``
and fail on any unsuppressed finding.
"""

from __future__ import annotations

from repro.analysis.config import AnalysisConfig, default_config
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    all_program_rules,
    all_rule_names,
    all_rules,
    get_rule,
    register,
    register_program,
)
from repro.analysis.reporting import render_json, render_text
from repro.analysis.runner import (
    AnalysisReport,
    CheckStats,
    check_paths,
    check_source,
    iter_python_files,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "CheckStats",
    "Finding",
    "all_program_rules",
    "all_rule_names",
    "all_rules",
    "check_paths",
    "check_source",
    "default_config",
    "get_rule",
    "iter_python_files",
    "register",
    "register_program",
    "render_json",
    "render_text",
]
