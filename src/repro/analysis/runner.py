"""The analysis runner: files → rules → suppression-filtered findings.

The runner owns everything rules should not care about: discovering
Python files under the given paths, parsing each module once, deciding
which rules apply where (:class:`~repro.analysis.config.AnalysisConfig`
scopes), and splitting raw findings into *active* and *suppressed* via
the module's ``# repro: noqa`` directives.  ``check_source`` is the
seam the test suite drives with fake repo-like paths, so scoping is
exercised without touching the filesystem.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.base import ModuleContext
from repro.analysis.config import AnalysisConfig, default_config
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules
from repro.analysis.suppressions import parse_suppressions

__all__ = [
    "AnalysisReport",
    "check_paths",
    "check_source",
    "iter_python_files",
]

#: Pseudo-rule name used for modules the parser rejects: a file that
#: does not parse cannot be checked, which is itself a finding.
PARSE_ERROR_RULE = "parse-error"

#: Directory names never descended into during file discovery.
_SKIPPED_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclasses.dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analyzer run.

    Attributes:
        findings: active (unsuppressed) findings, in path/line order.
        suppressed: findings silenced by a ``# repro: noqa`` directive,
            kept for the JSON report so suppressions stay auditable.
        checked_files: number of modules parsed and analyzed.
    """

    findings: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...]
    checked_files: int

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, depth-first, sorted.

    Plain files are yielded as given; directories are walked with
    hidden directories and ``__pycache__`` pruned.  Order is
    deterministic (sorted at each level) so reports diff cleanly
    between runs.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in _SKIPPED_DIRS and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(root, filename)


def check_source(
    source: str, path: str, config: AnalysisConfig
) -> Tuple[List[Finding], List[Finding]]:
    """Analyze one module given as text; returns (active, suppressed).

    ``path`` is used only for rule scoping and finding locations — it
    need not exist on disk, which is how the fixture tests run
    violation files under fake kernel-scope paths.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            rule=PARSE_ERROR_RULE,
            path=path,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 1) - 1,
            message=f"module does not parse: {exc.msg}",
        )
        return [finding], []
    module = ModuleContext(path=path, source=source, tree=tree, config=config)
    suppressions = parse_suppressions(source)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in all_rules():
        if not config.applies(rule.name, path):
            continue
        for finding in rule.check(module):
            if suppressions.covers(finding.line, finding.rule):
                suppressed.append(finding)
            else:
                active.append(finding)
    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return active, suppressed


def check_paths(
    paths: Sequence[str], config: Optional[AnalysisConfig] = None
) -> AnalysisReport:
    """Run the analyzer over files and directories.

    Unreadable files surface as :data:`PARSE_ERROR_RULE` findings
    rather than aborting the run — one bad file should not hide the
    findings of the other few hundred.
    """
    if config is None:
        config = default_config()
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    checked = 0
    for file_path in iter_python_files(list(paths)):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=file_path,
                    line=1,
                    col=0,
                    message=f"module could not be read: {exc}",
                )
            )
            continue
        checked += 1
        active, silenced = check_source(source, file_path, config)
        findings.extend(active)
        suppressed.extend(silenced)
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return AnalysisReport(
        findings=tuple(findings),
        suppressed=tuple(suppressed),
        checked_files=checked,
    )
