"""The analysis runner: files → rules → suppression-filtered findings.

The runner owns everything rules should not care about: discovering
Python files under the given paths, parsing each module once, deciding
which rules apply where (:class:`~repro.analysis.config.AnalysisConfig`
scopes), and splitting raw findings into *active* and *suppressed* via
the module's ``# repro: noqa`` directives.  ``check_source`` is the
seam the test suite drives with fake repo-like paths, so scoping is
exercised without touching the filesystem.

``check_paths`` additionally runs the **whole-program** layer: each
file's :class:`~repro.analysis.program.summary.ModuleSummary` feeds a
:class:`~repro.analysis.program.graph.ProgramGraph`, the registered
:class:`~repro.analysis.program.base.ProgramRule` set runs once over
it, and program findings pass through the same per-line suppression
filter as per-file ones.  Per-file work (parse, rules, summary) is
memoized by content hash when a cache directory is given
(:mod:`repro.analysis.cache`); the graph fixpoints always recompute,
because one changed file can shift them anywhere.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.base import ModuleContext
from repro.analysis.cache import (
    CacheStats,
    SummaryCache,
    compute_fingerprint,
    content_hash,
)
from repro.analysis.config import AnalysisConfig, default_config
from repro.analysis.findings import Finding
from repro.analysis.imports import module_name_for_path
from repro.analysis.program.graph import ProgramGraph
from repro.analysis.program.summary import ModuleSummary, summarize_module
from repro.analysis.registry import all_program_rules, all_rules
from repro.analysis.suppressions import Suppressions, parse_suppressions
from repro.errors import AnalysisError

__all__ = [
    "AnalysisReport",
    "CheckStats",
    "check_paths",
    "check_source",
    "iter_python_files",
]

#: Pseudo-rule name used for modules the parser rejects: a file that
#: does not parse cannot be checked, which is itself a finding.
PARSE_ERROR_RULE = "parse-error"

#: Directory names never descended into during file discovery.
_SKIPPED_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclasses.dataclass(frozen=True)
class CheckStats:
    """Run telemetry for ``repro check --stats`` and the CI artifact.

    Attributes:
        cache_enabled: whether a summary cache directory was in use.
        cache_hits: files whose per-file results were reused.
        cache_misses: files (re)analyzed this run.
        modules: modules contributing summaries to the program graph.
        functions: functions in the program graph.
        call_edges: resolved caller → callee edges in the graph.
        elapsed_seconds: wall-clock duration of the whole run.
    """

    cache_enabled: bool
    cache_hits: int
    cache_misses: int
    modules: int
    functions: int
    call_edges: int
    elapsed_seconds: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "cache_enabled": self.cache_enabled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "modules": self.modules,
            "functions": self.functions,
            "call_edges": self.call_edges,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


@dataclasses.dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analyzer run.

    Attributes:
        findings: active (unsuppressed) findings, in path/line order.
        suppressed: findings silenced by a ``# repro: noqa`` directive,
            kept for the JSON report so suppressions stay auditable.
        checked_files: number of modules parsed and analyzed.
        stats: run telemetry; ``None`` for ``check_source``-level runs.
    """

    findings: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...]
    checked_files: int
    stats: Optional[CheckStats] = None

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, depth-first, sorted.

    Plain files are yielded as given; directories are walked with
    hidden directories and ``__pycache__`` pruned.  Order is
    deterministic (sorted at each level) so reports diff cleanly
    between runs.

    Raises:
        AnalysisError: when a given path does not exist or a directory
            under it cannot be listed — a CI job pointed at a
            misspelled path must fail loudly, not check zero files.
    """

    def _walk_failed(error: OSError) -> None:
        raise AnalysisError(
            f"analysis path is not walkable: {error.filename!r} "
            f"({error.strerror})"
        )

    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise AnalysisError(
                f"analysis path does not exist: {path!r}"
            )
        for root, dirnames, filenames in os.walk(path, onerror=_walk_failed):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in _SKIPPED_DIRS and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(root, filename)


def _parse_error(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule=PARSE_ERROR_RULE,
        path=path,
        line=int(exc.lineno or 1),
        col=int(exc.offset or 1) - 1,
        message=f"module does not parse: {exc.msg}",
    )


def _run_file_rules(
    source: str,
    path: str,
    tree: ast.Module,
    config: AnalysisConfig,
    suppressions: Suppressions,
) -> Tuple[List[Finding], List[Finding]]:
    module = ModuleContext(path=path, source=source, tree=tree, config=config)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in all_rules():
        if not config.applies(rule.name, path):
            continue
        for finding in rule.check(module):
            if suppressions.covers(finding.line, finding.rule):
                suppressed.append(finding)
            else:
                active.append(finding)
    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return active, suppressed


def check_source(
    source: str, path: str, config: AnalysisConfig
) -> Tuple[List[Finding], List[Finding]]:
    """Analyze one module given as text; returns (active, suppressed).

    ``path`` is used only for rule scoping and finding locations — it
    need not exist on disk, which is how the fixture tests run
    violation files under fake kernel-scope paths.  Only per-file
    rules run here: program rules need the whole file set and run in
    :func:`check_paths`.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [_parse_error(path, exc)], []
    return _run_file_rules(
        source, path, tree, config, parse_suppressions(source)
    )


def _analyze_file(
    source: str, path: str, config: AnalysisConfig
) -> Dict[str, Any]:
    """The cacheable per-file unit: findings + summary + suppressions."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return {
            "active": [_parse_error(path, exc).to_dict()],
            "suppressed": [],
            "summary": None,
            "suppressions": Suppressions({}).to_jsonable(),
        }
    suppressions = parse_suppressions(source)
    active, suppressed = _run_file_rules(
        source, path, tree, config, suppressions
    )
    summary = summarize_module(path, module_name_for_path(path), tree)
    return {
        "active": [finding.to_dict() for finding in active],
        "suppressed": [finding.to_dict() for finding in suppressed],
        "summary": summary.to_jsonable(),
        "suppressions": suppressions.to_jsonable(),
    }


def _findings_from(entries: Sequence[Dict[str, Any]]) -> List[Finding]:
    return [
        Finding(
            rule=str(entry["rule"]),
            path=str(entry["path"]),
            line=int(entry["line"]),
            col=int(entry["col"]),
            message=str(entry["message"]),
        )
        for entry in entries
    ]


def _run_program_rules(
    summaries: Dict[str, ModuleSummary],
    suppressions: Dict[str, Suppressions],
    config: AnalysisConfig,
) -> Tuple[List[Finding], List[Finding], ProgramGraph]:
    graph = ProgramGraph(
        {summary.module: summary for summary in summaries.values()}
    )
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in all_program_rules():
        if not config.enabled(rule.name):
            continue
        for finding in rule.check(graph, config):
            table = suppressions.get(finding.path)
            if table is not None and table.covers(finding.line, finding.rule):
                suppressed.append(finding)
            else:
                active.append(finding)
    return active, suppressed, graph


def check_paths(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    cache_dir: Optional[str] = None,
) -> AnalysisReport:
    """Run the full analyzer (per-file + program rules) over paths.

    Unreadable files surface as :data:`PARSE_ERROR_RULE` findings
    rather than aborting the run — one bad file should not hide the
    findings of the other few hundred.  Nonexistent *paths* raise
    :class:`~repro.errors.AnalysisError` (see
    :func:`iter_python_files`).

    When ``cache_dir`` is given, per-file results are reused from the
    summary cache for files whose content hash is unchanged.
    """
    started = time.monotonic()
    if config is None:
        config = default_config()
    cache: Optional[SummaryCache] = None
    cache_stats = CacheStats(enabled=cache_dir is not None)
    if cache_dir is not None:
        cache = SummaryCache(cache_dir, compute_fingerprint(config))
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    summaries: Dict[str, ModuleSummary] = {}
    suppression_tables: Dict[str, Suppressions] = {}
    checked = 0
    for file_path in iter_python_files(list(paths)):
        try:
            with open(file_path, "rb") as handle:
                raw = handle.read()
            source = raw.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=file_path,
                    line=1,
                    col=0,
                    message=f"module could not be read: {exc}",
                )
            )
            continue
        checked += 1
        digest = content_hash(raw)
        entry: Optional[Dict[str, Any]] = None
        if cache is not None:
            entry = cache.get(file_path, digest)
        if entry is not None:
            cache_stats.hits += 1
        else:
            cache_stats.misses += 1
            entry = _analyze_file(source, file_path, config)
            if cache is not None:
                cache.put(file_path, digest, entry)
        findings.extend(_findings_from(entry["active"]))
        suppressed.extend(_findings_from(entry["suppressed"]))
        if entry["summary"] is not None:
            summaries[file_path] = ModuleSummary.from_jsonable(
                entry["summary"]
            )
        suppression_tables[file_path] = Suppressions.from_jsonable(
            entry["suppressions"]
        )
    program_active, program_suppressed, graph = _run_program_rules(
        summaries, suppression_tables, config
    )
    findings.extend(program_active)
    suppressed.extend(program_suppressed)
    if cache is not None:
        cache.save()
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    stats = CheckStats(
        cache_enabled=cache_stats.enabled,
        cache_hits=cache_stats.hits,
        cache_misses=cache_stats.misses,
        modules=len(graph.modules),
        functions=len(graph.functions),
        call_edges=graph.call_edge_count,
        elapsed_seconds=time.monotonic() - started,
    )
    return AnalysisReport(
        findings=tuple(findings),
        suppressed=tuple(suppressed),
        checked_files=checked,
        stats=stats,
    )
