"""Live bursty-document search over a continuously-ingesting collection.

:class:`LiveSearchEngine` is the serving-path counterpart of the static
:class:`~repro.search.engine.BurstySearchEngine`: same scoring model
(Eq. 10/11 — relevance × aggregated overlapping-pattern burstiness,
top-k via the Threshold Algorithm), but every derived structure is
maintained incrementally:

* **patterns** are lazily re-mined per term through an
  :class:`~repro.pipeline.incremental.IncrementalFeeder` — sealed
  snapshots are committed into a durable
  :class:`~repro.core.stlocal.STLocalTermTracker`, the open snapshot is
  previewed on a fork;
* **posting lists** live in a :class:`~repro.live.index.LiveIndex`:
  when a term's pattern set is unchanged, documents ingested since the
  last sync are scored against it and appended as a delta (``O(new
  docs)``); when the pattern set shifted, that term's list — and only
  that term's — is rebuilt;
* **consistency** is tracked per term with
  :meth:`~repro.live.collection.LiveCollection.term_version`: a term's
  cached state is provably current unless a document *containing the
  term* arrived, because documents without it cannot move the term's
  snapshots, patterns or postings;
* **results** are memoised in a bounded LRU keyed on
  ``(query terms, k, epoch)`` — any ingest bumps the epoch, so a stale
  entry can never be served, and old-epoch entries age out of the
  bounded cache.

Every answer is byte-identical to rebuilding a fresh collection, batch
mining it, and querying a static engine — the differential harness in
``tests/test_live_differential.py`` is the acceptance oracle.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import STLocalConfig
from repro.core.patterns import RegionalPattern
from repro.errors import SearchError
from repro.live.collection import LiveCollection
from repro.live.index import LiveIndex
from repro.pipeline.incremental import IncrementalFeeder
from repro.search.engine import SearchResult, _default_aggregate, score_posting
from repro.search.inverted_index import Posting
from repro.search.relevance import RelevanceFunction, log_relevance
from repro.search.topk import STRATEGIES, normalize_query_terms, topk
from repro.streams.document import Document, tokenize

__all__ = ["LiveSearchEngine", "ServingStats"]


@dataclasses.dataclass
class ServingStats:
    """Serving-path counters (observability for the live layer).

    Attributes:
        cache_hits: Queries answered from the LRU result cache.
        cache_misses: Queries that ran the Threshold Algorithm.
        rebuilds: Full per-term posting-list rebuilds (pattern shift).
        delta_updates: Incremental per-term delta appends.
        served_current: Terms served from an already-current state.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    rebuilds: int = 0
    delta_updates: int = 0
    served_current: int = 0


@dataclasses.dataclass
class _TermState:
    """Per-term sync point between collection, patterns and postings."""

    patterns: List[RegionalPattern]
    version: int  # LiveCollection.term_version at last sync
    doc_cursor: int  # documents_with(term) prefix already indexed


class LiveSearchEngine:
    """Incrementally-maintained top-k serving over regional patterns.

    Args:
        live: The ingesting collection to serve from.
        relevance: Per-term relevance function (default log).
        aggregate: Aggregation of overlapping-pattern scores (default
            max, the paper's best setting).
        config: STLocal settings for the live miners.
        cache_size: Capacity of the LRU result cache.
        compaction_threshold: Delta size that triggers a posting-list
            compaction *on the ingest path* (see
            :class:`~repro.live.index.LiveIndex`), bounding delta
            growth for terms that are written but not queried.  A
            *queried* term compacts its pending delta immediately
            regardless of the threshold: the vectorized kernel reads
            the compacted columnar base directly, whereas serving a
            lazy merge view would re-materialise the whole list on
            every query — strictly more work than compacting once.
        strategy: Default top-k execution strategy (``auto`` lets the
            planner pick per query; see :mod:`repro.search.topk`).
            Strategies are byte-identical in output, so the result
            cache is shared across them.
        planner: Optional :class:`~repro.search.planner.
            CalibratedPlanner` consulted by ``auto`` queries.  Its
            merged-ranking cache is keyed by the queried terms'
            ``term_version`` tuple, so an ingest touching a term
            invalidates exactly that term's combinations while
            unrelated hot combinations keep serving.
    """

    def __init__(
        self,
        live: LiveCollection,
        relevance: RelevanceFunction = log_relevance,
        aggregate: Callable[[Sequence[float]], float] = _default_aggregate,
        config: Optional[STLocalConfig] = None,
        cache_size: int = 128,
        compaction_threshold: int = 32,
        strategy: str = "auto",
        planner=None,
    ) -> None:
        if cache_size < 1:
            raise SearchError("cache_size must be >= 1")
        if strategy not in STRATEGIES:
            raise SearchError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.strategy = strategy
        self.planner = planner
        self.live = live
        self.relevance = relevance
        self.aggregate = aggregate
        self.config = config
        self._feeder: Optional[IncrementalFeeder] = None
        self.index = LiveIndex(compaction_threshold)
        self.stats = ServingStats()
        self._states: Dict[str, _TermState] = {}
        self._cache: "OrderedDict[Tuple, List[SearchResult]]" = OrderedDict()
        self._cache_size = cache_size

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def search(
        self, query: str, k: int = 10, strategy: Optional[str] = None
    ) -> List[SearchResult]:
        """Top-k bursty documents for a text query, served live.

        Query terms are normalised (deduplicated, sorted) before both
        the posting-list lookup and the LRU cache key, so a repeated
        term is never double-counted and ``"a b"`` / ``"b a"`` /
        ``"a a b"`` share one cache entry.  The key deliberately omits
        the strategy — every strategy returns the identical ranking.

        The returned list is always a fresh copy, and the
        :class:`~repro.search.engine.SearchResult` /
        :class:`~repro.streams.document.Document` elements are frozen
        dataclasses: callers can sort, slice or drop entries — and
        cannot rebind result fields — without corrupting the LRU cache
        that later hits are served from.  This is a regression-tested
        contract (``tests/test_live.py``).

        Raises:
            SearchError: on an empty query, non-positive ``k`` or an
                unknown strategy.
        """
        if strategy is not None and strategy not in STRATEGIES:
            # Validated before the cache lookup: a typoed strategy must
            # fail identically whether or not the query is cached.
            raise SearchError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        terms = normalize_query_terms(tokenize(query))
        if not terms:
            raise SearchError("empty query")
        key = (terms, k, self.live.epoch)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.cache_hits += 1
            return list(cached)
        self.stats.cache_misses += 1
        lists = [self._term_list(term) for term in terms]
        ranked, _ = topk(
            lists,
            k,
            strategy or self.strategy,
            planner=self.planner,
            terms=terms,
            token=tuple(self.live.term_version(term) for term in terms),
        )
        results = [
            SearchResult(
                document=self.live.document(result.doc_id), score=result.score
            )
            for result in ranked
        ]
        self._cache[key] = results
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return list(results)

    def patterns_for(self, term: str) -> List[RegionalPattern]:
        """The term's current regional patterns (re-mined if stale)."""
        self._sync_term(term)
        return list(self._states[term].patterns)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: str, codec: str = "raw") -> None:
        """Persist this engine's full serving state as a ``live`` store.

        Captures the arrival-ordered document table, the sealed tracker
        state of every mined term, the compacted posting bases, the
        per-term sync cursors, and the collection's watermark and epoch
        — everything :meth:`restore` needs to resume ingestion and
        serving without replaying the feed.  Pending posting deltas are
        compacted first, so the persisted bases are exact.

        ``codec`` picks the posting-column layout (``"raw"`` or
        ``"packed"``), exactly as ``repro save --codec`` does for index
        stores; restore is codec-agnostic.

        Raises:
            StoreError: when the target directory is not empty, or the
                engine state has no stable binary encoding (custom
                expectation models).
        """
        from repro.store import save_live_checkpoint

        save_live_checkpoint(path, self, codec=codec)

    def restore(self, path: str) -> None:
        """Replace this engine's state with a persisted checkpoint.

        The backing index identity changes wholesale, so the serving
        statistics are reset and the result cache cleared: counters
        carried across a restore would report hit-rates for an index
        they never measured.  An attached planner's merged-ranking
        cache is dropped for the same reason — the restored
        collection's term versions could coincide with stale ones.

        Raises:
            StoreError: for a missing/corrupted store, a non-``live``
                store, or STLocal settings that contradict this
                engine's ``config``.
        """
        from repro.store import restore_live_checkpoint

        restore_live_checkpoint(path, self)
        if self.planner is not None:
            self.planner.invalidate_merged()

    @classmethod
    def from_checkpoint(cls, path, **engine_kwargs) -> "LiveSearchEngine":
        """Construct an engine directly from a ``live`` checkpoint.

        Accepts the constructor's keyword arguments except ``live``
        (the collection is rebuilt from the checkpoint).
        """
        engine = cls(LiveCollection(1), **engine_kwargs)
        engine.restore(path)
        return engine

    @property
    def cached_queries(self) -> int:
        """Entries currently held by the LRU result cache."""
        return len(self._cache)

    @property
    def feeder(self) -> IncrementalFeeder:
        """The per-term tracker feeder, bound to the final stream set.

        Streams are frozen once ingestion starts, so the feeder is
        (re)created while the collection is still empty and stable from
        the first ingest on — discarding a pre-ingest feeder loses
        nothing, its trackers can only ever have seen empty prefixes.
        """
        if self._feeder is None or len(self._feeder.locations) != len(self.live):
            # A length mismatch proves the feeder predates stream
            # registration (streams freeze at the first ingest), so its
            # trackers can only have seen empty prefixes.
            self._feeder = IncrementalFeeder(self.live.locations(), self.config)
        return self._feeder

    # ------------------------------------------------------------------
    # Per-term maintenance
    # ------------------------------------------------------------------
    def _term_list(self, term: str):
        self._sync_term(term)
        # Compact any pending delta before querying: the compacted base
        # is a columnar PostingArray whose score/tiebreak columns the
        # vectorized top-k kernel consumes directly (order-exact, so
        # results are unchanged).
        self.index.compact_pending(term)
        return self.index.get(term)

    def _sync_term(self, term: str) -> None:
        """Bring one term's patterns + postings up to the current epoch."""
        state = self._states.get(term)
        version = self.live.term_version(term)
        if state is not None and state.version == version:
            self.stats.served_current += 1
            return

        patterns = self._mine(term)
        if state is None or patterns != state.patterns:
            # Pattern shift (or first touch): every existing posting's
            # burstiness factor may have changed — rebuild this term.
            documents = self.live.documents_with(term)
            self.index.set_base(term, self._score(documents, term, patterns))
            self._states[term] = _TermState(
                patterns=patterns, version=version, doc_cursor=len(documents)
            )
            self.stats.rebuilds += 1
            return
        # Same pattern set: only the documents ingested since the last
        # sync need scoring; they join the term's delta.
        fresh = self.live.documents_with(term, start=state.doc_cursor)
        self.index.append_delta(term, self._score(fresh, term, patterns))
        state.version = version
        state.doc_cursor += len(fresh)
        self.stats.delta_updates += 1

    def _mine(self, term: str) -> List[RegionalPattern]:
        return self.feeder.mine_term(
            term,
            self.live.term_snapshots(term),
            sealed=self.live.sealed,
            through=self.live.watermark + 1,
        )

    def _score(
        self,
        documents: Sequence[Document],
        term: str,
        patterns: Sequence[RegionalPattern],
    ) -> List[Posting]:
        """Eq. 10/11 postings, via the engines' shared scoring helper."""
        postings: List[Posting] = []
        if not patterns:
            return postings
        for document in documents:
            posting = score_posting(
                document, term, patterns, self.relevance, self.aggregate
            )
            if posting is not None:
                postings.append(posting)
        return postings
