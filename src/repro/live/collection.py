"""Append-only live ingestion over a spatiotemporal collection.

:class:`LiveCollection` wraps :class:`~repro.streams.collection.
SpatiotemporalCollection` with the ingestion discipline of a serving
system:

* **append-only time** — documents arrive in non-decreasing timestamp
  order (per snapshot, not per document: many documents may share the
  watermark timestamp).  Once a later timestamp is observed, every
  earlier snapshot is *sealed* and can never change again — which is
  what lets downstream trackers commit sealed snapshots durably and
  preview only the open tail;
* **epoch counter** — every mutation bumps the epoch, giving caches a
  single integer to key consistency on;
* **incremental term views** — the per-term sparse snapshots
  (``timestamp → stream → frequency``) and per-term document postings
  are maintained on ingest in ``O(|terms(d)|)``, so serving a query
  never rescans the collection.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import StreamError
from repro.spatial.geometry import Point
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.document import Document
from repro.streams.stream import DocumentStream

__all__ = ["LiveCollection"]


class LiveCollection:
    """An ingestion façade enforcing live-serving invariants.

    Args:
        timeline: Number of timestamps of the underlying collection.

    Streams must be registered (:meth:`add_stream`) before the first
    document is ingested: the live miners share one immutable location
    map, and a stream appearing mid-flight would invalidate every
    tracker retroactively.
    """

    def __init__(self, timeline: int) -> None:
        self._inner = SpatiotemporalCollection(timeline)
        self._epoch = 0
        self._watermark = -1  # highest ingested timestamp; -1 = empty
        # term → timestamp → stream → frequency (live tensor slices).
        self._term_snapshots: Dict[str, Dict[int, Dict[Hashable, float]]] = {}
        # term → documents containing it, in arrival order.
        self._term_docs: Dict[str, List[Document]] = {}
        self._docs_by_id: Dict[Hashable, Document] = {}
        self._listeners: List[Callable[[Document], None]] = []

    # ------------------------------------------------------------------
    # Construction / ingestion
    # ------------------------------------------------------------------
    def add_stream(
        self,
        stream_id: Hashable,
        location: Point,
        latlon: Optional[Tuple[float, float]] = None,
    ) -> DocumentStream:
        """Register a stream; only allowed before ingestion begins.

        Raises:
            StreamError: after the first document has been ingested, or
                on a duplicate stream id.
        """
        if self._watermark >= 0:
            raise StreamError(
                "streams must be registered before ingestion begins "
                "(live trackers share a fixed location map)"
            )
        stream = self._inner.add_stream(stream_id, location, latlon=latlon)
        self._epoch += 1
        return stream

    def ingest(self, document: Document) -> int:
        """Append one document; returns the new epoch.

        Raises:
            StreamError: on a late arrival (timestamp behind the
                watermark — that snapshot is sealed), a duplicate
                document id, an unknown stream, or a timestamp outside
                the timeline.
        """
        if document.timestamp < self._watermark:
            raise StreamError(
                f"late arrival: timestamp {document.timestamp} is behind "
                f"the watermark {self._watermark}; sealed snapshots are "
                "immutable"
            )
        if document.doc_id in self._docs_by_id:
            raise StreamError(
                f"duplicate document id {document.doc_id!r}: live indexes "
                "key their deltas on unique ids"
            )
        self._inner.add_document(document)  # validates stream + timeline
        self._docs_by_id[document.doc_id] = document
        self._watermark = max(self._watermark, document.timestamp)
        for term, count in document.term_counts().items():
            slices = self._term_snapshots.setdefault(term, {})
            snapshot = slices.setdefault(document.timestamp, {})
            snapshot[document.stream_id] = (
                snapshot.get(document.stream_id, 0.0) + float(count)
            )
            self._term_docs.setdefault(term, []).append(document)
        self._epoch += 1
        for listener in self._listeners:
            listener(document)
        return self._epoch

    def ingest_snapshot(
        self, timestamp: int, documents: Iterable[Document]
    ) -> int:
        """Ingest a batch of documents all stamped ``timestamp``.

        Sealing is implicit: once this returns, every snapshot before
        ``timestamp`` is immutable (and so is this one, as soon as any
        later timestamp arrives).

        Returns:
            The number of documents ingested.

        Raises:
            StreamError: when a document carries a different timestamp,
                or on any :meth:`ingest` violation.
        """
        count = 0
        for document in documents:
            if document.timestamp != timestamp:
                raise StreamError(
                    f"snapshot batch for timestamp {timestamp} contains a "
                    f"document stamped {document.timestamp}"
                )
            self.ingest(document)
            count += 1
        if count == 0:
            self.advance_to(timestamp)
        return count

    def advance_to(self, timestamp: int) -> int:
        """Declare that time has reached ``timestamp`` with no arrivals.

        Seals every earlier snapshot (an empty tick in the feed).
        Returns the new epoch.

        Raises:
            StreamError: when moving backwards or outside the timeline.
        """
        if timestamp < self._watermark:
            raise StreamError(
                f"cannot advance backwards ({timestamp} < {self._watermark})"
            )
        if not 0 <= timestamp < self.timeline:
            raise StreamError(
                f"timestamp {timestamp} outside timeline [0, {self.timeline})"
            )
        if timestamp != self._watermark:
            self._watermark = timestamp
            self._epoch += 1
        return self._epoch

    def subscribe(self, listener: Callable[[Document], None]) -> None:
        """Register a callback invoked after every ingested document."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def collection(self) -> SpatiotemporalCollection:
        """The underlying collection (treat as read-only)."""
        return self._inner

    @property
    def epoch(self) -> int:
        """Mutation epoch; bumps on every ingest / advance / stream."""
        return self._epoch

    @property
    def watermark(self) -> int:
        """The open snapshot's timestamp (``-1`` while empty).

        Timestamps strictly below the watermark are sealed; the
        watermark snapshot itself may still receive documents.
        """
        return self._watermark

    @property
    def sealed(self) -> int:
        """First unsealed timestamp: snapshots ``[0, sealed)`` are final."""
        return max(self._watermark, 0)

    @property
    def timeline(self) -> int:
        return self._inner.timeline

    @property
    def document_count(self) -> int:
        return self._inner.document_count

    @property
    def vocabulary(self) -> Set[str]:
        return self._inner.vocabulary

    def locations(self) -> Dict[Hashable, Point]:
        return self._inner.locations()

    # ------------------------------------------------------------------
    # Incremental term views
    # ------------------------------------------------------------------
    def term_snapshots(self, term: str) -> Dict[int, Dict[Hashable, float]]:
        """The term's sparse per-timestamp slices, maintained on ingest.

        Same shape as
        :meth:`repro.streams.FrequencyTensor.term_snapshots`.
        """
        return self._term_snapshots.get(term, {})

    def term_version(self, term: str) -> int:
        """Monotonic per-term change counter.

        Equal to the number of ingested documents containing the term —
        it advances exactly when the term's snapshots (and hence its
        patterns or postings) can have changed.  Documents *without*
        the term never move it: feeding a tracker additional empty
        snapshots cannot create, destroy or rescore a maximal window,
        so per-term caches keyed on this counter stay consistent.
        """
        return len(self._term_docs.get(term, ()))

    def documents_with(self, term: str, start: int = 0) -> List[Document]:
        """Documents containing the term, in arrival order.

        Args:
            term: The term to look up.
            start: Skip this many leading documents — pass a cursor
                from a previous :meth:`term_version` read to fetch only
                the documents ingested since, without copying the full
                history.
        """
        documents = self._term_docs.get(term)
        if documents is None:
            return []
        return documents[start:]

    def ingested_documents(self) -> List[Document]:
        """Every ingested document, in arrival order.

        The arrival order is what a checkpoint must persist: replaying
        it through a fresh collection reproduces the per-term views,
        watermark and sealing behaviour exactly (ingest admits only
        non-decreasing timestamps, so the recorded order always
        revalidates).
        """
        return list(self._docs_by_id.values())

    def has_document(self, doc_id: Hashable) -> bool:
        """True when a document id has already been ingested."""
        return doc_id in self._docs_by_id

    def document(self, doc_id: Hashable) -> Document:
        """Look up an ingested document by id.

        Raises:
            StreamError: for an unknown id.
        """
        document = self._docs_by_id.get(doc_id)
        if document is None:
            raise StreamError(f"unknown document {doc_id!r}")
        return document

    def __len__(self) -> int:
        """Number of streams, mirroring the wrapped collection."""
        return len(self._inner)
