"""Live inverted index: base posting lists plus query-merged deltas.

A static :class:`~repro.search.inverted_index.PostingList` costs
``O(n log n)`` to rebuild, so re-sorting a term's full list on every
ingested document would make ingestion cost proportional to the corpus.
:class:`LiveIndex` instead keeps, per term, an immutable *base* list
plus a small sorted *delta* of postings appended since the base was
built; reads go through :class:`DeltaPostingList`, a lazy two-way merge
that exposes the exact access protocol the Threshold Algorithm needs
(sorted access, random access, iteration).  One new document therefore
costs ``O(|terms(d)| · log delta)``, and a query pays only for the
merge prefix TA actually descends.

When a term's delta outgrows ``compaction_threshold`` the two lists are
compacted into a fresh base — the classic LSM trade-off in miniature.
Bases are stored as columnar
:class:`~repro.columnar.postings.PostingArray` segments, so compaction
is one array concatenation plus a stable ``lexsort`` — byte-identical
to the lazy two-way merge (:meth:`DeltaPostingList.compact` remains the
reference path, and is still what serves reads while a delta is
pending).

The merge is *order-exact*: base and delta are each sorted by the same
``(-score, tiebreak)`` key as a from-scratch
:class:`~repro.search.inverted_index.PostingList`, and ties across the
boundary prefer the base side (matching Python's stable sort over
base-then-delta input), so a merged view is indistinguishable from a
cold rebuild — the property the differential tests pin down.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.columnar.postings import PostingArray
from repro.errors import SearchError
from repro.search.inverted_index import (
    Posting,
    PostingList,
    random_access_map,
    rank_tiebreak,
)

__all__ = ["DeltaPostingList", "LiveIndex"]


def _order_key(posting: Posting) -> Tuple[float, int]:
    return (-posting.score, rank_tiebreak(posting.doc_id))


class DeltaPostingList:
    """Read-only merged view over a base posting list and its delta.

    The merge is materialised lazily, one rank at a time, as sorted
    access descends — TA usually stops after a short prefix, so most of
    the merge is never paid for.
    """

    def __init__(self, base: PostingList, delta: PostingList) -> None:
        self._base = base
        self._delta = delta
        self._merged: List[Posting] = []
        self._base_rank = 0
        self._delta_rank = 0
        self._by_doc_cache: Optional[Dict[Hashable, float]] = None

    def __len__(self) -> int:
        return len(self._base) + len(self._delta)

    def __iter__(self) -> Iterator[Posting]:
        self._extend_to(len(self) - 1)
        return iter(self._merged)

    def _extend_to(self, rank: int) -> None:
        while len(self._merged) <= rank:
            head_base = self._base.sorted_access(self._base_rank)
            head_delta = self._delta.sorted_access(self._delta_rank)
            if head_base is None and head_delta is None:
                return
            if head_delta is None or (
                head_base is not None
                and _order_key(head_base) <= _order_key(head_delta)
            ):
                self._merged.append(head_base)
                self._base_rank += 1
            else:
                self._merged.append(head_delta)
                self._delta_rank += 1

    def sorted_access(self, rank: int) -> Optional[Posting]:
        """The posting at a merged rank, or ``None`` past the end."""
        self._extend_to(rank)
        if rank < len(self._merged):
            return self._merged[rank]
        return None

    def random_access(self, doc_id: Hashable) -> Optional[float]:
        """Score of a document in either side, or ``None`` if absent."""
        score = self._delta.random_access(doc_id)
        if score is not None:
            return score
        return self._base.random_access(doc_id)

    @property
    def _by_doc(self) -> Dict[Hashable, float]:
        """Merged random-access map (delta overrides base).

        Exposes the same relation as :meth:`random_access` so
        :func:`repro.search.inverted_index.random_access_map` — and
        through it the vectorized top-k kernel — can gather scores from
        a merged view without per-document probes.
        """
        if self._by_doc_cache is None:
            merged = dict(random_access_map(self._base))
            merged.update(random_access_map(self._delta))
            self._by_doc_cache = merged
        return self._by_doc_cache

    def top(self, k: int) -> List[Posting]:
        """The ``k`` best postings of the merged view."""
        self._extend_to(k - 1)
        return self._merged[:k]

    def compact(self) -> PostingList:
        """Materialise the merge into a plain posting list.

        The merged sequence is already in posting-list order, so the
        constructor's stable sort preserves it exactly.
        """
        self._extend_to(len(self) - 1)
        return PostingList(self._merged)


#: What a read can return: a plain list (no pending delta) or a merge.
LivePostingList = Union[PostingList, DeltaPostingList]


class LiveIndex:
    """Term → (base posting list, delta) map with query-time merging.

    Args:
        compaction_threshold: Compact a term once its delta holds this
            many postings (the merged read path stays exact either way;
            compaction just restores ``O(1)`` sorted access).
    """

    def __init__(self, compaction_threshold: int = 32) -> None:
        if compaction_threshold < 1:
            raise SearchError("compaction_threshold must be >= 1")
        self.compaction_threshold = compaction_threshold
        self._base: Dict[str, PostingList] = {}
        self._delta: Dict[str, List[Posting]] = {}
        self._delta_ids: Dict[str, set] = {}
        self.compactions = 0

    # ------------------------------------------------------------------
    def __contains__(self, term: str) -> bool:
        return term in self._base

    def __len__(self) -> int:
        return len(self._base)

    def terms(self) -> List[str]:
        """All indexed terms."""
        return list(self._base)

    def delta_size(self, term: str) -> int:
        """Pending (un-compacted) postings of a term."""
        return len(self._delta.get(term, ()))

    # ------------------------------------------------------------------
    def set_base(self, term: str, postings: Sequence[Posting]) -> None:
        """(Re)build a term's base list, dropping any pending delta.

        Accepts either raw postings or an already-built posting list
        (e.g. a columnar :class:`PostingArray` from the vectorized
        scorer).
        """
        if isinstance(postings, PostingList):
            self._base[term] = postings
        else:
            self._base[term] = PostingArray.from_postings(postings)
        self._delta.pop(term, None)
        self._delta_ids.pop(term, None)

    def append_delta(self, term: str, postings: Sequence[Posting]) -> None:
        """Append freshly-scored postings to a term's delta.

        The term must already have a base list (possibly empty) — the
        delta is meaningful only relative to one.

        Raises:
            SearchError: for an unindexed term or a duplicate document.
        """
        if term not in self._base:
            raise SearchError(
                f"term {term!r} has no base posting list; call set_base first"
            )
        if not postings:
            return
        base = self._base[term]
        known = self._delta_ids.setdefault(term, set())
        batch_ids = set()
        for posting in postings:
            if (
                posting.doc_id in batch_ids
                or posting.doc_id in known
                or base.random_access(posting.doc_id) is not None
            ):
                raise SearchError(
                    f"document {posting.doc_id!r} already indexed for "
                    f"term {term!r}"
                )
            batch_ids.add(posting.doc_id)
        # Validated as a whole before any mutation: a bad batch leaves
        # the delta untouched.
        self._delta.setdefault(term, []).extend(postings)
        known.update(batch_ids)
        if len(self._delta[term]) >= self.compaction_threshold:
            self._compact(term)

    def compact_pending(self, term: str) -> bool:
        """Compact a term's pending delta (if any) into its base.

        The serving path calls this before handing a term's postings to
        the vectorized top-k kernel: the compacted base is a columnar
        :class:`~repro.columnar.postings.PostingArray` whose score and
        tiebreak columns the kernel consumes directly, whereas a lazy
        :class:`DeltaPostingList` merge view is rebuilt per read and
        would re-materialise the whole list on every query.  Reads
        therefore compact eagerly; ``compaction_threshold`` still
        bounds delta growth for terms that only see writes.  Compaction
        is order-exact, so results are unchanged — only the execution
        strategy is.

        Returns:
            True when a pending delta was compacted.
        """
        if term not in self._base or not self._delta.get(term):
            return False
        self._compact(term)
        return True

    def invalidate(self, term: str) -> bool:
        """Drop a term entirely; True when it was indexed."""
        self._delta.pop(term, None)
        self._delta_ids.pop(term, None)
        return self._base.pop(term, None) is not None

    # ------------------------------------------------------------------
    def get(self, term: str) -> Optional[LivePostingList]:
        """The term's current postings view, or ``None`` if unindexed."""
        base = self._base.get(term)
        if base is None:
            return None
        delta = self._delta.get(term)
        if not delta:
            return base
        return DeltaPostingList(base, PostingList(delta))

    # ------------------------------------------------------------------
    def _compact(self, term: str) -> None:
        base = self._base[term]
        delta = self._delta.pop(term)
        if isinstance(base, PostingArray):
            # Columnar: concatenate the sorted segments and stable-sort
            # by the shared key — the exact two-way merge order, base
            # side preferred on full-key ties.
            merged = base.merged_with(PostingArray.from_postings(delta))
        else:
            # Reference path (also the differential-test oracle).
            merged = DeltaPostingList(base, PostingList(delta)).compact()
        self._base[term] = merged
        self._delta_ids.pop(term, None)
        self.compactions += 1
