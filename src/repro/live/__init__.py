"""Live ingestion + serving layer (append-only, incrementally indexed).

The static stack (:class:`~repro.streams.SpatiotemporalCollection` →
:class:`~repro.pipeline.BatchMiner` →
:class:`~repro.search.BurstySearchEngine`) is build-once: appending a
document after construction used to serve stale results.  This package
is the online counterpart:

* :class:`LiveCollection` — append-only ingestion with an epoch
  counter, a sealed/open snapshot watermark, and per-term views
  maintained in ``O(|terms(d)|)`` per document;
* :class:`LiveIndex` / :class:`DeltaPostingList` — per-term delta
  posting lists merged (exactly) at query time, compacted past a
  threshold;
* :class:`LiveSearchEngine` — per-term cache invalidation, a bounded
  LRU result cache keyed on the epoch, and lazily re-mined STLocal
  patterns fed snapshot-by-snapshot through
  :class:`~repro.pipeline.IncrementalFeeder`.

The correctness contract — live state is byte-identical to a cold
batch rebuild after any ingestion schedule — is enforced by the
differential harness in ``tests/test_live_differential.py``.
"""

from repro.live.collection import LiveCollection
from repro.live.engine import LiveSearchEngine, ServingStats
from repro.live.index import DeltaPostingList, LiveIndex

__all__ = [
    "DeltaPostingList",
    "LiveCollection",
    "LiveIndex",
    "LiveSearchEngine",
    "ServingStats",
]
