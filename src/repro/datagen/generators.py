"""The distGen / randGen synthetic data generators (Appendix B).

Both generators produce the same structure:

* ``|D|`` streams at random map locations;
* per term, a *background* of exponentially-distributed frequencies
  over a per-term support set of streams (the paper validated the
  exponential fit on Topix);
* a set of injected spatiotemporal patterns: a term, a timeframe with
  uniformly sampled endpoints, a stream set, and per-stream Weibull
  frequency profiles with independently randomised shape/scale/peak —
  "the values for c, k, P are chosen uniformly at random for each
  stream, to ensure high variability".

They differ only in how a pattern's streams are chosen:

* **distGen** "emulates a realistic scenario": a seed stream is drawn
  uniformly, then additional streams are drawn with probability
  *decaying* with their distance from the seed (``p ∝ exp(−d/τ)``) —
  see DESIGN.md for why we read the appendix's "proportional to its
  distance" as locality-preserving decay (the evaluation depends on
  distGen patterns being spatially local).  A literal
  proportional-to-distance sampler is provided for the ablation.
* **randGen** samples the stream count and then the streams uniformly.

Frequencies are materialised *lazily per term* from deterministic
per-term seeds, so collections with 10,000 terms and 128,000 streams
(Figure 8) never hold more than the working term in memory.
"""

from __future__ import annotations

import dataclasses
import math
import random
import zlib
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import GenerationError
from repro.intervals.interval import Interval
from repro.spatial.geometry import Point
from repro.datagen.weibull import burst_profile

__all__ = [
    "GeneratorSettings",
    "InjectedPattern",
    "SyntheticFrequencyData",
    "generate_dataset",
]


@dataclasses.dataclass
class GeneratorSettings:
    """Parameters of the artificial-data generators.

    Defaults follow Appendix B / Section 6.2.2 where specified; the
    scaled-down values used by the default benchmarks are set by the
    experiment runners.

    Attributes:
        mode: ``"dist"`` (distGen), ``"rand"`` (randGen) or
            ``"dist-literal"`` (ablation: probability literally
            proportional to distance).
        timeline: Timeline length (365 in the paper).
        n_streams: Number of streams ``|D|``.
        n_terms: Vocabulary size (10,000 in the paper).
        n_patterns: Number of injected patterns (1,000 in the paper).
        map_size: Side length of the square map.
        support_size: Streams per term carrying background frequency;
            ``None`` derives ``min(40, max(5, n_streams // 100))``.
        background_mean: Mean of the exponential background frequency.
        pattern_streams: (min, max) streams per injected pattern.
        pattern_length: (min, max) timeframe length (capped at the
            timeline); endpoints are placed uniformly, matching the
            appendix's "first and last timestamps ... sampled uniformly
            at random" — injected windows are typically long, with the
            Weibull mass positioned differently per stream.
        peak_range: (min, max) of the per-stream Weibull peak ``P``.
        shape_range: (min, max) of the per-stream Weibull shape ``k``.
        locality_tau: distGen decay length, as a fraction of the map
            diagonal.
        seed: Master RNG seed.
    """

    mode: str = "dist"
    timeline: int = 365
    n_streams: int = 100
    n_terms: int = 10_000
    n_patterns: int = 1_000
    map_size: float = 100.0
    support_size: Optional[int] = None
    background_mean: float = 0.4
    pattern_streams: Tuple[int, int] = (4, 16)
    pattern_length: Tuple[int, int] = (10, 300)
    peak_range: Tuple[float, float] = (8.0, 20.0)
    shape_range: Tuple[float, float] = (1.0, 5.0)
    locality_tau: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("dist", "rand", "dist-literal"):
            raise GenerationError(f"unknown generator mode {self.mode!r}")
        if self.n_patterns > self.n_terms:
            raise GenerationError("cannot inject more patterns than terms")
        if self.pattern_streams[0] < 1:
            raise GenerationError("patterns need at least one stream")
        if self.pattern_length[0] < 1:
            raise GenerationError("pattern length must be positive")

    @property
    def effective_support(self) -> int:
        if self.support_size is not None:
            return self.support_size
        return min(40, max(5, self.n_streams // 100))


@dataclasses.dataclass(frozen=True)
class InjectedPattern:
    """Ground truth for one injected spatiotemporal pattern.

    Attributes:
        term: The term carrying the pattern.
        timeframe: Injected temporal extent.
        streams: The injected stream set.
        peak: The maximum per-stream peak used (diagnostics).
    """

    term: str
    timeframe: Interval
    streams: FrozenSet[Hashable]
    peak: float


class SyntheticFrequencyData:
    """Lazily materialised per-term frequency data (tensor-like).

    Quacks like :class:`repro.streams.FrequencyTensor` for the pieces
    STComb / STLocal / Base consume: ``timeline``, ``terms``,
    ``streams_with``, ``sequence`` and ``slice_at`` — plus
    ``locations`` for the spatial algorithms and ``patterns`` as the
    ground truth.
    """

    def __init__(
        self,
        settings: GeneratorSettings,
        locations: Dict[Hashable, Point],
        patterns: List[InjectedPattern],
        pattern_profiles: Dict[str, Dict[Hashable, Tuple[int, List[float]]]],
        support: Dict[str, Tuple[Hashable, ...]],
    ) -> None:
        self.settings = settings
        self.locations = locations
        self.patterns = patterns
        self._profiles = pattern_profiles
        self._support = support
        self.timeline = settings.timeline
        self.stream_ids: List[Hashable] = list(locations)
        self._cache: Dict[str, Dict[Hashable, List[float]]] = {}
        self._cache_order: List[str] = []
        self._cache_limit = 64

    # ------------------------------------------------------------------
    @property
    def terms(self) -> Set[str]:
        """Terms with any activity: the patterned terms plus supports.

        Background-only terms are included because every term has a
        support set.
        """
        return {f"t{i:05d}" for i in range(self.settings.n_terms)}

    def pattern_terms(self) -> List[str]:
        """Terms carrying an injected pattern."""
        return [pattern.term for pattern in self.patterns]

    # ------------------------------------------------------------------
    def _materialise(self, term: str) -> Dict[Hashable, List[float]]:
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        data: Dict[Hashable, List[float]] = {}
        rng = random.Random(_stable_seed(self.settings.seed, "background", term))
        timeline = self.timeline
        mean = self.settings.background_mean
        for sid in self._support.get(term, ()):
            sequence = [
                float(round(rng.expovariate(1.0 / mean))) for _ in range(timeline)
            ]
            if any(sequence):
                data[sid] = sequence
        for sid, (start, profile) in self._profiles.get(term, {}).items():
            sequence = data.setdefault(sid, [0.0] * timeline)
            for offset, extra in enumerate(profile):
                sequence[start + offset] += extra
        self._cache[term] = data
        self._cache_order.append(term)
        if len(self._cache_order) > self._cache_limit:
            evicted = self._cache_order.pop(0)
            self._cache.pop(evicted, None)
        return data

    # ------------------------------------------------------------------
    # Tensor-like protocol
    # ------------------------------------------------------------------
    def streams_with(self, term: str) -> List[Hashable]:
        """Streams with any non-zero frequency for the term."""
        return list(self._materialise(term))

    def sequence(self, term: str, stream_id: Hashable) -> List[float]:
        """One stream's dense frequency sequence for the term."""
        data = self._materialise(term)
        if stream_id in data:
            return list(data[stream_id])
        return [0.0] * self.timeline

    def slice_at(self, term: str, timestamp: int) -> Dict[Hashable, float]:
        """Non-zero frequencies across streams at one timestamp."""
        data = self._materialise(term)
        result: Dict[Hashable, float] = {}
        for sid, sequence in data.items():
            value = sequence[timestamp]
            if value:
                result[sid] = value
        return result


def _stable_seed(seed: int, *parts: str) -> int:
    """Process-independent derived seed (str.__hash__ is randomised)."""
    payload = ":".join([str(seed), *parts]).encode()
    return zlib.crc32(payload)


def _sample_streams(
    settings: GeneratorSettings,
    rng: random.Random,
    locations: Dict[Hashable, Point],
    stream_ids: Sequence[Hashable],
) -> List[Hashable]:
    """Choose a pattern's stream set per the generator mode."""
    lo, hi = settings.pattern_streams
    count = rng.randint(lo, min(hi, len(stream_ids)))
    if settings.mode == "rand":
        return rng.sample(list(stream_ids), count)

    seed_stream = rng.choice(list(stream_ids))
    chosen = [seed_stream]
    seed_point = locations[seed_stream]
    tau = settings.locality_tau * settings.map_size * math.sqrt(2.0)
    candidates = [sid for sid in stream_ids if sid != seed_stream]
    if settings.mode == "dist":
        weights = [
            math.exp(-locations[sid].distance_to(seed_point) / tau)
            for sid in candidates
        ]
    else:  # "dist-literal": the appendix sentence taken at face value.
        weights = [
            locations[sid].distance_to(seed_point) + 1e-9 for sid in candidates
        ]
    remaining = list(zip(candidates, weights))
    while len(chosen) < count and remaining:
        total = sum(weight for _, weight in remaining)
        probe = rng.random() * total
        cumulative = 0.0
        for index, (sid, weight) in enumerate(remaining):
            cumulative += weight
            if probe <= cumulative:
                chosen.append(sid)
                del remaining[index]
                break
    return chosen


def generate_dataset(settings: GeneratorSettings) -> SyntheticFrequencyData:
    """Run the generator and return the lazily-backed dataset.

    Deterministic in ``settings.seed``.
    """
    rng = random.Random(settings.seed)
    stream_ids = [f"s{i:06d}" for i in range(settings.n_streams)]
    locations: Dict[Hashable, Point] = {
        sid: Point(
            rng.uniform(0.0, settings.map_size),
            rng.uniform(0.0, settings.map_size),
        )
        for sid in stream_ids
    }

    # Per-term background support sets, deterministic per term.
    support: Dict[str, Tuple[Hashable, ...]] = {}
    support_size = settings.effective_support
    all_terms = [f"t{i:05d}" for i in range(settings.n_terms)]
    for term in all_terms:
        term_rng = random.Random(_stable_seed(settings.seed, "support", term))
        support[term] = tuple(
            term_rng.sample(stream_ids, min(support_size, len(stream_ids)))
        )

    # Patterns: distinct terms, uniform timeframes, mode-specific streams.
    pattern_terms = rng.sample(all_terms, settings.n_patterns)
    patterns: List[InjectedPattern] = []
    profiles: Dict[str, Dict[Hashable, Tuple[int, List[float]]]] = {}
    min_len, max_len = settings.pattern_length
    for term in pattern_terms:
        length = rng.randint(min_len, min(max_len, settings.timeline))
        start = rng.randint(0, settings.timeline - length)
        timeframe = Interval(start, start + length - 1)
        members = _sample_streams(settings, rng, locations, stream_ids)
        term_profiles: Dict[Hashable, Tuple[int, List[float]]] = {}
        top_peak = 0.0
        for sid in members:
            shape = rng.uniform(*settings.shape_range)
            scale = rng.uniform(0.2 * length, float(length))
            peak = rng.uniform(*settings.peak_range)
            top_peak = max(top_peak, peak)
            term_profiles[sid] = (
                start,
                burst_profile(length, shape, scale, peak),
            )
        profiles[term] = term_profiles
        patterns.append(
            InjectedPattern(
                term=term,
                timeframe=timeframe,
                streams=frozenset(members),
                peak=top_peak,
            )
        )

    return SyntheticFrequencyData(
        settings=settings,
        locations=locations,
        patterns=patterns,
        pattern_profiles=profiles,
        support=support,
    )
