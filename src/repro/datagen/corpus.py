"""Topix-style geostamped news corpus with injected major events.

The paper's real dataset — 305,641 Topix.com articles from 181
countries, Sep-2008..Jul-2009, bucketed into 48 weekly timestamps — is
not openly distributable, so this generator synthesises a corpus with
the same observable structure (see DESIGN.md, substitutions):

* one stream per country, locations = classical MDS of pairwise
  geodesic distances (exactly the paper's projection);
* exponential/Poisson background chatter per country per week over a
  Zipfian vocabulary (the paper validated the exponential fit on the
  real Topix data), with the event query terms present at ambient
  rates — so query terms also occur in documents *not* about the
  event, which is what makes the precision evaluation of Table 3
  non-trivial;
* the 18 Major Events (Table 9), each injected with a tier-dependent
  spatial footprint: tier-1 events reach most countries everywhere,
  tier-2/3 events concentrate around their sources with a scattered
  long tail of remote coverage (diaspora/world-news effect) — the
  structure responsible for the STComb-vs-STLocal contrasts of
  Table 1.

Every generated document carries provenance (``event_id``), giving the
ground-truth relevance labels used in place of the human annotator.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.datagen.events import MAJOR_EVENTS, MajorEvent
from repro.datagen.vocabulary import ZipfVocabulary
from repro.datagen.weibull import burst_profile
from repro.datagen.world import Country, WORLD_COUNTRIES, default_countries
from repro.errors import GenerationError
from repro.spatial.geodesic import distance_matrix
from repro.spatial.mds import mds_points
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.document import Document, tokenize

__all__ = ["CorpusSettings", "TopixStyleCorpus", "generate_topix_corpus"]


@dataclasses.dataclass
class CorpusSettings:
    """Parameters of the Topix-style corpus generator.

    Attributes:
        n_countries: Number of country streams (181 = the paper).
        timeline: Number of weekly timestamps (48 = Sep-08..Jul-09).
        background_rate: Mean background documents per country per week.
        doc_length: (min, max) tokens per document.
        vocabulary_size: Distinct background terms.
        event_scale: Multiplier on every event's document intensity.
        remote_fraction: Share of a tier-2/3 event's footprint that is
            scattered world-wide rather than near the source.
        remote_intensity: Intensity multiplier for scattered coverage.
        follower_coverage: Per-tier fraction of countries that mention
            the event's terms at a low steady rate all year (world-news
            desks) — the ambient signal that (a) gives the discrepancy
            baselines history to learn and (b) supplies TB's
            false-positive candidates in Table 3.
        follower_rate: (min, max) weekly *base* mention rate of a
            follower.
        follower_surge: Per-tier fraction of an incident's intensity at
            which followers surge during the incident window.  Tier-1
            stories surge world-wide; tier-3 stories barely register at
            world desks (their discrepancy signal stays local).  Half of
            the surge documents are genuine event reports, half
            tangential mentions.
        context_size: Number of countries nearest each incident source
            that discuss the event's terms all year (the local news
            context, e.g. the Kivu conflict around an Nkunda story) —
            these supply the TB baseline's false-positive documents and
            give the discrepancy models local history.
        context_rate: (min, max) weekly mention rate of a context
            country.
        context_crowding: Multiplier on the context rate during the
            incident weeks — when the event breaks, routine regional
            stories are crowded out by actual event reports.
        context_repeats: (min, max) query-term occurrences in a context
            document — passing mentions, lighter than event reports or
            remote commentary.
        query_repeats: (min, max) occurrences of the query terms inside
            an event document (boosts their relevance over ambient
            mentions).
        seed: Master RNG seed.
        events: The events to inject (Table 9 by default).
    """

    n_countries: int = 181
    timeline: int = 48
    background_rate: float = 5.0
    doc_length: Tuple[int, int] = (8, 16)
    vocabulary_size: int = 12_000
    event_scale: float = 1.0
    remote_fraction: float = 0.2
    remote_intensity: float = 0.12
    follower_coverage: Tuple[float, float, float] = (0.55, 0.25, 0.15)
    follower_rate: Tuple[float, float] = (0.10, 0.40)
    follower_surge: Tuple[float, float, float] = (0.35, 0.10, 0.0)
    context_size: int = 5
    context_rate: Tuple[float, float] = (0.5, 1.5)
    context_crowding: float = 0.3
    context_repeats: Tuple[int, int] = (1, 2)
    query_repeats: Tuple[int, int] = (1, 6)
    seed: int = 0
    events: Tuple[MajorEvent, ...] = MAJOR_EVENTS

    def __post_init__(self) -> None:
        if self.timeline < 1:
            raise GenerationError("timeline must be positive")
        if self.n_countries < 2:
            raise GenerationError("need at least two countries")
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise GenerationError("remote_fraction must lie in [0, 1]")


@dataclasses.dataclass
class TopixStyleCorpus:
    """The generated corpus plus its ground truth.

    Attributes:
        collection: The spatiotemporal document collection.
        countries: The gazetteer entries used, in stream order.
        events: The injected events.
        event_footprints: event_id → the country names that received
            event documents (ground-truth stream sets).
        event_timeframes: event_id → (first, last) week with event
            documents anywhere.
    """

    collection: SpatiotemporalCollection
    countries: List[Country]
    events: Tuple[MajorEvent, ...]
    event_footprints: Dict[int, Set[str]]
    event_timeframes: Dict[int, Tuple[int, int]]

    def queries(self) -> List[Tuple[int, str]]:
        """(event_id, query) pairs in Table-9 order."""
        return [(event.event_id, event.query) for event in self.events]


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (fine for the small means used here)."""
    if mean <= 0.0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def generate_topix_corpus(
    settings: Optional[CorpusSettings] = None,
) -> TopixStyleCorpus:
    """Generate the corpus.  Deterministic in ``settings.seed``."""
    settings = settings if settings is not None else CorpusSettings()
    rng = random.Random(settings.seed)
    countries = _countries_with_sources(settings)

    # --- Project the sources onto the 2-D plane, as the paper does. ---
    coordinates = [(country.lat, country.lon) for country in countries]
    distances = distance_matrix(coordinates, method="haversine")
    points = mds_points(distances)

    collection = SpatiotemporalCollection(timeline=settings.timeline)
    for country, point in zip(countries, points):
        collection.add_stream(
            country.name, point, latlon=(country.lat, country.lon)
        )

    # --- Vocabulary: background chatter only.  Query terms do *not*
    # appear in random background documents — all ambient mentions come
    # from the follower mechanism below, mirroring how rare proper
    # nouns behave in a real corpus.
    vocabulary = ZipfVocabulary(size=settings.vocabulary_size)

    doc_counter = 0

    # --- Background chatter. ------------------------------------------
    for country in countries:
        for week in range(settings.timeline):
            for _ in range(_poisson(rng, settings.background_rate)):
                length = rng.randint(*settings.doc_length)
                collection.add_document(
                    Document(
                        doc_id=doc_counter,
                        stream_id=country.name,
                        timestamp=week,
                        terms=vocabulary.sample_document(rng, length),
                    )
                )
                doc_counter += 1

    # --- Event injection. ----------------------------------------------
    name_to_index = {country.name: i for i, country in enumerate(countries)}
    event_footprints: Dict[int, Set[str]] = {}
    event_timeframes: Dict[int, Tuple[int, int]] = {}
    for event in settings.events:
        footprint: Set[str] = set()
        first_week, last_week = settings.timeline, -1
        for incident in event.incidents:
            if incident.source not in name_to_index:
                raise GenerationError(
                    f"event {event.event_id} source {incident.source!r} "
                    "is not in the gazetteer slice"
                )
            affected = _affected_countries(
                settings, rng, event, incident.source, countries, distances,
                name_to_index,
            )
            # One Weibull shape per incident: world coverage of the same
            # story is temporally synchronised, with per-country jitter.
            incident_shape = rng.uniform(1.0, 5.0)
            incident_scale_frac = rng.uniform(0.3, 1.0)
            for country_name, relative_intensity in affected:
                emitted = _emit_incident_documents(
                    settings, rng, collection, vocabulary, event,
                    country_name, incident.start_week,
                    incident.duration_weeks,
                    incident.intensity * relative_intensity,
                    incident_shape, incident_scale_frac,
                    doc_counter,
                )
                if emitted:
                    doc_counter = emitted[0]
                    footprint.add(country_name)
                    first_week = min(first_week, emitted[1])
                    last_week = max(last_week, emitted[2])
        doc_counter, genuine = _emit_follower_documents(
            settings, rng, collection, vocabulary, event, countries,
            doc_counter,
        )
        footprint.update(genuine)
        doc_counter = _emit_context_documents(
            settings, rng, collection, vocabulary, event, countries,
            distances, name_to_index, doc_counter,
        )
        event_footprints[event.event_id] = footprint
        if last_week >= 0:
            event_timeframes[event.event_id] = (first_week, last_week)

    return TopixStyleCorpus(
        collection=collection,
        countries=countries,
        events=settings.events,
        event_footprints=event_footprints,
        event_timeframes=event_timeframes,
    )


def _countries_with_sources(settings: CorpusSettings) -> List[Country]:
    """The first ``n_countries`` gazetteer entries, source-complete.

    Scaled-down corpora (``n_countries < 181``) must still contain every
    injected event's source country; missing sources replace the
    tail-most non-source entries of the slice.
    """
    countries = default_countries(settings.n_countries)
    present = {country.name for country in countries}
    required = []
    for event in settings.events:
        for incident in event.incidents:
            if incident.source not in present and incident.source not in required:
                required.append(incident.source)
    if not required:
        return countries
    by_name = {country.name: country for country in WORLD_COUNTRIES}
    source_names = {
        incident.source
        for event in settings.events
        for incident in event.incidents
    }
    slot = len(countries) - 1
    for name in required:
        if name not in by_name:
            raise GenerationError(f"event source {name!r} not in gazetteer")
        while slot >= 0 and countries[slot].name in source_names:
            slot -= 1
        if slot < 0:
            raise GenerationError("not enough room for all event sources")
        countries[slot] = by_name[name]
        slot -= 1
    return countries


def _affected_countries(
    settings: CorpusSettings,
    rng: random.Random,
    event: MajorEvent,
    source: str,
    countries: Sequence[Country],
    distances,
    name_to_index: Dict[str, int],
) -> List[Tuple[str, float]]:
    """Countries reached by one incident and their intensity multipliers.

    Tier 1 spreads uniformly world-wide; tiers 2 and 3 take the nearest
    countries around the source for the local share of the footprint
    and sample the remainder uniformly at reduced intensity.
    """
    total = max(1, round(event.footprint * len(countries)))
    source_index = name_to_index[source]
    order = sorted(
        range(len(countries)), key=lambda j: distances[source_index][j]
    )

    result: List[Tuple[str, float]] = []
    if event.tier == 1:
        # Global: everybody in the footprint reports at comparable
        # intensity, decaying only mildly with distance.
        chosen = order[:1] + rng.sample(order[1:], min(total - 1, len(order) - 1))
        max_distance = max(distances[source_index]) or 1.0
        for j in chosen:
            decay = 1.0 - 0.3 * distances[source_index][j] / max_distance
            result.append((countries[j].name, decay))
        return result

    remote_count = int(round(settings.remote_fraction * (total - 1)))
    local_count = total - remote_count
    local = order[:local_count]
    rest = order[local_count:]
    remote = rng.sample(rest, min(remote_count, len(rest)))
    if local:
        # Distance-decayed intensity among the local cluster.
        scale = distances[source_index][order[min(local_count, len(order) - 1)]]
        scale = scale if scale > 0 else 1.0
        for j in local:
            decay = math.exp(-distances[source_index][j] / scale)
            result.append((countries[j].name, max(decay, 0.6)))
    for j in remote:
        result.append(
            (countries[j].name, settings.remote_intensity * rng.uniform(0.5, 1.5))
        )
    return result


def _emit_incident_documents(
    settings: CorpusSettings,
    rng: random.Random,
    collection: SpatiotemporalCollection,
    vocabulary: ZipfVocabulary,
    event: MajorEvent,
    country_name: str,
    start_week: int,
    duration: int,
    intensity: float,
    incident_shape: float,
    incident_scale_frac: float,
    doc_counter: int,
) -> Optional[Tuple[int, int, int]]:
    """Emit one country's documents for one incident.

    Returns:
        ``(next_doc_id, first_week, last_week)`` of emitted documents,
        or ``None`` when the profile produced no documents.
    """
    duration = min(duration, settings.timeline - start_week)
    if duration < 1:
        return None
    # Incident-level Weibull shape with ±20 % per-country jitter: world
    # coverage of one story is synchronised, not independently shaped.
    shape = max(1.0, incident_shape * rng.uniform(0.8, 1.2))
    scale = incident_scale_frac * duration * rng.uniform(0.8, 1.2)
    peak = intensity * settings.event_scale
    profile = burst_profile(duration, shape, scale, peak)

    query_terms = tokenize(event.query)
    first_week, last_week = None, None
    for offset, rate in enumerate(profile):
        week = start_week + offset
        for _ in range(_poisson(rng, rate)):
            repeats = rng.randint(*settings.query_repeats)
            length = rng.randint(*settings.doc_length)
            background = vocabulary.sample_document(
                rng, max(1, length - repeats * len(query_terms))
            )
            collection.add_document(
                Document(
                    doc_id=doc_counter,
                    stream_id=country_name,
                    timestamp=week,
                    terms=query_terms * repeats + background,
                    event_id=event.event_id,
                )
            )
            doc_counter += 1
            if first_week is None:
                first_week = week
            last_week = week
    if first_week is None:
        return None
    return doc_counter, first_week, last_week


def _emit_follower_documents(
    settings: CorpusSettings,
    rng: random.Random,
    collection: SpatiotemporalCollection,
    vocabulary: ZipfVocabulary,
    event: MajorEvent,
    countries: Sequence[Country],
    doc_counter: int,
) -> Tuple[int, Set[str]]:
    """World-news-desk coverage of the event's terms.

    Followers mention the query terms at a low steady base rate all
    year and *surge* during the incident windows (world coverage of a
    story is synchronised).  Base-rate and half of the surge documents
    carry ``event_id=None`` — they mention the terms without being
    reports of the specific event, exactly the decoys that cost the TB
    baseline precision on localized events (Table 3).  The other half
    of the surge documents are genuine remote reports.

    Returns:
        ``(next_doc_id, genuine_reporters)`` — the advanced counter and
        the follower countries that emitted at least one genuine
        report.
    """
    coverage = settings.follower_coverage[event.tier - 1]
    count = max(1, round(coverage * len(countries)))
    followers = rng.sample(list(countries), count)
    query_terms = tokenize(event.query)
    genuine: Set[str] = set()

    surge_factor = settings.follower_surge[event.tier - 1]
    for country in followers:
        base_rate = rng.uniform(*settings.follower_rate)
        weekly = [base_rate] * settings.timeline
        if surge_factor > 0.0:
            for incident in event.incidents:
                duration = min(
                    incident.duration_weeks,
                    settings.timeline - incident.start_week,
                )
                if duration < 1:
                    continue
                shape = rng.uniform(1.0, 5.0)
                scale = rng.uniform(0.3 * duration, float(duration))
                surge_peak = (
                    surge_factor
                    * incident.intensity
                    * settings.event_scale
                    * rng.uniform(0.5, 1.5)
                )
                profile = burst_profile(duration, shape, scale, surge_peak)
                for offset, extra in enumerate(profile):
                    weekly[incident.start_week + offset] += extra
        for week, rate in enumerate(weekly):
            for _ in range(_poisson(rng, rate)):
                surging = rate > 2.0 * base_rate
                is_report = surging and rng.random() < 0.5
                repeats = rng.randint(*settings.query_repeats)
                length = rng.randint(*settings.doc_length)
                background = vocabulary.sample_document(
                    rng, max(1, length - repeats * len(query_terms))
                )
                collection.add_document(
                    Document(
                        doc_id=doc_counter,
                        stream_id=country.name,
                        timestamp=week,
                        terms=query_terms * repeats + background,
                        event_id=event.event_id if is_report else None,
                    )
                )
                doc_counter += 1
                if is_report:
                    genuine.add(country.name)
    return doc_counter, genuine


def _emit_context_documents(
    settings: CorpusSettings,
    rng: random.Random,
    collection: SpatiotemporalCollection,
    vocabulary: ZipfVocabulary,
    event: MajorEvent,
    countries: Sequence[Country],
    distances,
    name_to_index: Dict[str, int],
    doc_counter: int,
) -> int:
    """Year-round local chatter around each incident source.

    Context documents mention the query terms (``event_id=None``) at a
    healthy steady rate in the countries nearest the source — the
    ongoing regional storyline surrounding the event.  A temporal-only
    engine (TB) cannot tell these apart from event reports inside its
    burst window; that is the paper's tier-3 precision failure mode.
    """
    query_terms = tokenize(event.query)
    sources = {incident.source for incident in event.incidents}
    for source in sources:
        source_index = name_to_index[source]
        order = sorted(
            range(len(countries)), key=lambda j: distances[source_index][j]
        )
        event_weeks = set()
        for incident in event.incidents:
            for offset in range(incident.duration_weeks):
                event_weeks.add(incident.start_week + offset)
        for j in order[: settings.context_size]:
            rate = rng.uniform(*settings.context_rate)
            for week in range(settings.timeline):
                weekly_rate = rate
                if week in event_weeks:
                    weekly_rate *= settings.context_crowding
                for _ in range(_poisson(rng, weekly_rate)):
                    repeats = rng.randint(*settings.context_repeats)
                    length = rng.randint(*settings.doc_length)
                    background = vocabulary.sample_document(
                        rng, max(1, length - repeats * len(query_terms))
                    )
                    collection.add_document(
                        Document(
                            doc_id=doc_counter,
                            stream_id=countries[j].name,
                            timestamp=week,
                            terms=query_terms * repeats + background,
                        )
                    )
                    doc_counter += 1
    return doc_counter
