"""Data substrate: gazetteer, events, generators, Topix-style corpus."""

from repro.datagen.world import Country, WORLD_COUNTRIES, default_countries
from repro.datagen.weibull import (
    FIGURE9_SETTINGS,
    burst_profile,
    weibull_mode,
    weibull_pdf,
)
from repro.datagen.vocabulary import ZipfVocabulary
from repro.datagen.events import (
    EventIncident,
    MAJOR_EVENTS,
    MajorEvent,
    events_by_tier,
)
from repro.datagen.generators import (
    GeneratorSettings,
    InjectedPattern,
    SyntheticFrequencyData,
    generate_dataset,
)
from repro.datagen.corpus import (
    CorpusSettings,
    TopixStyleCorpus,
    generate_topix_corpus,
)

__all__ = [
    "Country",
    "CorpusSettings",
    "EventIncident",
    "FIGURE9_SETTINGS",
    "GeneratorSettings",
    "InjectedPattern",
    "MAJOR_EVENTS",
    "MajorEvent",
    "SyntheticFrequencyData",
    "TopixStyleCorpus",
    "WORLD_COUNTRIES",
    "ZipfVocabulary",
    "burst_profile",
    "default_countries",
    "events_by_tier",
    "generate_dataset",
    "generate_topix_corpus",
    "weibull_mode",
    "weibull_pdf",
]
