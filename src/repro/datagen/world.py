"""Country gazetteer: the 181 geostamped news sources.

The Topix dataset aggregates "local news sources from 181 different
countries" (Section 6.1).  This module carries an offline gazetteer of
countries with approximate capital-city coordinates, from which the
corpus generator takes the first ``n`` entries (181 by default) and
projects them to the 2-D plane via geodesic distances + classical MDS,
exactly as the paper does.

Coordinates are approximate (±1°), which is irrelevant for the
algorithms: they only consume relative positions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.errors import GenerationError

__all__ = ["Country", "WORLD_COUNTRIES", "default_countries"]


@dataclasses.dataclass(frozen=True)
class Country:
    """One news source: a country and its representative coordinates."""

    name: str
    iso: str
    lat: float
    lon: float


_RAW: List[Tuple[str, str, float, float]] = [
    ("United States", "US", 38.9, -77.0),
    ("Canada", "CA", 45.4, -75.7),
    ("Mexico", "MX", 19.4, -99.1),
    ("Guatemala", "GT", 14.6, -90.5),
    ("Belize", "BZ", 17.3, -88.8),
    ("Honduras", "HN", 14.1, -87.2),
    ("El Salvador", "SV", 13.7, -89.2),
    ("Nicaragua", "NI", 12.1, -86.3),
    ("Costa Rica", "CR", 9.9, -84.1),
    ("Panama", "PA", 9.0, -79.5),
    ("Cuba", "CU", 23.1, -82.4),
    ("Jamaica", "JM", 18.0, -76.8),
    ("Haiti", "HT", 18.5, -72.3),
    ("Dominican Republic", "DO", 18.5, -69.9),
    ("Bahamas", "BS", 25.1, -77.4),
    ("Trinidad and Tobago", "TT", 10.7, -61.5),
    ("Barbados", "BB", 13.1, -59.6),
    ("Colombia", "CO", 4.7, -74.1),
    ("Venezuela", "VE", 10.5, -66.9),
    ("Guyana", "GY", 6.8, -58.2),
    ("Suriname", "SR", 5.9, -55.2),
    ("Ecuador", "EC", -0.2, -78.5),
    ("Peru", "PE", -12.0, -77.0),
    ("Brazil", "BR", -15.8, -47.9),
    ("Bolivia", "BO", -16.5, -68.1),
    ("Paraguay", "PY", -25.3, -57.6),
    ("Chile", "CL", -33.4, -70.7),
    ("Argentina", "AR", -34.6, -58.4),
    ("Uruguay", "UY", -34.9, -56.2),
    ("Iceland", "IS", 64.1, -21.9),
    ("Ireland", "IE", 53.3, -6.2),
    ("United Kingdom", "GB", 51.5, -0.1),
    ("Portugal", "PT", 38.7, -9.1),
    ("Spain", "ES", 40.4, -3.7),
    ("France", "FR", 48.9, 2.4),
    ("Belgium", "BE", 50.8, 4.4),
    ("Netherlands", "NL", 52.4, 4.9),
    ("Luxembourg", "LU", 49.6, 6.1),
    ("Germany", "DE", 52.5, 13.4),
    ("Switzerland", "CH", 46.9, 7.4),
    ("Austria", "AT", 48.2, 16.4),
    ("Italy", "IT", 41.9, 12.5),
    ("Malta", "MT", 35.9, 14.5),
    ("Denmark", "DK", 55.7, 12.6),
    ("Norway", "NO", 59.9, 10.7),
    ("Sweden", "SE", 59.3, 18.1),
    ("Finland", "FI", 60.2, 24.9),
    ("Estonia", "EE", 59.4, 24.8),
    ("Latvia", "LV", 56.9, 24.1),
    ("Lithuania", "LT", 54.7, 25.3),
    ("Poland", "PL", 52.2, 21.0),
    ("Czech Republic", "CZ", 50.1, 14.4),
    ("Slovakia", "SK", 48.1, 17.1),
    ("Hungary", "HU", 47.5, 19.0),
    ("Slovenia", "SI", 46.1, 14.5),
    ("Croatia", "HR", 45.8, 16.0),
    ("Bosnia and Herzegovina", "BA", 43.9, 18.4),
    ("Serbia", "RS", 44.8, 20.5),
    ("Montenegro", "ME", 42.4, 19.3),
    ("Albania", "AL", 41.3, 19.8),
    ("North Macedonia", "MK", 42.0, 21.4),
    ("Greece", "GR", 38.0, 23.7),
    ("Bulgaria", "BG", 42.7, 23.3),
    ("Romania", "RO", 44.4, 26.1),
    ("Moldova", "MD", 47.0, 28.9),
    ("Ukraine", "UA", 50.5, 30.5),
    ("Belarus", "BY", 53.9, 27.6),
    ("Russia", "RU", 55.8, 37.6),
    ("Turkey", "TR", 39.9, 32.9),
    ("Cyprus", "CY", 35.2, 33.4),
    ("Georgia", "GE", 41.7, 44.8),
    ("Armenia", "AM", 40.2, 44.5),
    ("Azerbaijan", "AZ", 40.4, 49.9),
    ("Morocco", "MA", 34.0, -6.8),
    ("Algeria", "DZ", 36.8, 3.1),
    ("Tunisia", "TN", 36.8, 10.2),
    ("Libya", "LY", 32.9, 13.2),
    ("Egypt", "EG", 30.0, 31.2),
    ("Sudan", "SD", 15.6, 32.5),
    ("Mauritania", "MR", 18.1, -15.9),
    ("Mali", "ML", 12.6, -8.0),
    ("Niger", "NE", 13.5, 2.1),
    ("Chad", "TD", 12.1, 15.0),
    ("Senegal", "SN", 14.7, -17.5),
    ("Gambia", "GM", 13.5, -16.6),
    ("Guinea-Bissau", "GW", 11.9, -15.6),
    ("Guinea", "GN", 9.5, -13.7),
    ("Sierra Leone", "SL", 8.5, -13.2),
    ("Liberia", "LR", 6.3, -10.8),
    ("Ivory Coast", "CI", 5.3, -4.0),
    ("Ghana", "GH", 5.6, -0.2),
    ("Togo", "TG", 6.1, 1.2),
    ("Benin", "BJ", 6.4, 2.4),
    ("Burkina Faso", "BF", 12.4, -1.5),
    ("Nigeria", "NG", 9.1, 7.4),
    ("Cameroon", "CM", 3.9, 11.5),
    ("Central African Republic", "CF", 4.4, 18.6),
    ("Equatorial Guinea", "GQ", 3.8, 8.8),
    ("Gabon", "GA", 0.4, 9.5),
    ("Republic of the Congo", "CG", -4.3, 15.3),
    ("DR Congo", "CD", -4.3, 15.3),
    ("Angola", "AO", -8.8, 13.2),
    ("Namibia", "NA", -22.6, 17.1),
    ("Botswana", "BW", -24.7, 25.9),
    ("South Africa", "ZA", -25.7, 28.2),
    ("Lesotho", "LS", -29.3, 27.5),
    ("Eswatini", "SZ", -26.3, 31.1),
    ("Zimbabwe", "ZW", -17.8, 31.1),
    ("Zambia", "ZM", -15.4, 28.3),
    ("Malawi", "MW", -14.0, 33.8),
    ("Mozambique", "MZ", -25.9, 32.6),
    ("Madagascar", "MG", -18.9, 47.5),
    ("Mauritius", "MU", -20.2, 57.5),
    ("Comoros", "KM", -11.7, 43.3),
    ("Seychelles", "SC", -4.6, 55.5),
    ("Tanzania", "TZ", -6.8, 39.3),
    ("Kenya", "KE", -1.3, 36.8),
    ("Uganda", "UG", 0.3, 32.6),
    ("Rwanda", "RW", -1.9, 30.1),
    ("Burundi", "BI", -3.4, 29.4),
    ("Ethiopia", "ET", 9.0, 38.7),
    ("Eritrea", "ER", 15.3, 38.9),
    ("Djibouti", "DJ", 11.6, 43.1),
    ("Somalia", "SO", 2.0, 45.3),
    ("Israel", "IL", 31.8, 35.2),
    ("Palestine", "PS", 31.5, 34.5),
    ("Lebanon", "LB", 33.9, 35.5),
    ("Syria", "SY", 33.5, 36.3),
    ("Jordan", "JO", 31.9, 35.9),
    ("Saudi Arabia", "SA", 24.7, 46.7),
    ("Yemen", "YE", 15.4, 44.2),
    ("Oman", "OM", 23.6, 58.6),
    ("United Arab Emirates", "AE", 24.5, 54.4),
    ("Qatar", "QA", 25.3, 51.5),
    ("Bahrain", "BH", 26.2, 50.6),
    ("Kuwait", "KW", 29.4, 48.0),
    ("Iraq", "IQ", 33.3, 44.4),
    ("Iran", "IR", 35.7, 51.4),
    ("Afghanistan", "AF", 34.5, 69.2),
    ("Pakistan", "PK", 33.7, 73.0),
    ("India", "IN", 28.6, 77.2),
    ("Nepal", "NP", 27.7, 85.3),
    ("Bhutan", "BT", 27.5, 89.6),
    ("Bangladesh", "BD", 23.8, 90.4),
    ("Sri Lanka", "LK", 6.9, 79.9),
    ("Maldives", "MV", 4.2, 73.5),
    ("Kazakhstan", "KZ", 51.2, 71.4),
    ("Uzbekistan", "UZ", 41.3, 69.2),
    ("Turkmenistan", "TM", 37.9, 58.4),
    ("Kyrgyzstan", "KG", 42.9, 74.6),
    ("Tajikistan", "TJ", 38.6, 68.8),
    ("China", "CN", 39.9, 116.4),
    ("Mongolia", "MN", 47.9, 106.9),
    ("North Korea", "KP", 39.0, 125.8),
    ("South Korea", "KR", 37.6, 127.0),
    ("Japan", "JP", 35.7, 139.7),
    ("Taiwan", "TW", 25.0, 121.6),
    ("Myanmar", "MM", 19.8, 96.2),
    ("Thailand", "TH", 13.8, 100.5),
    ("Laos", "LA", 17.9, 102.6),
    ("Cambodia", "KH", 11.6, 104.9),
    ("Vietnam", "VN", 21.0, 105.9),
    ("Malaysia", "MY", 3.1, 101.7),
    ("Singapore", "SG", 1.3, 103.8),
    ("Indonesia", "ID", -6.2, 106.8),
    ("Brunei", "BN", 4.9, 114.9),
    ("Philippines", "PH", 14.6, 121.0),
    ("East Timor", "TL", -8.6, 125.6),
    ("Papua New Guinea", "PG", -9.4, 147.2),
    ("Australia", "AU", -35.3, 149.1),
    ("New Zealand", "NZ", -41.3, 174.8),
    ("Fiji", "FJ", -18.1, 178.4),
    ("Solomon Islands", "SB", -9.4, 160.0),
    ("Vanuatu", "VU", -17.7, 168.3),
    ("Samoa", "WS", -13.8, -171.8),
    ("Tonga", "TO", -21.1, -175.2),
    ("Cape Verde", "CV", 14.9, -23.5),
    ("Sao Tome and Principe", "ST", 0.3, 6.7),
    ("Andorra", "AD", 42.5, 1.5),
    ("Monaco", "MC", 43.7, 7.4),
    ("Liechtenstein", "LI", 47.1, 9.5),
    ("San Marino", "SM", 43.9, 12.4),
    ("Kosovo", "XK", 42.7, 21.2),
    ("Grenada", "GD", 12.1, -61.8),
    ("Saint Lucia", "LC", 14.0, -61.0),
    ("Dominica", "DM", 15.3, -61.4),
    ("Antigua and Barbuda", "AG", 17.1, -61.8),
    ("Saint Vincent", "VC", 13.2, -61.2),
    ("Saint Kitts and Nevis", "KN", 17.3, -62.7),
    ("Kiribati", "KI", 1.3, 173.0),
    ("Micronesia", "FM", 6.9, 158.2),
    ("Palau", "PW", 7.5, 134.6),
    ("Marshall Islands", "MH", 7.1, 171.4),
    ("Nauru", "NR", -0.5, 166.9),
    ("Tuvalu", "TV", -8.5, 179.2),
]

WORLD_COUNTRIES: Tuple[Country, ...] = tuple(
    Country(name=name, iso=iso, lat=lat, lon=lon) for name, iso, lat, lon in _RAW
)
"""All gazetteer entries (more than 181; callers slice what they need)."""


def default_countries(n: int = 181) -> List[Country]:
    """The first ``n`` countries (181 matches the Topix dataset).

    Raises:
        GenerationError: when more countries are requested than the
            gazetteer holds.
    """
    if n > len(WORLD_COUNTRIES):
        raise GenerationError(
            f"gazetteer has {len(WORLD_COUNTRIES)} countries, {n} requested"
        )
    return list(WORLD_COUNTRIES[:n])
