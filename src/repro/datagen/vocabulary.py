"""Synthetic vocabularies and background text.

The Topix-style corpus needs realistic background chatter: a Zipfian
vocabulary from which background documents draw their tokens, with the
event query terms embedded at low ambient rates so that the
expected-frequency baselines have something to learn.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence, Tuple

from repro.errors import GenerationError

__all__ = ["ZipfVocabulary"]


class ZipfVocabulary:
    """A vocabulary with Zipf-distributed token probabilities.

    Token ``i`` (0-based rank) is drawn with probability proportional to
    ``1 / (i + 1)^exponent``.

    Args:
        size: Number of distinct background terms.
        exponent: Zipf exponent (1.0 is the classic law).
        extra_terms: Terms appended *after* the background ranks —
            typically the event query terms — so they exist in the
            vocabulary at the lowest ambient probabilities.
    """

    def __init__(
        self,
        size: int,
        exponent: float = 1.0,
        extra_terms: Sequence[str] = (),
    ) -> None:
        if size < 1:
            raise GenerationError("vocabulary size must be positive")
        if exponent <= 0.0:
            raise GenerationError("Zipf exponent must be positive")
        self.terms: List[str] = [f"term{i:05d}" for i in range(size)]
        self.terms.extend(extra_terms)
        weights = [
            1.0 / (rank + 1.0) ** exponent for rank in range(len(self.terms))
        ]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def __len__(self) -> int:
        return len(self.terms)

    def sample(self, rng: random.Random) -> str:
        """Draw one token."""
        probe = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, probe)
        return self.terms[min(index, len(self.terms) - 1)]

    def sample_document(
        self, rng: random.Random, length: int
    ) -> Tuple[str, ...]:
        """Draw a background document of ``length`` tokens."""
        if length < 1:
            raise GenerationError("document length must be positive")
        return tuple(self.sample(rng) for _ in range(length))
