"""Weibull event-shape curves (Appendix B, Eq. 12 / Figure 9).

The generators inject event bursts whose temporal profile follows the
Weibull density

    f(x; c, k) = (k/c) (x/c)^{k-1} exp(-(x/c)^k),   x ≥ 0

"the density function of this distribution emulates the burstiness
process": sharp-onset events (small k), slow build-ups (large k), long
or short decays (scale c).  The curve is evaluated at the timestamp
orders 1, 2, …, |T| and rescaled so its peak equals a chosen frequency
``P`` — the paper's ``v/m`` renormalisation through the mode ``m``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import GenerationError

__all__ = ["weibull_pdf", "weibull_mode", "burst_profile", "FIGURE9_SETTINGS"]

FIGURE9_SETTINGS: Tuple[Tuple[float, float], ...] = (
    (1.0, 1.0),
    (1.5, 1.0),
    (5.0, 1.0),
    (1.0, 2.0),
    (1.5, 3.0),
    (5.0, 3.0),
)
"""(k, c) pairs exercising the qualitative shapes of Figure 9."""


def weibull_pdf(x: float, shape: float, scale: float) -> float:
    """The Weibull density ``f(x; c, k)`` (Eq. 12).

    Args:
        x: Evaluation point (density is 0 for ``x < 0``).
        shape: The ``k`` parameter (> 0).
        scale: The ``c`` parameter (> 0).
    """
    if shape <= 0.0 or scale <= 0.0:
        raise GenerationError("Weibull shape and scale must be positive")
    if x < 0.0:
        return 0.0
    if x == 0.0:
        # k < 1 diverges at 0; k == 1 gives 1/c; k > 1 gives 0.
        if shape < 1.0:
            return math.inf
        if shape == 1.0:
            return 1.0 / scale
        return 0.0
    ratio = x / scale
    return (shape / scale) * ratio ** (shape - 1.0) * math.exp(-(ratio**shape))


def weibull_mode(shape: float, scale: float) -> float:
    """The mode ``m`` of the Weibull distribution.

    ``c((k−1)/k)^{1/k}`` for ``k > 1``; 0 for ``k ≤ 1`` (monotone
    density).
    """
    if shape <= 0.0 or scale <= 0.0:
        raise GenerationError("Weibull shape and scale must be positive")
    if shape <= 1.0:
        return 0.0
    return scale * ((shape - 1.0) / shape) ** (1.0 / shape)


def burst_profile(
    length: int,
    shape: float,
    scale: float,
    peak: float,
) -> List[float]:
    """A burst's frequency profile over ``length`` timestamps.

    Evaluates the pdf at ``x = 1 .. length`` and rescales so that the
    largest sampled value equals ``peak``: "we can easily set the
    frequency P at which the curve peaks to any given value v, by simply
    multiplying all the values in the sequence with v/m".

    Args:
        length: Number of timestamps the burst spans (≥ 1).
        shape: Weibull ``k``.
        scale: Weibull ``c`` — expressed in the same timestamp units.
        peak: The desired maximum frequency (> 0).

    Returns:
        ``length`` non-negative frequency values peaking at ``peak``.
    """
    if length < 1:
        raise GenerationError("burst length must be at least 1")
    if peak <= 0.0:
        raise GenerationError("peak frequency must be positive")
    values = [weibull_pdf(float(x), shape, scale) for x in range(1, length + 1)]
    top = max(values)
    if top <= 0.0 or math.isinf(top):
        # Degenerate parameterisations (all-zero samples, or a k<1
        # divergence sampled exactly at 0 — impossible here since x ≥ 1,
        # but guarded anyway) fall back to a flat profile.
        return [peak] * length
    return [value * peak / top for value in values]
