"""The Major Events List (Table 9 of the paper's appendix).

Eighteen real-world events between September 2008 and July 2009, with
the queries a human annotator chose for them.  The paper groups them
into three loosely-defined tiers (Section 6.1):

* tier 1 (events 1–6): significant global impact;
* tier 2 (events 7–12): reported in a significant number of countries;
* tier 3 (events 13–18): localized impact.

For the synthetic Topix-style corpus each event additionally carries
injection parameters — source countries, start week, duration and
footprint — chosen to match the event's real geography and tier.  The
timeline is 48 weeks, week 0 = first week of September 2008.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

__all__ = ["EventIncident", "MajorEvent", "MAJOR_EVENTS", "events_by_tier"]


@dataclasses.dataclass(frozen=True)
class EventIncident:
    """One localized occurrence of an event.

    Attributes:
        source: Country name of the epicentre (must exist in the
            gazetteer).
        start_week: First week of the burst (0-based, weeks from
            Sep-2008).
        duration_weeks: Length of the burst window.
        intensity: Peak extra event-document rate at the source.
    """

    source: str
    start_week: int
    duration_weeks: int
    intensity: float


@dataclasses.dataclass(frozen=True)
class MajorEvent:
    """One entry of the Major Events List.

    Attributes:
        event_id: 1-based index matching Table 9's numbering.
        query: The annotator's search query.
        description: Table 9's event description.
        tier: Impact tier (1 = global, 2 = multi-country, 3 = local).
        footprint: Fraction of the world's countries the event reaches.
        incidents: The event's occurrences (several for recurring
            topics like earthquakes or piracy).
    """

    event_id: int
    query: str
    description: str
    tier: int
    footprint: float
    incidents: Tuple[EventIncident, ...]


MAJOR_EVENTS: Tuple[MajorEvent, ...] = (
    MajorEvent(
        1, "Obama",
        "Events regarding the actions of B. Obama, the new President of "
        "the USA since January of 2009.",
        1, 0.95,
        (
            EventIncident("United States", 8, 30, 14.0),
        ),
    ),
    MajorEvent(
        2, "financial crisis",
        "Events regarding the global financial crisis.",
        1, 0.90,
        (
            EventIncident("United States", 1, 40, 12.0),
            EventIncident("United Kingdom", 2, 36, 10.0),
        ),
    ),
    MajorEvent(
        3, "Jackson",
        "American entertainer Michael Jackson passes away.",
        1, 0.85,
        (
            EventIncident("United States", 42, 6, 18.0),
        ),
    ),
    MajorEvent(
        4, "terrorists",
        "Events regarding terrorism.",
        1, 0.70,
        (
            EventIncident("India", 12, 8, 12.0),
            EventIncident("Pakistan", 24, 10, 10.0),
        ),
    ),
    MajorEvent(
        5, "swine",
        "Events regarding the 2009 swine flu pandemic.",
        1, 0.92,
        (
            EventIncident("Mexico", 34, 12, 16.0),
        ),
    ),
    MajorEvent(
        6, "earthquake",
        "Events regarding earthquakes.",
        1, 0.55,
        (
            EventIncident("Costa Rica", 19, 3, 14.0),
            EventIncident("China", 10, 3, 9.0),
            EventIncident("Mexico", 36, 2, 8.0),
            EventIncident("Italy", 31, 3, 10.0),
            EventIncident("Bulgaria", 15, 2, 6.0),
        ),
    ),
    MajorEvent(
        7, "gaza",
        "Events regarding the Israeli Palestinian conflict in the Gaza "
        "Strip.",
        2, 0.45,
        (
            EventIncident("Israel", 16, 10, 15.0),
        ),
    ),
    MajorEvent(
        8, "ceasefire",
        "Israel announces a unilateral ceasefire in the Gaza War.",
        2, 0.30,
        (
            EventIncident("Israel", 20, 4, 12.0),
        ),
    ),
    MajorEvent(
        9, "Yemenia",
        "Yemenia Flight 626 crashes off the coast of Moroni, Comoros, "
        "killing all but one of the 153 passengers and crew.",
        2, 0.12,
        (
            EventIncident("Comoros", 43, 3, 12.0),
            EventIncident("Yemen", 43, 3, 9.0),
        ),
    ),
    MajorEvent(
        10, "piracy",
        "Events regarding incidents of Piracy off the Somali coast.",
        2, 0.18,
        (
            EventIncident("Somalia", 6, 10, 10.0),
            EventIncident("Kenya", 28, 8, 8.0),
        ),
    ),
    MajorEvent(
        11, "Air France",
        "Air France Flight 447 from Rio de Janeiro to Paris crashes "
        "into the Atlantic Ocean killing all 228 on board.",
        2, 0.35,
        (
            EventIncident("France", 39, 4, 14.0),
            EventIncident("Brazil", 39, 4, 12.0),
        ),
    ),
    MajorEvent(
        12, "bush fires",
        "Deadly bush fires in Australia kill 173, injure 500 more, and "
        "leave 7,500 homeless.",
        2, 0.15,
        (
            EventIncident("Australia", 22, 4, 14.0),
        ),
    ),
    MajorEvent(
        13, "Nkunda",
        "Congolese rebel leader L. Nkunda is captured by Rwandan "
        "forces.",
        3, 0.10,
        (
            EventIncident("DR Congo", 20, 3, 10.0),
            EventIncident("Rwanda", 20, 3, 8.0),
        ),
    ),
    MajorEvent(
        14, "Vieira",
        "The President of Guinea-Bissau, J. B. Vieira, is "
        "assassinated.",
        3, 0.07,
        (
            EventIncident("Guinea-Bissau", 26, 3, 10.0),
        ),
    ),
    MajorEvent(
        15, "Tsvangirai",
        "M. Tsvangirai is sworn in as the new Prime Minister of "
        "Zimbabwe.",
        3, 0.05,
        (
            EventIncident("Zimbabwe", 23, 3, 10.0),
        ),
    ),
    MajorEvent(
        16, "Rajoelina",
        "Andry Rajoelina becomes the new President of Madagascar after "
        "a military coup d'etat.",
        3, 0.05,
        (
            EventIncident("Madagascar", 28, 3, 10.0),
        ),
    ),
    MajorEvent(
        17, "Fujimori",
        "Former Peruvian Pres. Fujimori is sentenced to 25 years in "
        "prison for killings and kidnappings by security forces.",
        3, 0.06,
        (
            EventIncident("Peru", 31, 2, 10.0),
        ),
    ),
    MajorEvent(
        18, "Zelaya",
        "The Supreme Court of Honduras orders the arrest and exile of "
        "President M. Zelaya.",
        3, 0.12,
        (
            EventIncident("Honduras", 43, 4, 12.0),
        ),
    ),
)
"""The eighteen events, ordered as in Tables 1/9."""


def events_by_tier(tier: int) -> List[MajorEvent]:
    """Events of one impact tier (1, 2 or 3)."""
    if tier not in (1, 2, 3):
        raise ValueError("tier must be 1, 2 or 3")
    return [event for event in MAJOR_EVENTS if event.tier == tier]
