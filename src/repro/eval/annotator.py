"""Ground-truth relevance annotation.

The paper's Table-3 evaluation shows each retrieved document to "a
human annotator, who marks each of them as relevant or not relevant to
the event".  Our synthetic corpus carries provenance on every document
(``Document.event_id``), so the annotator is exact and deterministic:
a document is relevant to an event iff the event generated it.
Follower/context documents that merely *mention* the query terms carry
``event_id=None`` and are judged non-relevant — precisely the judgement
the human annotator made for tangential articles.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

from repro.streams.document import Document

__all__ = ["GroundTruthAnnotator"]


class GroundTruthAnnotator:
    """Provenance-based relevance judge."""

    def is_relevant(self, document: Document, event_id: Hashable) -> bool:
        """Relevance of one document to one event."""
        return document.event_id == event_id

    def judge(
        self, documents: Sequence[Document], event_id: Hashable
    ) -> List[bool]:
        """Relevance flags for a ranked result list."""
        return [self.is_relevant(document, event_id) for document in documents]
