"""Evaluation metrics (Section 6).

* JaccardSim — stream-set recovery quality (Table 2);
* Start-Error / End-Error — timeframe recovery (Table 2);
* precision@k — retrieval quality against relevance labels (Table 3);
* top-k overlap — pairwise result-list similarity (Section 6.3).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Set

from repro.errors import EmptyInputError
from repro.intervals.interval import Interval

__all__ = [
    "jaccard_similarity",
    "start_error",
    "end_error",
    "precision_at_k",
    "topk_overlap",
]


def jaccard_similarity(
    retrieved: Iterable[Hashable], actual: Iterable[Hashable]
) -> float:
    """``|Y ∩ Y'| / |Y ∪ Y'|`` over stream sets (Section 6.2.2).

    Both sets empty → 1.0 (perfect agreement on "nothing").
    """
    retrieved_set: Set[Hashable] = set(retrieved)
    actual_set: Set[Hashable] = set(actual)
    union = retrieved_set | actual_set
    if not union:
        return 1.0
    return len(retrieved_set & actual_set) / len(union)


def start_error(retrieved: Interval, actual: Interval) -> int:
    """``|i − i'|`` for the timeframes' first timestamps."""
    return abs(retrieved.start - actual.start)


def end_error(retrieved: Interval, actual: Interval) -> int:
    """``|i − i'|`` for the timeframes' last timestamps."""
    return abs(retrieved.end - actual.end)


def precision_at_k(
    relevant_flags: Sequence[bool], k: Optional[int] = None
) -> float:
    """Fraction of the first ``k`` results marked relevant.

    Args:
        relevant_flags: Relevance of each returned document, in rank
            order.
        k: Cut-off; defaults to the full list.

    Raises:
        EmptyInputError: when no results were returned at all.
    """
    if k is None:
        k = len(relevant_flags)
    if k == 0 or not relevant_flags:
        raise EmptyInputError("precision@k of an empty result list")
    top = relevant_flags[:k]
    return sum(1 for flag in top if flag) / len(top)


def topk_overlap(
    first: Sequence[Hashable], second: Sequence[Hashable]
) -> float:
    """Top-k set similarity: ``|A ∩ B| / max(|A|, |B|)``.

    Section 6.3 defines it as "the size of the overlap divided by 10"
    for two top-10 lists; the denominator generalises to the longer
    list when the engines returned fewer than k documents.
    """
    first_set, second_set = set(first), set(second)
    denominator = max(len(first_set), len(second_set))
    if denominator == 0:
        return 1.0
    return len(first_set & second_set) / denominator
