"""One runner per table/figure of the paper's evaluation (Section 6).

Each ``exp_*`` function reproduces the computation behind one table or
figure and returns a structured result whose ``render()`` prints the
same rows/series the paper reports.  The benchmark harness under
``benchmarks/`` wraps these runners with pytest-benchmark; the
EXPERIMENTS.md file records paper-vs-measured values.

Experiments on the Topix-style corpus share a :class:`TopixLab`, which
caches the corpus, its frequency tensor and the mined top patterns so
that Table 1, Figure 4 and Table 3 don't redo one another's work.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.base import BaseDetector
from repro.core.config import BaseConfig, STCombConfig, STLocalConfig
from repro.core.patterns import CombinatorialPattern, RegionalPattern
from repro.core.stcomb import STComb
from repro.core.stlocal import STLocal, STLocalTermTracker
from repro.datagen.corpus import (
    CorpusSettings,
    TopixStyleCorpus,
    generate_topix_corpus,
)
from repro.datagen.generators import (
    GeneratorSettings,
    SyntheticFrequencyData,
    generate_dataset,
)
from repro.datagen.weibull import FIGURE9_SETTINGS, weibull_pdf
from repro.eval.annotator import GroundTruthAnnotator
from repro.eval.metrics import (
    end_error,
    jaccard_similarity,
    precision_at_k,
    start_error,
    topk_overlap,
)
from repro.eval.reporting import render_histogram, render_series, render_table
from repro.search.engine import BurstySearchEngine, TemporalSearchEngine
from repro.spatial.geometry import mbr
from repro.streams.document import tokenize
from repro.streams.frequency import FrequencyTensor
from repro.temporal.lappas import LappasBurstDetector

__all__ = [
    "TopixLab",
    "build_topix_lab",
    "exp_table1",
    "exp_figure4",
    "exp_table2",
    "exp_table3",
    "exp_figure5",
    "exp_figure6",
    "exp_figure7",
    "exp_figure8",
    "exp_figure9",
]

#: STComb configuration used on the Topix-style corpus: weak ambient
#: intervals (B_T below this) are not allowed into the clique stage —
#: see EXPERIMENTS.md for the rationale on synthetic ambient noise.
TOPIX_STCOMB_CONFIG = STCombConfig(min_interval_score=0.2)


# ---------------------------------------------------------------------------
# Shared Topix laboratory
# ---------------------------------------------------------------------------
class TopixLab:
    """Shared state for the Topix-corpus experiments.

    Args:
        settings: Corpus generator settings; the default produces the
            full-size 181-country corpus.
    """

    def __init__(self, settings: Optional[CorpusSettings] = None) -> None:
        self.settings = settings if settings is not None else CorpusSettings()
        self.corpus: TopixStyleCorpus = generate_topix_corpus(self.settings)
        self.collection = self.corpus.collection
        self.tensor = FrequencyTensor(self.collection)
        self.locations = self.collection.locations()
        self.stcomb = STComb(config=TOPIX_STCOMB_CONFIG)
        self.stlocal = STLocal(config=STLocalConfig())
        self._top_comb: Dict[str, Optional[CombinatorialPattern]] = {}
        self._top_local: Dict[str, Optional[RegionalPattern]] = {}
        self._trackers: Dict[str, STLocalTermTracker] = {}

    # -- primary term of each query --------------------------------------
    @staticmethod
    def primary_term(query: str) -> str:
        """The query token used for single-term pattern experiments."""
        return tokenize(query)[0]

    # -- cached top patterns ----------------------------------------------
    def top_comb(self, term: str) -> Optional[CombinatorialPattern]:
        if term not in self._top_comb:
            self._top_comb[term] = self.stcomb.top_pattern(self.tensor, term)
        return self._top_comb[term]

    def tracker(self, term: str) -> STLocalTermTracker:
        if term not in self._trackers:
            self._trackers[term] = self.stlocal.run_term(
                self.tensor, term, locations=self.locations
            )
        return self._trackers[term]

    def top_local(self, term: str) -> Optional[RegionalPattern]:
        if term not in self._top_local:
            patterns = self.tracker(term).patterns(term)
            self._top_local[term] = patterns[0] if patterns else None
        return self._top_local[term]


def build_topix_lab(settings: Optional[CorpusSettings] = None) -> TopixLab:
    """Construct (and fully generate) the shared Topix laboratory."""
    return TopixLab(settings)


# ---------------------------------------------------------------------------
# Table 1 — top-scoring bursty source patterns
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Table1Result:
    """Rows: (#, query, countries in STLocal, in STComb, in MBR)."""

    rows: List[Tuple[int, str, int, int, int]]

    def render(self) -> str:
        return render_table(
            "Table 1: Top-Scoring Bursty Source Patterns",
            ["#", "Query", "STLocal", "STComb", "MBR"],
            self.rows,
        )


def exp_table1(lab: TopixLab) -> Table1Result:
    """Reproduce Table 1: country counts of each query's top pattern.

    STLocal counts the bursty member streams of its top maximal window
    (the paper's Section-4 false-positive exclusion); STComb counts the
    clique's streams; MBR counts every stream falling inside the
    minimum bounding rectangle of the STComb pattern's locations.
    """
    rows: List[Tuple[int, str, int, int, int]] = []
    for event_id, query in lab.corpus.queries():
        term = lab.primary_term(query)
        local = lab.top_local(term)
        comb = lab.top_comb(term)
        n_local = 0
        if local is not None:
            members = (
                local.bursty_streams
                if local.bursty_streams is not None
                else local.streams
            )
            n_local = len(members)
        n_comb = len(comb.streams) if comb is not None else 0
        n_mbr = 0
        if comb is not None and comb.streams:
            box = mbr([lab.locations[sid] for sid in comb.streams])
            n_mbr = sum(
                1
                for location in lab.locations.values()
                if box.contains_point(location)
            )
        rows.append((event_id, query, n_local, n_comb, n_mbr))
    return Table1Result(rows=rows)


# ---------------------------------------------------------------------------
# Figure 4 — timeframe lengths of the top patterns
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Figure4Result:
    """Rows: (#, query, STLocal weeks, STComb weeks)."""

    rows: List[Tuple[int, str, int, int]]

    def render(self) -> str:
        return render_table(
            "Figure 4: Timeframe length (weeks) of the top pattern",
            ["#", "Query", "STLocal", "STComb"],
            self.rows,
        )


def exp_figure4(lab: TopixLab) -> Figure4Result:
    """Reproduce Figure 4: top-pattern timeframe lengths per query."""
    rows: List[Tuple[int, str, int, int]] = []
    for event_id, query in lab.corpus.queries():
        term = lab.primary_term(query)
        local = lab.top_local(term)
        comb = lab.top_comb(term)
        rows.append(
            (
                event_id,
                query,
                local.timeframe.length if local is not None else 0,
                comb.timeframe.length if comb is not None else 0,
            )
        )
    return Figure4Result(rows=rows)


# ---------------------------------------------------------------------------
# Table 2 — pattern retrieval on artificial data
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Table2Result:
    """rows[method][generator] = (JaccardSim, Start-Error, End-Error)."""

    cells: Dict[str, Dict[str, Tuple[float, float, float]]]

    def render(self) -> str:
        rows = []
        for method in ("STLocal", "STComb", "Base"):
            for generator in ("distGen", "randGen"):
                jaccard, start, end = self.cells[method][generator]
                rows.append((method, generator, jaccard, start, end))
        return render_table(
            "Table 2: Spatiotemporal pattern retrieval",
            ["Method", "Generator", "JaccardSim", "Start-Error", "End-Error"],
            rows,
        )


def _retrieved_sets(
    method: str,
    data: SyntheticFrequencyData,
    term: str,
    stlocal: STLocal,
    stcomb: STComb,
    base: BaseDetector,
):
    """(stream set, timeframe) retrieved by one method for one term."""
    if method == "STLocal":
        pattern = stlocal.top_pattern(data, term, locations=data.locations)
        if pattern is None:
            return None
        members = (
            pattern.bursty_streams
            if pattern.bursty_streams
            else pattern.streams
        )
        return members, pattern.timeframe
    if method == "STComb":
        pattern = stcomb.top_pattern(data, term)
        if pattern is None:
            return None
        return pattern.streams, pattern.timeframe
    pattern = base.top_pattern(data, term)
    if pattern is None:
        return None
    return pattern.streams, pattern.timeframe


def _tune_base(
    data: SyntheticFrequencyData, sample: int = 20
) -> BaseConfig:
    """Grid-search ℓ and δ on a pattern sample ("we tune both ... to
    yield the best results")."""
    best_config = BaseConfig()
    best_score = -1.0
    for max_gap in (1, 2, 4):
        for delta in (0.2, 0.4, 0.6):
            config = BaseConfig(max_gap=max_gap, jaccard_threshold=delta)
            detector = BaseDetector(config)
            total = 0.0
            for pattern in data.patterns[:sample]:
                found = detector.top_pattern(data, pattern.term)
                if found is not None:
                    total += jaccard_similarity(found.streams, pattern.streams)
            if total > best_score:
                best_score = total
                best_config = config
    return best_config


def exp_table2(
    timeline: int = 365,
    n_streams: int = 60,
    n_terms: int = 2_000,
    n_patterns: int = 150,
    seed: int = 7,
) -> Table2Result:
    """Reproduce Table 2: retrieval of injected patterns.

    Defaults are a scaled-down instance of the paper's setup (which used
    timeline 365, 10,000 terms, 1,000 patterns); pass the paper's values
    for a full run.
    """
    cells: Dict[str, Dict[str, Tuple[float, float, float]]] = {
        "STLocal": {},
        "STComb": {},
        "Base": {},
    }
    for generator in ("distGen", "randGen"):
        settings = GeneratorSettings(
            mode="dist" if generator == "distGen" else "rand",
            timeline=timeline,
            n_streams=n_streams,
            n_terms=n_terms,
            n_patterns=n_patterns,
            seed=seed,
        )
        data = generate_dataset(settings)
        stlocal = STLocal()
        stcomb = STComb()
        base = BaseDetector(_tune_base(data))
        for method in cells:
            jaccards: List[float] = []
            starts: List[float] = []
            ends: List[float] = []
            for pattern in data.patterns:
                found = _retrieved_sets(
                    method, data, pattern.term, stlocal, stcomb, base
                )
                if found is None:
                    jaccards.append(0.0)
                    starts.append(float(timeline))
                    ends.append(float(timeline))
                    continue
                streams, timeframe = found
                jaccards.append(jaccard_similarity(streams, pattern.streams))
                starts.append(float(start_error(timeframe, pattern.timeframe)))
                ends.append(float(end_error(timeframe, pattern.timeframe)))
            cells[method][generator] = (
                sum(jaccards) / len(jaccards),
                sum(starts) / len(starts),
                sum(ends) / len(ends),
            )
    return Table2Result(cells=cells)


# ---------------------------------------------------------------------------
# Table 3 — precision in top-10 documents
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Table3Result:
    """Per-query precisions plus the pairwise top-k overlaps."""

    rows: List[Tuple[int, str, float, float, float]]
    overlaps: Dict[str, float]

    def averages(self) -> Tuple[float, float, float]:
        n = len(self.rows)
        return (
            sum(row[2] for row in self.rows) / n,
            sum(row[3] for row in self.rows) / n,
            sum(row[4] for row in self.rows) / n,
        )

    def render(self) -> str:
        table = render_table(
            "Table 3: Precision in top-10 documents",
            ["#", "Query", "TB", "STLocal", "STComb"],
            self.rows,
        )
        avg = self.averages()
        lines = [
            table,
            f"averages: TB={avg[0]:.2f}  STLocal={avg[1]:.2f}  STComb={avg[2]:.2f}",
            "top-k overlaps: "
            + "  ".join(f"{k}={v:.2f}" for k, v in self.overlaps.items()),
        ]
        return "\n".join(lines)


def exp_table3(lab: TopixLab, k: int = 10) -> Table3Result:
    """Reproduce Table 3: retrieval precision of TB / STLocal / STComb."""
    # Mine patterns for every token of every query, for both miners.
    all_terms: List[str] = []
    for _, query in lab.corpus.queries():
        for token in tokenize(query):
            if token not in all_terms:
                all_terms.append(token)
    comb_patterns = {
        term: lab.stcomb.patterns_for_term(lab.tensor, term)
        for term in all_terms
    }
    local_patterns = {
        term: lab.tracker(term).patterns(term) for term in all_terms
    }

    tb_engine = TemporalSearchEngine(lab.collection)
    local_engine = BurstySearchEngine(lab.collection, local_patterns)
    comb_engine = BurstySearchEngine(lab.collection, comb_patterns)
    annotator = GroundTruthAnnotator()

    rows: List[Tuple[int, str, float, float, float]] = []
    overlap_sums = {"STComb-TB": 0.0, "STComb-STLocal": 0.0, "TB-STLocal": 0.0}
    for event_id, query in lab.corpus.queries():
        results = {}
        for name, engine in (
            ("TB", tb_engine),
            ("STLocal", local_engine),
            ("STComb", comb_engine),
        ):
            hits = engine.search(query, k=k)
            flags = annotator.judge([hit.document for hit in hits], event_id)
            precision = precision_at_k(flags) if flags else 0.0
            results[name] = (precision, [hit.document.doc_id for hit in hits])
        rows.append(
            (
                event_id,
                query,
                results["TB"][0],
                results["STLocal"][0],
                results["STComb"][0],
            )
        )
        overlap_sums["STComb-TB"] += topk_overlap(
            results["STComb"][1], results["TB"][1]
        )
        overlap_sums["STComb-STLocal"] += topk_overlap(
            results["STComb"][1], results["STLocal"][1]
        )
        overlap_sums["TB-STLocal"] += topk_overlap(
            results["TB"][1], results["STLocal"][1]
        )
    n = len(rows)
    overlaps = {key: value / n for key, value in overlap_sums.items()}
    return Table3Result(rows=rows, overlaps=overlaps)


# ---------------------------------------------------------------------------
# Figures 5 & 6 — rectangle counts and open windows
# ---------------------------------------------------------------------------
def _sample_terms(lab: TopixLab, count: int, seed: int = 11) -> List[str]:
    """Query terms plus a random sample of the background vocabulary."""
    terms = [lab.primary_term(query) for _, query in lab.corpus.queries()]
    pool = sorted(lab.tensor.terms - set(terms))
    rng = random.Random(seed)
    extra = rng.sample(pool, min(count, len(pool)))
    return terms + extra


@dataclasses.dataclass
class Figure5Result:
    """Histogram of the average #bursty rectangles per timestamp."""

    buckets: List[Tuple[str, float]]

    def render(self) -> str:
        return render_histogram(
            "Figure 5: avg #rectangles per term per timestamp", self.buckets
        )

    def fraction_below_one(self) -> float:
        return self.buckets[0][1]


def exp_figure5(lab: TopixLab, sample: int = 100) -> Figure5Result:
    """Reproduce Figure 5: distribution of rectangles per timestamp.

    For each sampled term, run STLocal over the stream and average the
    per-snapshot count of bursty rectangles; the histogram buckets those
    averages.  The paper reports 92 % of terms land in [0, 1).
    """
    averages: List[float] = []
    for term in _sample_terms(lab, sample):
        tracker = lab.tracker(term)
        history = tracker.rectangle_history
        averages.append(sum(history) / len(history) if history else 0.0)
    edges = [(0, 1), (1, 2), (2, 3), (3, 5), (5, float("inf"))]
    labels = ["[0,1)", "[1,2)", "[2,3)", "[3,5)", ">=5"]
    buckets = []
    for (lo, hi), label in zip(edges, labels):
        fraction = sum(1 for a in averages if lo <= a < hi) / len(averages)
        buckets.append((label, fraction))
    return Figure5Result(buckets=buckets)


@dataclasses.dataclass
class Figure6Result:
    """Average open windows per timestamp vs the n·i upper bound."""

    timestamps: List[int]
    open_windows: List[float]
    upper_bound: List[int]

    def render(self) -> str:
        return render_series(
            "Figure 6: open spatiotemporal windows per term",
            "t",
            [("STLocal", self.open_windows), ("UpperBound", self.upper_bound)],
            self.timestamps,
        )

    def peak(self) -> float:
        return max(self.open_windows) if self.open_windows else 0.0


def exp_figure6(lab: TopixLab, sample: int = 100) -> Figure6Result:
    """Reproduce Figure 6: open windows per term vs worst case.

    The worst case allows ``n`` new windows per timestamp (``n·i`` total
    at time ``i``); the measured average stays orders of magnitude
    below it.
    """
    terms = _sample_terms(lab, sample)
    timeline = lab.collection.timeline
    totals = [0.0] * timeline
    for term in terms:
        history = lab.tracker(term).open_history
        for index, value in enumerate(history):
            totals[index] += value
    n = len(lab.collection)
    return Figure6Result(
        timestamps=list(range(1, timeline + 1)),
        open_windows=[total / len(terms) for total in totals],
        upper_bound=[n * (i + 1) for i in range(timeline)],
    )


# ---------------------------------------------------------------------------
# Figure 7 — per-timestamp running time
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Figure7Result:
    """Average per-term processing time (ms) per timestamp."""

    timestamps: List[int]
    stcomb_ms: List[float]
    stlocal_ms: List[float]

    def render(self) -> str:
        return render_series(
            "Figure 7: running time (ms) per timestamp",
            "t",
            [("STComb", self.stcomb_ms), ("STLocal", self.stlocal_ms)],
            self.timestamps,
        )


def exp_figure7(lab: TopixLab, sample: int = 24) -> Figure7Result:
    """Reproduce Figure 7: streaming per-timestamp cost of both miners.

    STLocal processes each new snapshot incrementally; STComb — which
    "needs to be re-applied to the entire updated dataset" — re-runs
    detection + clique finding on all data seen so far at every
    timestamp.
    """
    terms = _sample_terms(lab, max(0, sample - 18))
    timeline = lab.collection.timeline
    stlocal_totals = [0.0] * timeline
    stcomb_totals = [0.0] * timeline
    detector = LappasBurstDetector()

    for term in terms:
        # STLocal: true streaming.
        tracker = lab.stlocal.tracker(lab.locations)
        sequences = {
            sid: lab.tensor.sequence(term, sid)
            for sid in lab.tensor.streams_with(term)
        }
        for timestamp in range(timeline):
            snapshot = {
                sid: seq[timestamp]
                for sid, seq in sequences.items()
                if seq[timestamp]
            }
            start = time.perf_counter()
            tracker.process(snapshot)
            stlocal_totals[timestamp] += time.perf_counter() - start

        # STComb: recompute on the prefix at every timestamp.
        stcomb = STComb(config=TOPIX_STCOMB_CONFIG)
        for timestamp in range(timeline):
            prefix = {
                sid: seq[: timestamp + 1] for sid, seq in sequences.items()
            }
            start = time.perf_counter()
            intervals = []
            for sid, frequencies in prefix.items():
                if not any(frequencies):
                    continue
                for segment in detector.detect(frequencies):
                    if segment.score <= stcomb.config.min_interval_score:
                        continue
                    intervals.append((sid, segment))
            from repro.intervals.graph import WeightedInterval
            from repro.intervals.max_clique import iterated_max_cliques

            iterated_max_cliques(
                [
                    WeightedInterval(seg.interval, seg.score, sid)
                    for sid, seg in intervals
                ],
                max_patterns=1,
            )
            stcomb_totals[timestamp] += time.perf_counter() - start

    count = len(terms)
    return Figure7Result(
        timestamps=list(range(1, timeline + 1)),
        stcomb_ms=[total / count * 1000.0 for total in stcomb_totals],
        stlocal_ms=[total / count * 1000.0 for total in stlocal_totals],
    )


# ---------------------------------------------------------------------------
# Figure 8 — scalability vs number of streams
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Figure8Result:
    """Average per-term mining time (s) against the stream count."""

    stream_counts: List[int]
    stcomb_s: List[float]
    stlocal_s: List[float]

    def render(self) -> str:
        return render_series(
            "Figure 8: running time (s) vs number of streams",
            "streams",
            [("STComb", self.stcomb_s), ("STLocal", self.stlocal_s)],
            self.stream_counts,
        )


def exp_figure8(
    stream_counts: Sequence[int] = (100, 200, 400, 800, 1600, 3200),
    timeline: int = 120,
    n_terms: int = 400,
    n_patterns: int = 40,
    terms_per_point: int = 5,
    seed: int = 3,
) -> Figure8Result:
    """Reproduce Figure 8: near-linear scaling in the stream count.

    The paper sweeps 500…128,000 streams; the default here is a scaled
    sweep (pass larger counts for a longer run).  Per-stream history is
    not tracked (as for any large-n deployment).
    """
    stcomb_times: List[float] = []
    stlocal_times: List[float] = []
    for n_streams in stream_counts:
        settings = GeneratorSettings(
            mode="dist",
            timeline=timeline,
            n_streams=n_streams,
            n_terms=n_terms,
            n_patterns=n_patterns,
            seed=seed,
        )
        data = generate_dataset(settings)
        terms = [pattern.term for pattern in data.patterns[:terms_per_point]]
        stcomb = STComb()
        stlocal = STLocal(config=STLocalConfig(track_history=False))

        start = time.perf_counter()
        for term in terms:
            stcomb.patterns_for_term(data, term)
        stcomb_times.append((time.perf_counter() - start) / len(terms))

        start = time.perf_counter()
        for term in terms:
            stlocal.run_term(data, term, locations=data.locations)
        stlocal_times.append((time.perf_counter() - start) / len(terms))
    return Figure8Result(
        stream_counts=list(stream_counts),
        stcomb_s=stcomb_times,
        stlocal_s=stlocal_times,
    )


# ---------------------------------------------------------------------------
# Figure 9 — Weibull pdf curves
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Figure9Result:
    """Sampled pdf curves for the (k, c) settings of Figure 9."""

    x_values: List[float]
    curves: List[Tuple[str, List[float]]]

    def render(self) -> str:
        return render_series(
            "Figure 9: Weibull pdf curves", "x", self.curves, self.x_values
        )


def exp_figure9(points: int = 17) -> Figure9Result:
    """Reproduce Figure 9: the generator's event-shape curves."""
    x_values = [0.25 * i for i in range(1, points + 1)]
    curves = []
    for shape, scale in FIGURE9_SETTINGS:
        label = f"k={shape},c={scale}"
        curves.append(
            (label, [weibull_pdf(x, shape, scale) for x in x_values])
        )
    return Figure9Result(x_values=x_values, curves=curves)
