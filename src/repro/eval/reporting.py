"""ASCII rendering of tables and series, in the paper's layout.

The benchmark harness prints the same rows/columns the paper's tables
report, so a side-by-side comparison with the PDF is a plain visual
diff.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_histogram"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render an aligned monospace table with a title rule."""
    materialised: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = [title, rule, line(headers), rule]
    body.extend(line(row) for row in materialised)
    body.append(rule)
    return "\n".join(body)


def render_series(
    title: str,
    x_label: str,
    series: Sequence[Tuple[str, Sequence[float]]],
    x_values: Sequence,
) -> str:
    """Render one or more y-series against shared x values."""
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for index, x in enumerate(x_values):
        row = [x] + [values[index] for _, values in series]
        rows.append(row)
    return render_table(title, headers, rows)


def render_histogram(
    title: str,
    buckets: Sequence[Tuple[str, float]],
) -> str:
    """Render labelled fractions with proportional bars (Figure 5 style)."""
    lines = [title]
    for label, fraction in buckets:
        bar = "#" * int(round(fraction * 50))
        lines.append(f"  {label:>12}  {fraction * 100:5.1f}%  {bar}")
    return "\n".join(lines)
