"""Evaluation harness: metrics, annotator, experiment runners."""

from repro.eval.metrics import (
    end_error,
    jaccard_similarity,
    precision_at_k,
    start_error,
    topk_overlap,
)
from repro.eval.annotator import GroundTruthAnnotator
from repro.eval.reporting import render_histogram, render_series, render_table
from repro.eval.experiments import (
    TopixLab,
    build_topix_lab,
    exp_figure4,
    exp_figure5,
    exp_figure6,
    exp_figure7,
    exp_figure8,
    exp_figure9,
    exp_table1,
    exp_table2,
    exp_table3,
)

__all__ = [
    "GroundTruthAnnotator",
    "TopixLab",
    "build_topix_lab",
    "end_error",
    "exp_figure4",
    "exp_figure5",
    "exp_figure6",
    "exp_figure7",
    "exp_figure8",
    "exp_figure9",
    "exp_table1",
    "exp_table2",
    "exp_table3",
    "jaccard_similarity",
    "precision_at_k",
    "render_histogram",
    "render_series",
    "render_table",
    "start_error",
    "topk_overlap",
]
