"""Term-sharded multiprocessing for the batch mining pipeline.

Terms are independent in both STComb and STLocal, so a multi-term
workload parallelises embarrassingly: split the vocabulary into one
contiguous-ish shard per worker, run the snapshot-major sweep on each
shard in its own process, merge the per-shard pattern maps.

Because the trackers evaluate streams in a fixed sorted order (immune
to per-process string-hash randomisation), the merged result is
bit-identical to a serial sweep.

Everything shipped to a worker must pickle: the tensor (plain dicts),
the stream locations, and the miner configurations.  A custom
``baseline_factory`` must therefore be a module-level callable, not a
lambda.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, Hashable, List, Optional, Sequence

from repro.spatial.geometry import Point

__all__ = ["mine_shards", "split_terms"]


def split_terms(terms: Sequence[str], shards: int) -> List[List[str]]:
    """Round-robin split: balances heavy terms across shards even when
    term weight correlates with vocabulary order.

    An empty vocabulary yields *no* shards (``[]``, not ``[[]]``) — a
    single empty shard used to make :func:`mine_shards` spawn a worker
    process just to mine nothing.
    """
    if not terms:
        return []
    shards = max(1, min(shards, len(terms)))
    return [list(terms[offset::shards]) for offset in range(shards)]


def _mine_shard(
    kind, stlocal, stcomb, truncate_tails, columnar, tensor, terms, locations
):
    """Worker entry point: mine one shard serially in this process."""
    from repro.pipeline.batch import BatchMiner

    miner = BatchMiner(
        stlocal=stlocal,
        stcomb=stcomb,
        workers=1,
        truncate_tails=truncate_tails,
        columnar=columnar,
    )
    if kind == "regional":
        return miner.mine_regional(tensor, terms, locations)
    return miner.mine_combinatorial(tensor, terms)


def mine_shards(
    kind: str,
    miner,
    tensor,
    terms: Sequence[str],
    locations: Optional[Dict[Hashable, Point]],
    workers: int,
) -> Dict:
    """Fan a term list out over worker processes and merge the results.

    Args:
        kind: ``"regional"`` or ``"combinatorial"``.
        miner: The parent :class:`~repro.pipeline.BatchMiner` (supplies
            the algorithm configurations).
        tensor: The shared frequency tensor (pickled to each worker).
        terms: Full term list to mine.
        locations: Stream locations (regional mining only).
        workers: Number of worker processes.

    Returns:
        The merged term → patterns map (unordered; the caller restores
        term order).
    """
    shards = split_terms(terms, workers)
    if not shards:
        return {}
    columnar = getattr(miner, "columnar", True)
    if len(shards) <= 1:
        return _mine_shard(
            kind, miner.stlocal, miner.stcomb, miner.truncate_tails,
            columnar, tensor, list(terms), locations,
        )
    merged: Dict = {}
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=len(shards)
    ) as pool:
        futures = [
            pool.submit(
                _mine_shard,
                kind,
                miner.stlocal,
                miner.stcomb,
                miner.truncate_tails,
                columnar,
                tensor,
                shard,
                locations,
            )
            for shard in shards
        ]
        for future in futures:
            merged.update(future.result())
    return merged
