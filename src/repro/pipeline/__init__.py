"""Batch mining pipeline: snapshot-major sweeps and term sharding.

:class:`BatchMiner` mines every term of a corpus off one shared
frequency tensor — a single pass over the timeline feeds all STLocal
trackers — and optionally shards terms across worker processes for
STComb and STLocal alike.  :meth:`repro.core.STLocal.mine` and
:meth:`repro.core.STComb.mine` delegate here.

:class:`IncrementalFeeder` is the live counterpart: per-term durable
trackers advanced snapshot-by-snapshot as documents arrive, with
fork-based previews over still-open snapshots (see :mod:`repro.live`).
"""

from repro.pipeline.batch import BatchMiner
from repro.pipeline.incremental import IncrementalFeeder
from repro.pipeline.sharding import mine_shards, split_terms

__all__ = ["BatchMiner", "IncrementalFeeder", "mine_shards", "split_terms"]
