"""Snapshot-major batch mining over a shared frequency tensor.

The paper presents STLocal (Algorithm 2) as a *streaming* algorithm,
yet the natural batch usage — mine every term of a corpus — replays the
whole timeline once per term.  For a multi-term workload that is
term-major order: ``for term: for timestamp: process``.  This module
provides the snapshot-major pipeline instead: one sweep over the shared
:class:`~repro.streams.FrequencyTensor` feeds every term's
:class:`~repro.core.stlocal.STLocalTermTracker` from per-snapshot
sparse slices, with three structural savings over the term-major loop:

* **shared slicing** — the per-term ``{timestamp: {stream: count}}``
  views are materialised in one ``O(nnz)`` pass over the tensor instead
  of ``O(timeline × streams)`` `slice_at` scans per term;
* **quiet-prefix skip** — a tracker is fast-forwarded to its term's
  first active snapshot (a strict no-op prefix, see
  :meth:`~repro.core.stlocal.STLocalTermTracker.fast_forward`);
* **tail truncation** — after a term's last active snapshot, every
  stream's burstiness is ``observed − expected = −expected ≤ 0``, so no
  new rectangle, no new maximal segment and no new window can appear;
  the sweep stops feeding the tracker there.  (Valid for any baseline
  with non-negative expectations — true of every model in
  :mod:`repro.temporal.baselines`; disable with ``truncate_tails=False``
  when plugging in an exotic baseline.)

One spatial index over the stream locations is shared by all trackers.

On top of the snapshot-major order, the regional sweep itself runs on
the columnar kernel by default (``columnar=True``): each term's whole
burstiness matrix is vectorized in one pass and the per-snapshot
R-Bursty stage runs scalar off that matrix
(:mod:`repro.columnar.sweep`), producing byte-identical trackers.  The
kernel only understands the paper-default running-mean baseline, so a
custom ``baseline_factory`` automatically falls back to the legacy
per-snapshot replay — which also remains available explicitly
(``columnar=False``) as the reference oracle for the differential
tests and benchmarks.

The pipeline also shards terms across processes (``workers=N``) for
STLocal and STComb alike; results are bit-identical to the serial sweep
because the trackers evaluate streams in a fixed sorted order.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.columnar.sweep import columnar_supported
from repro.core.patterns import CombinatorialPattern, RegionalPattern
from repro.core.stcomb import STComb
from repro.core.stlocal import STLocal, STLocalTermTracker, _resolve
from repro.spatial.geometry import Point
from repro.spatial.index import IntervalSpatialIndex, SpatialIndex
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.frequency import FrequencyTensor

__all__ = ["BatchMiner"]

TensorLike = Union[SpatiotemporalCollection, FrequencyTensor]


class BatchMiner:
    """Multi-term mining pipeline over one shared frequency tensor.

    Args:
        stlocal: The regional miner whose configuration to use
            (default: a fresh :class:`~repro.core.STLocal`).
        stcomb: The combinatorial miner whose detector/configuration to
            use (default: a fresh :class:`~repro.core.STComb`).
        workers: Shard terms over this many processes; ``None``/``0``/
            ``1`` mine serially in-process (``0`` is the documented
            serial fast path — on single-CPU hosts the vectorized
            serial sweep beats oversubscribed workers).
        truncate_tails: Stop feeding a term's tracker after its last
            active snapshot (see module docstring).  Patterns are
            identical either way for non-negative baselines; only the
            trackers' per-snapshot history series end earlier.
        columnar: Use the vectorized columnar sweep for regional mining
            when the configuration supports it (see
            :func:`repro.columnar.sweep.columnar_supported`); disable
            to force the legacy per-snapshot replay.

    Example::

        from repro import FrequencyTensor
        from repro.pipeline import BatchMiner

        tensor = FrequencyTensor(collection)
        miner = BatchMiner(workers=4)
        regional = miner.mine_regional(tensor, locations=collection.locations())
        combinatorial = miner.mine_combinatorial(tensor)
    """

    def __init__(
        self,
        stlocal: Optional[STLocal] = None,
        stcomb: Optional[STComb] = None,
        workers: Optional[int] = None,
        truncate_tails: bool = True,
        columnar: bool = True,
    ) -> None:
        self.stlocal = stlocal if stlocal is not None else STLocal()
        self.stcomb = stcomb if stcomb is not None else STComb()
        self.workers = max(1, int(workers)) if workers else 1
        self.truncate_tails = truncate_tails
        self.columnar = columnar

    # ------------------------------------------------------------------
    # Regional (STLocal) pipeline
    # ------------------------------------------------------------------
    def regional_trackers(
        self,
        data: TensorLike,
        terms: Optional[Sequence[str]] = None,
        locations: Optional[Dict[Hashable, Point]] = None,
    ) -> Dict[str, STLocalTermTracker]:
        """Snapshot-major sweep: one tracker per term, all fed together.

        Returns every requested term's tracker (terms with no activity
        get a pristine tracker).  Note the per-snapshot history series
        (``rectangle_history`` / ``open_history``) cover only the
        processed prefix when ``truncate_tails`` is on.
        """
        tensor, locations = _resolve(data, locations)
        terms = self._term_list(tensor, terms)
        if self.columnar and columnar_supported(self.stlocal.config):
            return self._columnar_trackers(tensor, terms, locations)
        index: Optional[SpatialIndex] = None
        if len(locations) > STLocalTermTracker.INDEX_THRESHOLD:
            index = IntervalSpatialIndex(list(locations.items()))
        # One immutable location map (and one spatial index) shared by
        # every tracker — per-tracker copies would cost
        # O(|terms| × |streams|) memory over a full vocabulary.
        shared_locations = dict(locations)
        trackers = {
            term: STLocalTermTracker(
                shared_locations,
                config=self.stlocal.config,
                index=index,
                copy_locations=False,
            )
            for term in terms
        }

        snapshots: Dict[str, Dict[int, Dict[Hashable, float]]] = {}
        spans: Dict[str, Tuple[int, int]] = {}
        starting: Dict[int, List[str]] = {}
        for term in terms:
            snaps = _term_snapshots(tensor, term)
            if not snaps:
                continue
            first, last = min(snaps), max(snaps)
            snapshots[term] = snaps
            spans[term] = (first, last)
            starting.setdefault(first, []).append(term)

        timeline = tensor.timeline
        live: List[str] = []
        for timestamp in range(timeline):
            for term in starting.get(timestamp, ()):
                trackers[term].fast_forward(timestamp)
                live.append(term)
            if not live:
                continue
            survivors: List[str] = []
            for term in live:
                trackers[term].process(
                    snapshots[term].get(timestamp, {})
                )
                if self.truncate_tails and timestamp >= spans[term][1]:
                    # Nothing after the last activity can score; release
                    # the term's slices as it retires from the sweep.
                    del snapshots[term]
                    continue
                survivors.append(term)
            live = survivors
        return trackers

    def _columnar_trackers(
        self,
        tensor,
        terms: Sequence[str],
        locations: Dict[Hashable, Point],
    ) -> Dict[str, STLocalTermTracker]:
        """Vectorized regional sweep: one columnar pass over all terms."""
        from repro.columnar.sweep import LocationStore, sweep_terms

        store = LocationStore(locations)
        return sweep_terms(
            {term: _term_snapshots(tensor, term) for term in terms},
            store,
            self.stlocal.config,
            tensor.timeline,
            truncate_tails=self.truncate_tails,
        )

    def mine_regional(
        self,
        data: TensorLike,
        terms: Optional[Sequence[str]] = None,
        locations: Optional[Dict[Hashable, Point]] = None,
        save_to: Optional[str] = None,
    ) -> Dict[str, List[RegionalPattern]]:
        """Regional patterns for many terms in one timeline sweep.

        Args:
            save_to: Optionally persist the mining result as a
                ``patterns`` segment store (see :mod:`repro.store`).
                The mined tracker state rides along whenever it is
                persistable — serial mining with the default baseline;
                sharded runs save patterns only (workers return
                patterns, not trackers).

        Returns:
            Map of term → its maximal windows, identical to per-term
            :meth:`repro.core.STLocal.mine` output (terms with none
            omitted), in the requested term order.
        """
        tensor, locations = _resolve(data, locations)
        terms = self._term_list(tensor, terms)
        trackers: Optional[Dict[str, STLocalTermTracker]] = None
        if self.workers > 1:
            results = self._mine_sharded("regional", tensor, terms, locations)
        else:
            trackers = self.regional_trackers(tensor, terms, locations)
            results = {}
            for term in terms:
                patterns = trackers[term].patterns(term)
                if patterns:
                    results[term] = patterns
        if save_to is not None:
            from repro.store import save_patterns

            save_patterns(
                save_to,
                results,
                "regional",
                terms=terms,
                trackers=trackers,
                locations=locations,
            )
        return results

    # ------------------------------------------------------------------
    # Combinatorial (STComb) pipeline
    # ------------------------------------------------------------------
    def mine_combinatorial(
        self,
        data: TensorLike,
        terms: Optional[Sequence[str]] = None,
        save_to: Optional[str] = None,
    ) -> Dict[str, List[CombinatorialPattern]]:
        """Combinatorial patterns for many terms off one shared tensor.

        A raw collection is indexed into a tensor exactly once, so the
        per-term stage only touches the streams that actually contain
        the term (the collection path scanned every stream per term).
        Pass ``save_to`` to persist the result as a ``patterns``
        segment store.
        """
        tensor = self._as_tensor(data)
        terms = self._term_list(tensor, terms)
        if self.workers > 1:
            results = self._mine_sharded("combinatorial", tensor, terms, None)
        else:
            results = {}
            for term in terms:
                patterns = self.stcomb.patterns_for_term(tensor, term)
                if patterns:
                    results[term] = patterns
        if save_to is not None:
            from repro.store import save_patterns

            save_patterns(save_to, results, "combinatorial", terms=terms)
        return results

    # ------------------------------------------------------------------
    # Term-sharded multiprocessing
    # ------------------------------------------------------------------
    def _mine_sharded(
        self,
        kind: str,
        tensor,
        terms: Sequence[str],
        locations: Optional[Dict[Hashable, Point]],
    ) -> Dict:
        from repro.pipeline.sharding import mine_shards

        merged = mine_shards(
            kind=kind,
            miner=self,
            tensor=tensor,
            terms=terms,
            locations=locations,
            workers=self.workers,
        )
        # Preserve the requested term order across shard boundaries.
        return {term: merged[term] for term in terms if term in merged}

    # ------------------------------------------------------------------
    @staticmethod
    def _term_list(tensor, terms: Optional[Sequence[str]]) -> List[str]:
        if terms is None:
            return sorted(tensor.terms)
        # Deduplicate (keeping first occurrence): a repeated term would
        # otherwise be fed every snapshot once per occurrence, at
        # misaligned clocks, silently corrupting its tracker.
        return list(dict.fromkeys(terms))

    @staticmethod
    def _as_tensor(data: TensorLike):
        if isinstance(data, SpatiotemporalCollection):
            return FrequencyTensor(data)
        return data


def _term_snapshots(tensor, term: str) -> Dict[int, Dict[Hashable, float]]:
    """Per-timestamp slices of one term, via the fast tensor path.

    Falls back to per-timestamp ``slice_at`` for duck-typed frequency
    sources (e.g. the synthetic generators) that lack
    :meth:`~repro.streams.FrequencyTensor.term_snapshots`.
    """
    fast = getattr(tensor, "term_snapshots", None)
    if fast is not None:
        return fast(term)
    snapshots: Dict[int, Dict[Hashable, float]] = {}
    for timestamp in range(tensor.timeline):
        snapshot = tensor.slice_at(term, timestamp)
        if snapshot:
            snapshots[timestamp] = snapshot
    return snapshots
