"""Incremental snapshot feed for live STLocal mining.

The batch pipeline (:mod:`repro.pipeline.batch`) replays a *finished*
timeline; the live serving layer (:mod:`repro.live`) instead receives
documents continuously and must keep per-term trackers current without
rescanning history.  This module provides that feed path:

* one durable :class:`~repro.core.stlocal.STLocalTermTracker` per term,
  created lazily and advanced snapshot-by-snapshot through the *sealed*
  prefix of the timeline (timestamps no future document can touch);
* :meth:`IncrementalFeeder.preview` — a fork of the durable tracker fed
  through the still-open snapshots, so queries see patterns that
  include the freshest data while the durable tracker stays rewindable
  at its sealed checkpoint (open snapshots can still gain documents,
  and a tracker cannot reprocess a snapshot);
* the same two structural optimisations as the batch sweep: quiet
  prefixes are skipped with
  :meth:`~repro.core.stlocal.STLocalTermTracker.fast_forward`, and one
  shared :class:`~repro.spatial.index.SpatialIndex` serves every
  tracker.

Patterns read off a preview are identical to a cold batch rebuild of
the same collection — the differential tests
(``tests/test_live_differential.py``) hold the two paths byte-equal.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional

from repro.core.config import STLocalConfig
from repro.core.patterns import RegionalPattern
from repro.core.stlocal import STLocalTermTracker
from repro.errors import StreamError
from repro.spatial.geometry import Point
from repro.spatial.index import IntervalSpatialIndex, SpatialIndex

__all__ = ["IncrementalFeeder"]

#: term → timestamp → stream → frequency (the live tensor slice shape).
TermSnapshots = Mapping[int, Mapping[Hashable, float]]


class IncrementalFeeder:
    """Per-term durable trackers advanced snapshot-by-snapshot.

    Args:
        locations: Geostamp of every stream; fixed for the feeder's
            lifetime (trackers share one immutable map).
        config: STLocal settings shared by all trackers.
    """

    def __init__(
        self,
        locations: Dict[Hashable, Point],
        config: Optional[STLocalConfig] = None,
    ) -> None:
        self.locations = dict(locations)
        self.config = config if config is not None else STLocalConfig()
        self._index: Optional[SpatialIndex] = None
        if len(self.locations) > STLocalTermTracker.INDEX_THRESHOLD:
            self._index = IntervalSpatialIndex(list(self.locations.items()))
        self._trackers: Dict[str, STLocalTermTracker] = {}

    # ------------------------------------------------------------------
    def tracker(self, term: str) -> STLocalTermTracker:
        """The durable tracker of a term (created pristine on demand)."""
        tracker = self._trackers.get(term)
        if tracker is None:
            tracker = STLocalTermTracker(
                self.locations,
                config=self.config,
                index=self._index,
                copy_locations=False,
            )
            self._trackers[term] = tracker
        return tracker

    def terms(self) -> List[str]:
        """Terms with a durable tracker."""
        return list(self._trackers)

    # ------------------------------------------------------------------
    def advance(
        self, term: str, snapshots: TermSnapshots, through: int
    ) -> STLocalTermTracker:
        """Feed the durable tracker every snapshot in ``[clock, through)``.

        Only *sealed* timestamps belong here: once processed, a snapshot
        cannot be amended.  ``through`` therefore must not exceed the
        caller's sealed watermark.

        Args:
            term: The term being advanced.
            snapshots: The term's sparse per-timestamp slices (absent
                timestamps are empty snapshots).
            through: Advance the clock to this timestamp (exclusive).

        Returns:
            The durable tracker, at ``clock >= through``.

        Raises:
            StreamError: when ``through`` is behind the tracker's clock
                by way of a snapshot map that rewrites history (the
                tracker itself rejects backwards feeds).
        """
        tracker = self.tracker(term)
        self._feed(tracker, term, snapshots, through)
        return tracker

    def preview(
        self, term: str, snapshots: TermSnapshots, through: int
    ) -> STLocalTermTracker:
        """Fork the durable tracker and feed it through open snapshots.

        The fork is advanced over ``[clock, through)`` — typically the
        single still-open snapshot at the ingestion watermark — and
        returned for pattern reads; the durable tracker is untouched.
        """
        fork = self.tracker(term).fork()
        self._feed(fork, term, snapshots, through)
        return fork

    def mine_term(
        self, term: str, snapshots: TermSnapshots, sealed: int, through: int
    ) -> List[RegionalPattern]:
        """Current patterns of a term: commit sealed, preview the rest.

        Args:
            term: The term to mine.
            snapshots: Its sparse per-timestamp slices.
            sealed: Sealed watermark — the durable tracker is committed
                through here (exclusive).
            through: Preview horizon (exclusive), covering the open
                snapshots; must be ``>= sealed``.
        """
        if through < sealed:
            raise StreamError(
                f"preview horizon {through} behind sealed watermark {sealed}"
            )
        self.advance(term, snapshots, sealed)
        if through == sealed:
            return self.tracker(term).patterns(term)
        return self.preview(term, snapshots, through).patterns(term)

    # ------------------------------------------------------------------
    @staticmethod
    def _feed(
        tracker: STLocalTermTracker,
        term: str,
        snapshots: TermSnapshots,
        through: int,
    ) -> None:
        if tracker.clock >= through:
            return
        if tracker.pristine:
            # Quiet-prefix skip, exactly as the batch sweep does it: an
            # empty snapshot before the first observation is a strict
            # no-op, so jump straight to the first active timestamp.
            active = [
                timestamp
                for timestamp, slice_ in snapshots.items()
                if tracker.clock <= timestamp < through and slice_
            ]
            tracker.fast_forward(min(active) if active else through)
        for timestamp in range(tracker.clock, through):
            tracker.process(dict(snapshots.get(timestamp, {})))
