"""Temporal burstiness score ``B_T`` (Eq. 1 of the paper).

Given a term's frequency sequence ``Y = y_1 .. y_N`` with total mass
``W = Σ y_j``, the temporal burstiness of an interval ``I = Y[l:r]`` is

    B_T(I) = Σ_{i∈I} y_i / W  −  |I| / N

i.e. the discrepancy between the fraction of the term's mass inside the
interval and the fraction of the timeline the interval covers.  The
score lies in ``(-1, 1)``; it is positive exactly when the term is
over-represented inside the interval.

The key algebraic fact the whole of Section 3 rests on: ``B_T`` is an
*additive* segment score.  Defining the transformed sequence

    z_i = y_i / W − 1 / N

we have ``B_T(Y[l:r]) = Σ_{i=l..r} z_i``, so the non-overlapping bursty
intervals of maximal score are exactly the Ruzzo–Tompa maximal segments
of ``z`` — which is how :mod:`repro.temporal.lappas` extracts them in
linear time.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import EmptyInputError, InvalidIntervalError
from repro.intervals.interval import Interval

__all__ = ["temporal_burstiness", "discrepancy_transform", "interval_score"]


def discrepancy_transform(frequencies: Sequence[float]) -> List[float]:
    """Map a frequency sequence to its additive discrepancy scores.

    Returns the sequence ``z_i = y_i / W − 1/N`` whose segment sums equal
    ``B_T`` of the corresponding interval.  When the sequence has zero
    total mass (the term never occurs), every ``z_i`` is ``−1/N`` so no
    interval can ever be bursty — matching the intuition that an unseen
    term has no bursts.

    Raises:
        EmptyInputError: for an empty sequence.
    """
    if len(frequencies) == 0:
        raise EmptyInputError("cannot transform an empty frequency sequence")
    values = np.asarray(frequencies, dtype=float)
    if np.any(values < 0):
        raise InvalidIntervalError("frequencies must be non-negative")
    total = float(values.sum())
    length = len(values)
    if total == 0.0:
        return [-1.0 / length] * length
    return list(values / total - 1.0 / length)


def temporal_burstiness(frequencies: Sequence[float], interval: Interval) -> float:
    """Evaluate ``B_T(I)`` (Eq. 1) for an interval of a frequency sequence.

    Args:
        frequencies: The term's frequency measurements ``y_1 .. y_N``.
        interval: The closed index interval to score; must lie within
            ``[0, N-1]``.

    Raises:
        InvalidIntervalError: when the interval exceeds the sequence.
        EmptyInputError: for an empty sequence.
    """
    if len(frequencies) == 0:
        raise EmptyInputError("cannot score an interval of an empty sequence")
    if interval.start < 0 or interval.end >= len(frequencies):
        raise InvalidIntervalError(
            f"{interval} is out of bounds for a sequence of length "
            f"{len(frequencies)}"
        )
    values = np.asarray(frequencies, dtype=float)
    total = float(values.sum())
    length = len(values)
    if total == 0.0:
        return -interval.length / length
    inside = float(values[interval.start : interval.end + 1].sum())
    return inside / total - interval.length / length


def interval_score(transformed: Sequence[float], interval: Interval) -> float:
    """Sum the transformed scores over an interval.

    Equivalent to :func:`temporal_burstiness` when ``transformed`` came
    from :func:`discrepancy_transform` of the same sequence; kept
    separate because detectors pass the transformed sequence around.
    """
    if interval.start < 0 or interval.end >= len(transformed):
        raise InvalidIntervalError(
            f"{interval} is out of bounds for a sequence of length "
            f"{len(transformed)}"
        )
    return float(sum(transformed[interval.start : interval.end + 1]))
