"""Kleinberg's two-state burst automaton [13].

The spatiotemporal framework of the paper is detector-agnostic: STComb
only requires *some* per-stream procedure that reports non-overlapping
scored bursty intervals.  We provide Kleinberg's classic infinite-state
automaton, restricted to the two-state (base / burst) batched variant,
as the alternative detector used in the ablation benchmarks.

Model
-----
At each timestamp ``i`` we observe ``r_i`` relevant events (the term's
frequency) out of ``d_i`` total events (the stream's total token count;
when unavailable we substitute a constant envelope of twice the peak
frequency, which keeps both emission rates strictly inside (0, 1)).
State 0 emits with probability ``p0 = R / D`` (the global rate), state 1
with ``p1 = s * p0`` (clipped below 1).  Transitioning from state 0 to
state 1 costs ``gamma * ln n``; staying or dropping back is free.  The
minimum-cost state sequence is found with a Viterbi pass; maximal runs
of state 1 are the bursty intervals.

The interval score is the paper-compatible *weight* of the burst: the
cost saved by being in the burst state rather than the base state over
the run, which is Kleinberg's burst weight.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.kernels import binomial_cost_series
from repro.errors import ConfigurationError
from repro.intervals.interval import Interval
from repro.intervals.interval_set import intervals_from_mask
from repro.temporal.max_segments import ScoredSegment

__all__ = ["KleinbergBurstDetector"]


def _clipped_logs(probability: float) -> Tuple[float, float]:
    """``(log p, log (1−p))`` of the clipped emission probability."""
    probability = min(max(probability, 1e-12), 1.0 - 1e-12)
    return math.log(probability), math.log(1.0 - probability)


def _binomial_cost(probability: float, relevant: float, total: float) -> float:
    """Negative log-likelihood of ``relevant`` successes in ``total`` trials.

    The binomial coefficient is omitted: it is identical across states
    and cancels in the Viterbi comparison.
    """
    probability = min(max(probability, 1e-12), 1.0 - 1e-12)
    return -(
        relevant * math.log(probability)
        + (total - relevant) * math.log(1.0 - probability)
    )


class KleinbergBurstDetector:
    """Two-state Kleinberg burst automaton over batched counts.

    Args:
        scaling: Ratio ``s`` between the burst-state and base-state
            emission rates (``s > 1``).
        gamma: Cost multiplier for entering the burst state; larger
            values demand stronger evidence before a burst opens.
        min_score: Minimum burst weight an interval must reach to be
            reported.
    """

    def __init__(
        self,
        scaling: float = 2.0,
        gamma: float = 1.0,
        min_score: float = 0.0,
    ) -> None:
        if scaling <= 1.0:
            raise ConfigurationError("scaling must exceed 1")
        if gamma < 0.0:
            raise ConfigurationError("gamma must be non-negative")
        self.scaling = scaling
        self.gamma = gamma
        self.min_score = min_score

    # ------------------------------------------------------------------
    def detect(
        self,
        frequencies: Sequence[float],
        totals: Optional[Sequence[float]] = None,
    ) -> List[ScoredSegment]:
        """Extract bursty intervals from a frequency sequence.

        Args:
            frequencies: Relevant-event counts ``r_i`` per timestamp.
            totals: Total-event counts ``d_i`` per timestamp.  When
                omitted, a constant envelope of twice the peak frequency
                is used — a neutral substitute that makes the base rate
                meaningful for raw term counts.

        Returns:
            Non-overlapping bursty intervals with Kleinberg burst
            weights as scores, in left-to-right order.
        """
        n = len(frequencies)
        if n == 0:
            return []
        relevant = [float(v) for v in frequencies]
        if totals is None:
            # Raw term counts come without per-timestep totals; a constant
            # envelope of twice the peak keeps both emission rates well
            # inside (0, 1) so the burst state stays reachable.
            envelope = 2.0 * max(relevant) + 1.0
            observed = [envelope] * n
        else:
            if len(totals) != n:
                raise ConfigurationError(
                    "totals must have the same length as frequencies"
                )
            observed = [max(float(t), 1e-9) for t in totals]
        total_relevant = sum(relevant)
        total_observed = sum(observed)
        if total_relevant <= 0.0:
            return []

        p0 = total_relevant / total_observed
        p1 = min(p0 * self.scaling, 1.0 - 1e-9)
        transition_cost = self.gamma * math.log(n + 1.0)

        # Both emission-cost series at once: the logarithms are taken
        # once per clipped *scalar* rate with math.log (np.log over an
        # array may differ by an ulp), then broadcast — per element the
        # identical arithmetic of _binomial_cost.
        relevant_arr = np.asarray(relevant)
        observed_arr = np.asarray(observed)
        emit0 = binomial_cost_series(
            *_clipped_logs(p0), relevant_arr, observed_arr
        ).tolist()
        emit1 = binomial_cost_series(
            *_clipped_logs(p1), relevant_arr, observed_arr
        ).tolist()

        states = self._viterbi_costs(emit0, emit1, transition_cost)
        runs = intervals_from_mask([state == 1 for state in states])
        segments = []
        for run in runs:
            # Same alternating ``+= cost0; -= cost1`` accumulation as
            # the reference _burst_weight, off the precomputed series.
            weight = 0.0
            for i in run:
                weight += emit0[i]
                weight -= emit1[i]
            if weight > self.min_score:
                segments.append(ScoredSegment(interval=run, score=weight))
        return segments

    def detect_reference(
        self,
        frequencies: Sequence[float],
        totals: Optional[Sequence[float]] = None,
    ) -> List[ScoredSegment]:
        """The pure-Python reference path (differential-test oracle).

        Recomputes every emission cost — logarithms included — inside
        the Viterbi and weight loops; byte-identical to :meth:`detect`.
        """
        n = len(frequencies)
        if n == 0:
            return []
        relevant = [float(v) for v in frequencies]
        if totals is None:
            envelope = 2.0 * max(relevant) + 1.0
            observed = [envelope] * n
        else:
            if len(totals) != n:
                raise ConfigurationError(
                    "totals must have the same length as frequencies"
                )
            observed = [max(float(t), 1e-9) for t in totals]
        total_relevant = sum(relevant)
        total_observed = sum(observed)
        if total_relevant <= 0.0:
            return []

        p0 = total_relevant / total_observed
        p1 = min(p0 * self.scaling, 1.0 - 1e-9)
        transition_cost = self.gamma * math.log(n + 1.0)

        states = self._viterbi(relevant, observed, p0, p1, transition_cost)
        runs = intervals_from_mask([state == 1 for state in states])
        segments = []
        for run in runs:
            weight = self._burst_weight(run, relevant, observed, p0, p1)
            if weight > self.min_score:
                segments.append(ScoredSegment(interval=run, score=weight))
        return segments

    # ------------------------------------------------------------------
    def _viterbi_costs(
        self,
        emit0: Sequence[float],
        emit1: Sequence[float],
        transition_cost: float,
    ) -> List[int]:
        """Minimum-cost state sequence over precomputed emission costs.

        The same recurrence as :meth:`_viterbi` with the per-step
        ``_binomial_cost`` calls replaced by series lookups.
        """
        n = len(emit0)
        cost0 = 0.0
        cost1 = transition_cost
        back: List[List[int]] = []
        for i in range(n):
            e0 = emit0[i]
            e1 = emit1[i]
            new0 = min(cost0, cost1) + e0
            prev0 = 0 if cost0 <= cost1 else 1
            enter = cost0 + transition_cost
            stay = cost1
            new1 = min(enter, stay) + e1
            prev1 = 0 if enter < stay else 1
            back.append([prev0, prev1])
            cost0, cost1 = new0, new1
        states = [0] * n
        state = 0 if cost0 <= cost1 else 1
        for i in range(n - 1, -1, -1):
            states[i] = state
            state = back[i][state]
        return states

    def _viterbi(
        self,
        relevant: Sequence[float],
        observed: Sequence[float],
        p0: float,
        p1: float,
        transition_cost: float,
    ) -> List[int]:
        """Minimum-cost state sequence of the two-state automaton."""
        n = len(relevant)
        cost0 = 0.0
        cost1 = transition_cost
        # back[i][state] = predecessor state chosen at step i.
        back: List[List[int]] = []
        for i in range(n):
            emit0 = _binomial_cost(p0, relevant[i], observed[i])
            emit1 = _binomial_cost(p1, relevant[i], observed[i])
            # Into state 0: free from either state.
            new0 = min(cost0, cost1) + emit0
            prev0 = 0 if cost0 <= cost1 else 1
            # Into state 1: entering from state 0 pays the transition.
            enter = cost0 + transition_cost
            stay = cost1
            new1 = min(enter, stay) + emit1
            prev1 = 0 if enter < stay else 1
            back.append([prev0, prev1])
            cost0, cost1 = new0, new1
        states = [0] * n
        state = 0 if cost0 <= cost1 else 1
        for i in range(n - 1, -1, -1):
            states[i] = state
            state = back[i][state]
        return states

    def _burst_weight(
        self,
        run: Interval,
        relevant: Sequence[float],
        observed: Sequence[float],
        p0: float,
        p1: float,
    ) -> float:
        """Kleinberg burst weight: base-state cost minus burst-state cost."""
        weight = 0.0
        for i in run:
            weight += _binomial_cost(p0, relevant[i], observed[i])
            weight -= _binomial_cost(p1, relevant[i], observed[i])
        return weight
