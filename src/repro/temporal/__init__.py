"""Temporal-burstiness substrate.

Discrepancy scoring (Eq. 1), Ruzzo–Tompa maximal segments (GetMax),
the Lappas KDD'09 burst detector, Kleinberg's automaton, and the
expected-frequency models of Section 4.
"""

from repro.temporal.burstiness import (
    discrepancy_transform,
    interval_score,
    temporal_burstiness,
)
from repro.temporal.max_segments import (
    OnlineMaxSegments,
    ScoredSegment,
    maximal_segments,
    maximal_segments_bruteforce,
)
from repro.temporal.lappas import LappasBurstDetector, extract_bursty_intervals
from repro.temporal.kleinberg import KleinbergBurstDetector
from repro.temporal.baselines import (
    EWMABaseline,
    ExpectedFrequencyModel,
    MovingAverageBaseline,
    RunningMeanBaseline,
    SeasonalBaseline,
    burstiness_series,
)

__all__ = [
    "EWMABaseline",
    "ExpectedFrequencyModel",
    "KleinbergBurstDetector",
    "LappasBurstDetector",
    "MovingAverageBaseline",
    "OnlineMaxSegments",
    "RunningMeanBaseline",
    "ScoredSegment",
    "SeasonalBaseline",
    "burstiness_series",
    "discrepancy_transform",
    "extract_bursty_intervals",
    "interval_score",
    "maximal_segments",
    "maximal_segments_bruteforce",
    "temporal_burstiness",
]
