"""All maximal scoring subsequences (Ruzzo–Tompa ``GetMax``).

STLocal needs, for every tracked region, the set of *maximal* contiguous
subsequences of the region's r-score sequence — each maximal segment is
a maximal spatiotemporal window (Definition 2).  The paper employs the
linear-time online algorithm of Ruzzo and Tompa [21], whose pseudocode
is reproduced in Appendix C; this module implements it twice:

* :func:`maximal_segments` — the offline form, for whole sequences;
* :class:`OnlineMaxSegments` — the incremental form, where values are
  appended one at a time and the current maximal segments can be read
  off between appends.  This is the exact usage pattern of Algorithm 2
  ("the algorithm is not re-applied to the entire sequence every time a
  new score is appended").

A quadratic reference implementation
(:func:`maximal_segments_bruteforce`) is provided for property tests:
it recursively extracts the shortest-leftmost maximum-sum segment and
recurses on both flanks, which characterises the Ruzzo–Tompa segment
set.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.intervals.interval import Interval

__all__ = [
    "ScoredSegment",
    "OnlineMaxSegments",
    "maximal_segments",
    "maximal_segments_reference",
    "maximal_segments_bruteforce",
]


@dataclasses.dataclass(frozen=True)
class ScoredSegment:
    """A contiguous subsequence together with its score.

    Attributes:
        interval: Index interval ``[start, end]`` of the segment.
        score: Sum of the sequence values over the segment.
    """

    interval: Interval
    score: float

    @property
    def start(self) -> int:
        return self.interval.start

    @property
    def end(self) -> int:
        return self.interval.end


@dataclasses.dataclass
class _Candidate:
    """Internal Ruzzo–Tompa candidate segment.

    ``left_sum`` is the cumulative total of all scores strictly before
    the segment's leftmost element (the paper's ``l_j``); ``right_sum``
    is the cumulative total through the rightmost element (``r_j``).
    The segment's score is therefore ``right_sum - left_sum``.
    """

    start: int
    end: int
    left_sum: float
    right_sum: float

    @property
    def score(self) -> float:
        return self.right_sum - self.left_sum


class OnlineMaxSegments:
    """Incrementally maintain all maximal scoring subsequences.

    Values are appended with :meth:`add`; at any time :meth:`segments`
    returns the current maximal segments (the surviving Ruzzo–Tompa
    candidates).  Each ``add`` runs in amortised ``O(1)``.

    This object also tracks ``total`` — the running sum of all values —
    which Algorithm 2 uses for its pruning rule (a region whose sequence
    total goes negative can never seed a new maximal window and is
    dropped).
    """

    def __init__(self) -> None:
        self._cumulative = 0.0
        self._length = 0
        self._candidates: List[_Candidate] = []

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Running sum of every value appended so far."""
        return self._cumulative

    def __len__(self) -> int:
        """Number of values appended so far."""
        return self._length

    @property
    def candidate_count(self) -> int:
        """Number of live candidate segments (for Figure-6 style stats)."""
        return len(self._candidates)

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Append the next score of the sequence.

        Non-positive scores only advance the cumulative total.  A
        positive score becomes a fresh single-element candidate which is
        then merged leftward per the Ruzzo–Tompa rules (Appendix C,
        steps 1–2).
        """
        position = self._length
        if value > 0.0:
            candidate = _Candidate(
                start=position,
                end=position,
                left_sum=self._cumulative,
                right_sum=self._cumulative + value,
            )
            self._integrate(candidate)
        self._cumulative += value
        self._length += 1

    def extend(self, values: Iterable[float]) -> None:
        """Append several scores in order."""
        for value in values:
            self.add(value)

    def fork(self) -> "OnlineMaxSegments":
        """An independent copy that can be advanced without affecting this one.

        Candidates are immutable once integrated (``_integrate`` only
        appends fresh instances and truncates the list), so a shallow
        copy of the candidate list is a full state copy.
        """
        clone = OnlineMaxSegments()
        clone._cumulative = self._cumulative
        clone._length = self._length
        clone._candidates = list(self._candidates)
        return clone

    @classmethod
    def restore(
        cls,
        candidates: Iterable[Tuple[int, int, float, float]],
        cumulative: float,
        length: int,
    ) -> "OnlineMaxSegments":
        """Rebuild a tracker from batch-computed Ruzzo–Tompa state.

        The columnar sweep computes a whole sequence's candidate set in
        one pass (:func:`repro.columnar.kernels.maximal_segment_state`)
        and materialises the equivalent online tracker through here;
        ``candidates`` are ``(start, end, left_sum, right_sum)`` tuples
        in left-to-right order.
        """
        tracker = cls()
        tracker._cumulative = cumulative
        tracker._length = length
        tracker._candidates = [
            _Candidate(
                start=start, end=end, left_sum=left_sum, right_sum=right_sum
            )
            for start, end, left_sum, right_sum in candidates
        ]
        return tracker

    def _integrate(self, candidate: _Candidate) -> None:
        """Merge a new candidate into the list (the Appendix-C loop)."""
        candidates = self._candidates
        while True:
            # Step 1: rightmost j with l_j < l_k.
            j = len(candidates) - 1
            while j >= 0 and candidates[j].left_sum >= candidate.left_sum:
                j -= 1
            if j < 0 or candidates[j].right_sum >= candidate.right_sum:
                # Step 2a: no such j, or it dominates — append.
                candidates.append(candidate)
                return
            # Step 2b: extend the candidate left over I_j .. I_{k-1}.
            candidate = _Candidate(
                start=candidates[j].start,
                end=candidate.end,
                left_sum=candidates[j].left_sum,
                right_sum=candidate.right_sum,
            )
            del candidates[j:]

    # ------------------------------------------------------------------
    def segments(self) -> List[ScoredSegment]:
        """Current maximal segments, in left-to-right order."""
        return [
            ScoredSegment(
                interval=Interval(c.start, c.end),
                score=c.score,
            )
            for c in self._candidates
        ]

    def best(self) -> Optional[ScoredSegment]:
        """The highest-scoring maximal segment, or ``None`` if none exist."""
        if not self._candidates:
            return None
        top = max(self._candidates, key=lambda c: c.score)
        return ScoredSegment(interval=Interval(top.start, top.end), score=top.score)


def maximal_segments(values: Sequence[float]) -> List[ScoredSegment]:
    """All maximal scoring subsequences of ``values`` (offline GetMax).

    Delegates to the columnar batch kernel — cumulative totals come
    from one sequential ``cumsum`` and the candidate merge touches only
    the positive entries — which is byte-identical to (and much faster
    than) feeding :class:`OnlineMaxSegments` one value at a time; see
    :func:`repro.columnar.kernels.maximal_segment_state`.  The online
    form below (:func:`maximal_segments_reference`) is kept as the
    property-test oracle.

    Returns:
        Maximal segments in left-to-right order (possibly empty when the
        sequence has no positive value).
    """
    from repro.columnar.kernels import maximal_segment_state

    candidates, _, _ = maximal_segment_state(values)
    return [
        ScoredSegment(
            interval=Interval(start, end), score=right_sum - left_sum
        )
        for start, end, left_sum, right_sum in candidates
    ]


def maximal_segments_reference(values: Sequence[float]) -> List[ScoredSegment]:
    """The online form of GetMax, kept as a differential-test oracle."""
    tracker = OnlineMaxSegments()
    tracker.extend(values)
    return tracker.segments()


def _max_subarray(values: Sequence[float], lo: int, hi: int) -> Optional[Tuple[int, int, float]]:
    """Shortest-leftmost maximum-sum subarray of ``values[lo:hi]``.

    Quadratic scan used only by the brute-force reference.  Returns
    ``None`` when no positive-sum subarray exists.
    """
    best: Optional[Tuple[int, int, float]] = None
    for start in range(lo, hi):
        running = 0.0
        for end in range(start, hi):
            running += values[end]
            if running <= 0.0:
                continue
            length = end - start
            if best is None:
                best = (start, end, running)
                continue
            best_length = best[1] - best[0]
            if running > best[2] or (
                running == best[2]
                and (length, start) < (best_length, best[0])
            ):
                best = (start, end, running)
    return best


def maximal_segments_bruteforce(values: Sequence[float]) -> List[ScoredSegment]:
    """Reference implementation: recursive max-segment extraction.

    Extract the shortest-leftmost maximum-sum segment, then recurse on
    the flanks.  Quadratic; used to validate :func:`maximal_segments`
    in property tests.
    """

    def recurse(lo: int, hi: int) -> List[ScoredSegment]:
        found = _max_subarray(values, lo, hi)
        if found is None:
            return []
        start, end, score = found
        left = recurse(lo, start)
        right = recurse(end + 1, hi)
        middle = ScoredSegment(interval=Interval(start, end), score=score)
        return left + [middle] + right

    return recurse(0, len(values))
