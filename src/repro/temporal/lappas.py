"""Linear-time extraction of non-overlapping bursty temporal intervals.

This is the temporal substrate STComb builds on: the burst detector of
Lappas et al. (KDD 2009) [14], which Section 3 of the spatiotemporal
paper summarises.  Given a term's frequency sequence, the detector
returns the set of non-overlapping intervals that are *maximal* under
the discrepancy score ``B_T`` of Eq. 1.

Because ``B_T`` is an additive function of the transformed sequence
``z_i = y_i / W − 1/N`` (see :mod:`repro.temporal.burstiness`), the
maximal bursty intervals are exactly the Ruzzo–Tompa maximal segments of
``z`` — so extraction is a transform followed by ``GetMax`` and runs in
``O(N)`` after the transform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.temporal.burstiness import discrepancy_transform
from repro.temporal.max_segments import ScoredSegment, maximal_segments

__all__ = ["LappasBurstDetector", "extract_bursty_intervals"]


class LappasBurstDetector:
    """Discrepancy-based temporal burst detector (KDD'09 formulation).

    The detector is stateless; it is a class (rather than a function) so
    that it satisfies the pluggable-detector protocol that
    :class:`repro.core.stcomb.STComb` accepts — the paper notes its
    "methodology is compatible with any framework that reports
    non-overlapping bursty intervals".

    Args:
        min_score: Minimum ``B_T`` a reported interval must reach.
            The paper reports every positive-scoring maximal interval;
            raising this prunes weak bursts (useful on noisy data).
        min_length: Minimum interval length in timestamps.
        max_intervals: Optional cap; keeps only the highest-scoring
            intervals when set.
    """

    def __init__(
        self,
        min_score: float = 0.0,
        min_length: int = 1,
        max_intervals: Optional[int] = None,
    ) -> None:
        if min_length < 1:
            raise ConfigurationError("min_length must be at least 1")
        self.min_score = min_score
        self.min_length = min_length
        self.max_intervals = max_intervals

    def detect(self, frequencies: Sequence[float]) -> List[ScoredSegment]:
        """Extract the non-overlapping bursty intervals of a sequence.

        Args:
            frequencies: The term's per-timestamp frequency counts.

        Returns:
            Maximal bursty intervals with their ``B_T`` scores, in
            left-to-right order.  Empty when the sequence is empty, has
            zero mass, or no interval passes the thresholds.
        """
        if len(frequencies) == 0:
            return []
        transformed = discrepancy_transform(frequencies)
        segments = maximal_segments(transformed)
        kept = [
            segment
            for segment in segments
            if segment.score > self.min_score
            and segment.interval.length >= self.min_length
        ]
        if self.max_intervals is not None and len(kept) > self.max_intervals:
            kept = sorted(kept, key=lambda s: s.score, reverse=True)
            kept = sorted(kept[: self.max_intervals], key=lambda s: s.start)
        return kept


def extract_bursty_intervals(
    frequencies: Sequence[float],
    min_score: float = 0.0,
) -> List[ScoredSegment]:
    """Convenience wrapper: one-shot burst extraction with defaults."""
    return LappasBurstDetector(min_score=min_score).detect(frequencies)
