"""Expected-frequency models ``E_x[i][t]`` for the discrepancy burstiness.

Section 4 defines the per-snapshot burstiness of a term as

    B(t, D_x[i]) = D_x[i][t] − E_x[i][t]        (Eq. 7)

and leaves the choice of baseline ``E`` open: "E can be taken to be
equal to the average observed frequency of t in D_x, taken over all the
snapshots collected before timestamp i.  Alternatively, one can focus
only on the most recent measurements.  Finally, data from previous
timeframes can also serve as a baseline".  This module implements all
three families plus an exponentially-weighted variant, behind a common
online protocol:

    ``expected(i)``  — the expectation *before* observing timestamp ``i``;
    ``observe(i, value)`` — feed the observation so later expectations
    can incorporate it.

All models are causal: ``expected(i)`` never uses the observation at
``i`` or later, so burstiness is well-defined in the streaming setting.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Protocol, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "ExpectedFrequencyModel",
    "RunningMeanBaseline",
    "MovingAverageBaseline",
    "EWMABaseline",
    "SeasonalBaseline",
    "burstiness_series",
]


class ExpectedFrequencyModel(Protocol):
    """Protocol all expectation models implement."""

    def expected(self, timestamp: int) -> float:
        """Expected frequency at ``timestamp``, before observing it."""
        ...

    def observe(self, timestamp: int, value: float) -> None:
        """Incorporate the observation made at ``timestamp``."""
        ...


class RunningMeanBaseline:
    """Mean of *all* snapshots observed so far (the paper's default).

    Args:
        prior: Expectation returned before any observation arrives.
            Zero (the default) means the first observation of a term is
            entirely "unexpected" — its burstiness equals its frequency.
    """

    def __init__(self, prior: float = 0.0) -> None:
        self._prior = prior
        self._count = 0
        self._total = 0.0

    def expected(self, timestamp: int) -> float:
        if self._count == 0:
            return self._prior
        return self._total / self._count

    def observe(self, timestamp: int, value: float) -> None:
        self._count += 1
        self._total += value

    def prime_zeros(self, count: int) -> None:
        """Account for ``count`` earlier snapshots in which the term was absent.

        Lazily-created models (a term's first appearance in a stream)
        must still average over the leading zero observations; this is
        the O(1) shortcut for doing so.
        """
        self._count += count


class MovingAverageBaseline:
    """Mean of the ``window`` most recent snapshots.

    The paper's "focus only on the most recent measurements" option.

    Args:
        window: Number of trailing snapshots to average over.
        prior: Expectation before any observation.
    """

    def __init__(self, window: int = 8, prior: float = 0.0) -> None:
        if window < 1:
            raise ConfigurationError("window must be at least 1")
        self._window = window
        self._prior = prior
        self._values: Deque[float] = deque(maxlen=window)

    def expected(self, timestamp: int) -> float:
        if not self._values:
            return self._prior
        return sum(self._values) / len(self._values)

    def observe(self, timestamp: int, value: float) -> None:
        self._values.append(value)


class EWMABaseline:
    """Exponentially-weighted moving average.

    A smooth interpolation between the running-mean and moving-average
    options; included for the baseline ablation.

    Args:
        alpha: Smoothing factor in ``(0, 1]``; larger values react
            faster to recent observations.
        prior: Expectation before any observation.
    """

    def __init__(self, alpha: float = 0.3, prior: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must lie in (0, 1]")
        self._alpha = alpha
        self._prior = prior
        self._mean: Optional[float] = None

    def expected(self, timestamp: int) -> float:
        if self._mean is None:
            return self._prior
        return self._mean

    def observe(self, timestamp: int, value: float) -> None:
        if self._mean is None:
            self._mean = value
        else:
            self._mean = self._alpha * value + (1.0 - self._alpha) * self._mean


class SeasonalBaseline:
    """Historical same-phase baseline ("the Dec-25 of previous years").

    Expectation at timestamp ``i`` is the mean of observations made at
    timestamps congruent to ``i`` modulo ``period`` in earlier cycles,
    falling back to ``fallback`` (another model or a constant prior)
    when no history exists for that phase yet.

    Args:
        period: Season length in timestamps (e.g. 365 for daily data
            with a yearly season).
        fallback: Model consulted when a phase has no history; when
            ``None`` a zero prior is used.
    """

    def __init__(
        self,
        period: int,
        fallback: Optional[ExpectedFrequencyModel] = None,
    ) -> None:
        if period < 1:
            raise ConfigurationError("period must be at least 1")
        self._period = period
        self._fallback = fallback
        self._sums: Dict[int, float] = {}
        self._counts: Dict[int, int] = {}

    def expected(self, timestamp: int) -> float:
        phase = timestamp % self._period
        count = self._counts.get(phase, 0)
        if count == 0:
            if self._fallback is not None:
                return self._fallback.expected(timestamp)
            return 0.0
        return self._sums[phase] / count

    def observe(self, timestamp: int, value: float) -> None:
        phase = timestamp % self._period
        self._sums[phase] = self._sums.get(phase, 0.0) + value
        self._counts[phase] = self._counts.get(phase, 0) + 1
        if self._fallback is not None:
            self._fallback.observe(timestamp, value)


def burstiness_series(
    frequencies: Sequence[float],
    model: Optional[ExpectedFrequencyModel] = None,
) -> list:
    """Compute the per-timestamp burstiness ``B(t, D_x[i])`` of a sequence.

    Convenience helper: walks the sequence once, emitting
    ``observed − expected`` (Eq. 7) at each step and feeding the model.
    With the default model (``model=None``) the whole series is one
    vectorized prefix-sum pass over the columnar kernel instead —
    byte-identical, since the running mean is a cumulative total
    divided by the timestamp.  A caller-supplied model always takes the
    explicit walk: the model must observe every value as a side effect.

    Args:
        frequencies: The observed per-timestamp frequencies.
        model: The expectation model; a fresh
            :class:`RunningMeanBaseline` when omitted.

    Returns:
        List of burstiness values, same length as ``frequencies``.
    """
    if model is None:
        if len(frequencies) == 0:
            return []
        import numpy as np

        from repro.columnar.kernels import running_mean_burstiness

        counts = np.asarray([frequencies], dtype=float)
        burstiness, _ = running_mean_burstiness(counts, 0, 0)
        return burstiness[0].tolist()
    series = []
    for timestamp, value in enumerate(frequencies):
        series.append(value - model.expected(timestamp))
        model.observe(timestamp, value)
    return series
