"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidIntervalError(ReproError, ValueError):
    """Raised when an interval is constructed with ``end < start``."""


class OverlapError(ReproError, ValueError):
    """Raised when overlapping intervals are added to a non-overlapping set."""


class EmptyInputError(ReproError, ValueError):
    """Raised when an algorithm receives an empty input it cannot handle."""


class InvalidGeometryError(ReproError, ValueError):
    """Raised for degenerate geometric inputs (e.g. inverted rectangles)."""


class StreamError(ReproError, ValueError):
    """Raised for inconsistent document-stream operations."""


class UnknownTermError(ReproError, KeyError):
    """Raised when a term is looked up that the collection never observed."""


class ConfigurationError(ReproError, ValueError):
    """Raised when an algorithm configuration is internally inconsistent."""


class SearchError(ReproError, ValueError):
    """Raised for invalid search-engine requests (e.g. empty query)."""


class StoreError(ReproError, ValueError):
    """Raised for durable-store failures: missing or corrupted manifests,
    checksum mismatches, incompatible formats, unsafe save targets."""


class StoreCorruptionError(StoreError):
    """Raised when on-disk bytes contradict the store's manifest.

    Covers missing manifests/segment files, unparsable manifests, CRC or
    size mismatches, and payloads that fail to decode.  The message
    always names the offending file so an operator can go straight to
    ``repro fsck`` / ``repro repair`` without a debugger.
    """


class StoreIOError(StoreError):
    """Raised for transient I/O failures touching a store (EIO, ENOSPC).

    Distinct from :class:`StoreCorruptionError`: the bytes on disk may
    be fine, the *access* failed.  Serving layers may retry these once
    before quarantining (degraded mode); corruption is never retried.
    """


class FeedError(ReproError, ValueError):
    """Raised for malformed ingest feed records (bad JSONL line)."""


class AnalysisError(ReproError, ValueError):
    """Raised for unusable static-analysis inputs (``repro check``).

    Covers analysis paths that do not exist or cannot be walked: a CI
    job pointing the analyzer at a misspelled directory must fail with
    the offending path (exit 2), not silently check zero files.
    """


class GenerationError(ReproError, ValueError):
    """Raised when a data generator is given unsatisfiable parameters."""


class InternalInvariantError(ReproError, RuntimeError):
    """Raised when an internal algorithm invariant is violated.

    Replaces bare ``assert`` statements in library code: asserts vanish
    under ``python -O``, so an invariant they guard would fail later
    with an unrelated error (or silently corrupt output) instead of
    failing fast at the violation point.  Seeing this exception always
    indicates a bug in :mod:`repro` itself, not in caller input.
    """
