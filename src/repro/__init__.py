"""repro — reproduction of "On the Spatiotemporal Burstiness of Terms".

Lappas, Vieira, Gunopulos, Tsotras — PVLDB 5(9), 2012 (arXiv:1205.6695).

The package mines *spatiotemporal burstiness patterns* from geostamped
document streams and uses them for bursty-document retrieval:

* :class:`repro.STComb` — combinatorial patterns: per-stream temporal
  bursts combined via maximum-weight cliques on interval graphs
  (Section 3 of the paper);
* :class:`repro.STLocal` — regional patterns: streaming maximal
  spatiotemporal windows over discrepancy-bursty map rectangles
  (Section 4);
* :class:`repro.BurstySearchEngine` — pattern-aware document search
  with Fagin's Threshold Algorithm (Section 5);
* :mod:`repro.datagen` — the Topix-style corpus and the distGen /
  randGen artificial-data generators of the evaluation (Section 6);
* :mod:`repro.eval` — one runner per table/figure of the paper.

Quickstart::

    from repro import SpatiotemporalCollection, Document, Point, STComb

    collection = SpatiotemporalCollection(timeline=30)
    collection.add_stream("amsterdam", Point(4.9, 52.4))
    collection.add_document(
        Document.from_text(0, "amsterdam", 12, "flood warning flood")
    )
    pattern = STComb().top_pattern(collection, "flood")
"""

from repro._version import __version__
from repro.columnar import ColumnarCollection, PostingArray
from repro.core import (
    BaseConfig,
    BaseDetector,
    CombinatorialPattern,
    RegionalPattern,
    STComb,
    STCombConfig,
    STLocal,
    STLocalConfig,
    SpatiotemporalWindow,
    r_bursty,
)
from repro.errors import ReproError
from repro.intervals import Interval
from repro.live import LiveCollection, LiveIndex, LiveSearchEngine
from repro.pipeline import BatchMiner, IncrementalFeeder
from repro.search import BurstySearchEngine, SearchResult, TemporalSearchEngine
from repro.spatial import Point, Rectangle
from repro.store import (
    load_patterns,
    load_search_engine,
    save_patterns,
    save_search_index,
    verify_store,
)
from repro.streams import (
    Document,
    DocumentStream,
    FrequencyTensor,
    SpatiotemporalCollection,
)
from repro.temporal import (
    KleinbergBurstDetector,
    LappasBurstDetector,
    OnlineMaxSegments,
    maximal_segments,
)

__all__ = [
    "BaseConfig",
    "BaseDetector",
    "BatchMiner",
    "BurstySearchEngine",
    "ColumnarCollection",
    "CombinatorialPattern",
    "Document",
    "DocumentStream",
    "FrequencyTensor",
    "IncrementalFeeder",
    "Interval",
    "KleinbergBurstDetector",
    "LappasBurstDetector",
    "LiveCollection",
    "LiveIndex",
    "LiveSearchEngine",
    "OnlineMaxSegments",
    "Point",
    "PostingArray",
    "Rectangle",
    "RegionalPattern",
    "ReproError",
    "STComb",
    "STCombConfig",
    "STLocal",
    "STLocalConfig",
    "SearchResult",
    "SpatiotemporalCollection",
    "SpatiotemporalWindow",
    "TemporalSearchEngine",
    "__version__",
    "load_patterns",
    "load_search_engine",
    "maximal_segments",
    "r_bursty",
    "save_patterns",
    "save_search_index",
    "verify_store",
]
