"""Closed integer intervals on a discrete timeline.

The paper operates on discrete timestamps (days or weeks); every temporal
burst is a *closed* interval ``[start, end]`` of timestamp indices.  This
module provides the :class:`Interval` value type that the rest of the
library builds on, together with the intersection algebra used by
Lemma 1 of the paper (a family of intervals has a common point iff every
pair intersects — the Helly property in one dimension).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Optional

from repro.errors import EmptyInputError, InvalidIntervalError

__all__ = ["Interval", "common_segment", "pairwise_intersecting"]


@dataclasses.dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` of integer timestamps.

    Ordering is lexicographic on ``(start, end)``, which is the order used
    by the sweep algorithms in :mod:`repro.intervals.max_clique`.

    Attributes:
        start: First timestamp covered by the interval (inclusive).
        end: Last timestamp covered by the interval (inclusive).
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise InvalidIntervalError(
                f"interval end ({self.end}) precedes start ({self.start})"
            )

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of timestamps covered (``end - start + 1``)."""
        return self.end - self.start + 1

    def __len__(self) -> int:
        return self.length

    def __contains__(self, timestamp: int) -> bool:
        return self.start <= timestamp <= self.end

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def intersects(self, other: "Interval") -> bool:
        """Return ``True`` if the two closed intervals share a timestamp."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlap of two intervals, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def union_span(self, other: "Interval") -> "Interval":
        """Return the smallest interval covering both inputs.

        Unlike a true set union this is always a single interval, even when
        the inputs are disjoint; the baseline merger in
        :mod:`repro.core.base` relies on this behaviour.
        """
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def contains_interval(self, other: "Interval") -> bool:
        """Return ``True`` if ``other`` lies entirely within ``self``."""
        return self.start <= other.start and other.end <= self.end

    def jaccard(self, other: "Interval") -> float:
        """Jaccard similarity of the two intervals as timestamp sets.

        Used by the ``Base`` baseline of Section 6.2.2 to decide whether
        intervals from different streams describe the same burst.
        """
        overlap = self.intersection(other)
        if overlap is None:
            return 0.0
        union = self.length + other.length - overlap.length
        return overlap.length / union

    def shift(self, offset: int) -> "Interval":
        """Return a copy translated by ``offset`` timestamps."""
        return Interval(self.start + offset, self.end + offset)

    def expand(self, amount: int) -> "Interval":
        """Return a copy grown by ``amount`` on each side (clipped at 0 length).

        Raises:
            InvalidIntervalError: if shrinking (negative ``amount``) would
                invert the interval.
        """
        return Interval(self.start - amount, self.end + amount)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}:{self.end}]"


def common_segment(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Return the common segment shared by *all* intervals, or ``None``.

    This realises Eq. 2 of the paper: a subset of intervals is *eligible*
    iff their intersection is non-empty; the common segment then defines
    the timeframe of the combinatorial pattern.

    Raises:
        EmptyInputError: if ``intervals`` is empty (the intersection of an
            empty family is undefined here).
    """
    items = list(intervals)
    if not items:
        raise EmptyInputError("common_segment() requires at least one interval")
    start = max(interval.start for interval in items)
    end = min(interval.end for interval in items)
    if end < start:
        return None
    return Interval(start, end)


def pairwise_intersecting(intervals: Iterable[Interval]) -> bool:
    """Check whether every pair of intervals intersects.

    By Lemma 1 (the 1-D Helly property), for intervals this is equivalent
    to all of them sharing a common point, so the check runs in linear
    time via :func:`common_segment` rather than in quadratic time.
    """
    items = list(intervals)
    if not items:
        return True
    return common_segment(items) is not None
