"""Interval graphs over per-stream bursty intervals.

Section 3 reduces the Highest-Scoring-Subset (HSS) problem to
Maximum-Weight Clique on the *intersection graph* of the bursty
intervals: one vertex per interval, an edge between every pair of
intersecting intervals, and vertex weight equal to the interval's
temporal burstiness ``B_T``.  This module builds that graph explicitly
(useful for inspection, testing and the maximal-clique enumerator) —
the production MWCI solver in :mod:`repro.intervals.max_clique` never
materialises it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.intervals.interval import Interval

__all__ = ["WeightedInterval", "IntervalGraph", "build_interval_graph"]


@dataclasses.dataclass(frozen=True)
class WeightedInterval:
    """A bursty interval tagged with its origin stream and its score.

    Attributes:
        interval: The temporal extent of the burst.
        weight: The burstiness score ``B_T(interval)`` (Eq. 1).
        stream_id: Identifier of the document stream the burst came from.
            ``None`` for synthetic/abstract instances (e.g. unit tests).
    """

    interval: Interval
    weight: float
    stream_id: Optional[Hashable] = None

    @property
    def start(self) -> int:
        return self.interval.start

    @property
    def end(self) -> int:
        return self.interval.end


class IntervalGraph:
    """Explicit intersection graph of a family of weighted intervals.

    The graph is stored both as an adjacency structure (via
    :mod:`networkx`) and as the original interval list, so cliques can be
    mapped back to interval subsets.

    Args:
        intervals: The weighted intervals; vertex ``i`` corresponds to
            ``intervals[i]``.
    """

    def __init__(self, intervals: Sequence[WeightedInterval]) -> None:
        self._intervals: Tuple[WeightedInterval, ...] = tuple(intervals)
        self._graph = nx.Graph()
        for index, witem in enumerate(self._intervals):
            self._graph.add_node(index, weight=witem.weight)
        # Sort-and-sweep edge construction: O(n log n + |E|).
        order = sorted(range(len(self._intervals)), key=lambda i: self._intervals[i].start)
        active: List[int] = []
        for index in order:
            current = self._intervals[index]
            still_active = []
            for other in active:
                if self._intervals[other].end >= current.start:
                    self._graph.add_edge(other, index)
                    still_active.append(other)
            active = still_active
            active.append(index)

    @property
    def intervals(self) -> Tuple[WeightedInterval, ...]:
        return self._intervals

    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (vertices are indices)."""
        return self._graph

    def vertex_count(self) -> int:
        return self._graph.number_of_nodes()

    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def weight(self, vertex: int) -> float:
        """Weight of a vertex (the burstiness of its interval)."""
        return self._intervals[vertex].weight

    def clique_weight(self, vertices: Sequence[int]) -> float:
        """Total weight of a vertex subset."""
        return sum(self._intervals[v].weight for v in vertices)

    def is_clique(self, vertices: Sequence[int]) -> bool:
        """Check that every pair of the given vertices is adjacent."""
        items = list(vertices)
        for i, u in enumerate(items):
            for v in items[i + 1 :]:
                if not self._graph.has_edge(u, v):
                    return False
        return True

    def subset(self, vertices: Sequence[int]) -> List[WeightedInterval]:
        """Map vertex indices back to their weighted intervals."""
        return [self._intervals[v] for v in vertices]

    def degrees(self) -> Dict[int, int]:
        """Vertex degree map — handy for inspecting burst co-occurrence."""
        return dict(self._graph.degree())


def build_interval_graph(intervals: Sequence[WeightedInterval]) -> IntervalGraph:
    """Construct the interval graph for a family of weighted intervals.

    This is the "From CB to MWCI" direction of the Proposition 1 proof
    (Appendix A.1): vertices for intervals, edges for intersections,
    vertex weights from ``B_T``.
    """
    return IntervalGraph(intervals)
