"""Interval algebra substrate.

Closed integer intervals, disjoint interval sets, interval graphs, and
the maximum-weight-clique machinery that powers STComb (Section 3 of the
paper).
"""

from repro.intervals.interval import (
    Interval,
    common_segment,
    pairwise_intersecting,
)
from repro.intervals.interval_set import (
    IntervalSet,
    fill_gaps,
    intervals_from_mask,
    merge_touching,
)
from repro.intervals.graph import (
    IntervalGraph,
    WeightedInterval,
    build_interval_graph,
)
from repro.intervals.max_clique import (
    CliqueResult,
    iterated_max_cliques,
    max_weight_clique,
)
from repro.intervals.enumerate_cliques import enumerate_maximal_cliques

__all__ = [
    "Interval",
    "IntervalSet",
    "IntervalGraph",
    "WeightedInterval",
    "CliqueResult",
    "build_interval_graph",
    "common_segment",
    "enumerate_maximal_cliques",
    "fill_gaps",
    "intervals_from_mask",
    "iterated_max_cliques",
    "max_weight_clique",
    "merge_touching",
    "pairwise_intersecting",
]
