"""Collections of non-overlapping intervals.

Per-stream burst detectors (:mod:`repro.temporal.lappas`,
:mod:`repro.temporal.kleinberg`) report *strictly non-overlapping* bursty
intervals — a property STComb depends on, because it means overlap can
only exist between intervals of *different* streams.  This module
provides the container that enforces the invariant, plus the merge and
gap-filling helpers used by the ``Base`` baseline.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import OverlapError
from repro.intervals.interval import Interval

__all__ = ["IntervalSet", "merge_touching", "fill_gaps", "intervals_from_mask"]


class IntervalSet:
    """An ordered set of pairwise-disjoint closed intervals.

    The set keeps its members sorted by start; insertion is
    ``O(log n + n)`` (bisect + list insert), membership queries are
    ``O(log n)``.

    Args:
        intervals: Optional initial intervals; they must be pairwise
            disjoint or :class:`~repro.errors.OverlapError` is raised.
    """

    def __init__(self, intervals: Optional[Iterable[Interval]] = None) -> None:
        self._items: List[Interval] = []
        if intervals is not None:
            for interval in sorted(intervals):
                self.add(interval)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, interval: Interval) -> None:
        """Insert ``interval``, preserving sortedness and disjointness.

        Raises:
            OverlapError: if the new interval intersects an existing one.
        """
        index = bisect.bisect_left(self._items, interval)
        if index > 0 and self._items[index - 1].intersects(interval):
            raise OverlapError(
                f"{interval} overlaps existing {self._items[index - 1]}"
            )
        if index < len(self._items) and self._items[index].intersects(interval):
            raise OverlapError(f"{interval} overlaps existing {self._items[index]}")
        self._items.insert(index, interval)

    def discard(self, interval: Interval) -> bool:
        """Remove ``interval`` if present; return whether it was removed."""
        index = bisect.bisect_left(self._items, interval)
        if index < len(self._items) and self._items[index] == interval:
            del self._items[index]
            return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def covering(self, timestamp: int) -> Optional[Interval]:
        """Return the member interval containing ``timestamp``, if any."""
        index = bisect.bisect_right(self._items, Interval(timestamp, timestamp))
        # The candidate can only be the interval starting at or before the
        # probe position.
        for candidate_index in (index - 1, index):
            if 0 <= candidate_index < len(self._items):
                candidate = self._items[candidate_index]
                if timestamp in candidate:
                    return candidate
        return None

    def overlapping(self, interval: Interval) -> List[Interval]:
        """Return all member intervals intersecting ``interval``."""
        return [item for item in self._items if item.intersects(interval)]

    def total_length(self) -> int:
        """Total number of timestamps covered by the set."""
        return sum(item.length for item in self._items)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, interval: Interval) -> bool:
        index = bisect.bisect_left(self._items, interval)
        return index < len(self._items) and self._items[index] == interval

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(str(item) for item in self._items)
        return f"IntervalSet({body})"


def merge_touching(intervals: Iterable[Interval]) -> List[Interval]:
    """Coalesce intervals that overlap *or are adjacent* into maximal runs.

    Adjacent means ``a.end + 1 == b.start`` on the discrete timeline.
    The result is sorted and pairwise disjoint.
    """
    ordered = sorted(intervals)
    merged: List[Interval] = []
    for interval in ordered:
        if merged and interval.start <= merged[-1].end + 1:
            merged[-1] = merged[-1].union_span(interval)
        else:
            merged.append(interval)
    return merged


def fill_gaps(intervals: Sequence[Interval], max_gap: int) -> List[Interval]:
    """Merge consecutive intervals separated by gaps shorter than ``max_gap``.

    This is the gap-tolerance step of the ``Base`` baseline (Section
    6.2.2): "replace any contiguous segment of zeros that has length less
    than ℓ ... with an equal segment of ones".  Interior gaps of length
    ``< max_gap`` are absorbed; gaps at the sequence boundaries are, per
    the paper, never filled (they are simply not between two intervals).

    Args:
        intervals: Sorted or unsorted disjoint intervals.
        max_gap: Strict upper bound on the gap lengths to absorb.

    Returns:
        A new sorted list of disjoint intervals.
    """
    ordered = sorted(intervals)
    if not ordered:
        return []
    result = [ordered[0]]
    for interval in ordered[1:]:
        gap = interval.start - result[-1].end - 1
        if 0 <= gap < max_gap:
            result[-1] = result[-1].union_span(interval)
        else:
            result.append(interval)
    return result


def intervals_from_mask(mask: Sequence[bool]) -> List[Interval]:
    """Convert a boolean activity mask into the list of maximal runs of 1s.

    Example:
        ``[0, 1, 1, 0, 1]`` becomes ``[Interval(1, 2), Interval(4, 4)]``.
    """
    runs: List[Interval] = []
    run_start: Optional[int] = None
    for index, active in enumerate(mask):
        if active and run_start is None:
            run_start = index
        elif not active and run_start is not None:
            runs.append(Interval(run_start, index - 1))
            run_start = None
    if run_start is not None:
        runs.append(Interval(run_start, len(mask) - 1))
    return runs
