"""Enumeration of all maximal cliques of an interval graph.

Section 3 notes that, as an alternative to iterated clique removal, one
can enumerate *all* maximal cliques of the interval graph [32].  For an
interval graph the maximal cliques are exactly the sets of intervals
active at the "clique points" of a left-to-right sweep, and there are at
most ``n`` of them, so enumeration is ``O(n log n)``.

A maximal clique materialises every time an interval *closes* while the
current active set has not been reported since it last grew — the
classic sweep characterisation of interval-graph maximal cliques.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import InternalInvariantError
from repro.intervals.graph import WeightedInterval
from repro.intervals.max_clique import CliqueResult
from repro.intervals.interval import common_segment

__all__ = ["enumerate_maximal_cliques"]


def enumerate_maximal_cliques(
    intervals: Sequence[WeightedInterval],
) -> List[CliqueResult]:
    """Enumerate every maximal clique of the interval intersection graph.

    Args:
        intervals: The weighted intervals.

    Returns:
        One :class:`~repro.intervals.max_clique.CliqueResult` per maximal
        clique, ordered by the sweep position at which each clique was
        completed.  The list is empty iff ``intervals`` is empty.

    Notes:
        A clique is *maximal* when no further interval can be added while
        keeping pairwise intersection.  During a sweep over sorted
        endpoints, the active set is maximal exactly at the moment an
        interval is about to close after at least one interval has been
        opened since the previous report (otherwise the active set is a
        subset of an already-reported one).
    """
    items = list(intervals)
    if not items:
        return []

    # Events: (coordinate, kind, interval).  kind 0 = open, 1 = close.
    # Opens sort before closes at equal coordinates because closed
    # intervals touching at a point do intersect.
    events: List[Tuple[int, int, WeightedInterval]] = []
    for witem in items:
        events.append((witem.start, 0, witem))
        events.append((witem.end, 1, witem))
    events.sort(key=lambda e: (e[0], e[1]))

    active: List[WeightedInterval] = []
    cliques: List[CliqueResult] = []
    grew_since_report = False
    for _, kind, witem in events:
        if kind == 0:
            active.append(witem)
            grew_since_report = True
        else:
            if grew_since_report and active:
                members = tuple(active)
                segment = common_segment(m.interval for m in members)
                if segment is None:
                    raise InternalInvariantError(
                        "active intervals at a sweep endpoint have no "
                        "common segment; the event ordering is broken"
                    )
                cliques.append(
                    CliqueResult(
                        members=members,
                        weight=sum(m.weight for m in members),
                        segment=segment,
                    )
                )
                grew_since_report = False
            active.remove(witem)
    return cliques
