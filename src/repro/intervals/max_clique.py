"""Maximum-weight clique on interval graphs (MWCI).

The HSS problem of Section 3 is equivalent (Proposition 1) to finding a
maximum-weight clique in the intersection graph of the bursty intervals.
For interval graphs every clique is a set of intervals sharing a common
point, so the optimum can be found with a single endpoint sweep in
``O(n log n)`` — this is the Gupta–Lee–Leung algorithm the paper calls
``maxClique`` [8].

The sweep maintains the running total weight of the intervals covering
the current point; the answer is the point where that total peaks.  Only
intervals with positive weight can improve a clique, but the paper's
burst detectors only emit positive-scoring intervals anyway; the solver
nevertheless handles arbitrary weights by simply including every
interval covering the best point (callers who want to drop non-positive
members can do so — the clique property is preserved under subsetting).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.errors import InternalInvariantError
from repro.intervals.interval import Interval, common_segment
from repro.intervals.graph import WeightedInterval

__all__ = ["CliqueResult", "max_weight_clique", "iterated_max_cliques"]


@dataclasses.dataclass(frozen=True)
class CliqueResult:
    """The outcome of a maximum-weight-clique computation.

    Attributes:
        members: The weighted intervals forming the clique.
        weight: Total weight of the clique (sum of member weights).
        segment: The common segment of all member intervals — the
            timeframe of the resulting combinatorial pattern.
    """

    members: Tuple[WeightedInterval, ...]
    weight: float
    segment: Interval

    def __len__(self) -> int:
        return len(self.members)


def max_weight_clique(
    intervals: Sequence[WeightedInterval],
    positive_only: bool = True,
) -> Optional[CliqueResult]:
    """Find the maximum-weight clique of an interval family by sweeping.

    Args:
        intervals: The weighted intervals (vertices of the implicit
            interval graph).
        positive_only: When ``True`` (the default, matching the paper's
            setting where all burst scores are positive), intervals with
            non-positive weight are ignored: they can never increase a
            clique's weight and excluding them keeps reported patterns
            meaningful.  Set to ``False`` to force every interval
            covering the optimal point into the clique.

    Returns:
        The best clique, or ``None`` when no (positive) interval exists.

    Complexity:
        ``O(n log n)`` for the endpoint sort, ``O(n)`` for the sweep.
    """
    candidates = [
        witem
        for witem in intervals
        if not positive_only or witem.weight > 0.0
    ]
    if not candidates:
        return None

    # Events: +weight at start, -weight just after end.  Starts sort
    # before ends at the same coordinate so that closed intervals
    # touching at a point are counted as overlapping.
    events: List[Tuple[int, int, float]] = []
    for witem in candidates:
        events.append((witem.start, 0, witem.weight))
        events.append((witem.end + 1, 1, -witem.weight))
    events.sort(key=lambda e: (e[0], e[1]))

    best_weight = float("-inf")
    best_point: Optional[int] = None
    running = 0.0
    index = 0
    while index < len(events):
        position = events[index][0]
        # Apply every event at this coordinate before evaluating it: all
        # starts at `position` open before we measure, all ends at
        # `position` (recorded at end+1) close before we measure.
        while index < len(events) and events[index][0] == position:
            running += events[index][2]
            index += 1
        if running > best_weight:
            best_weight = running
            best_point = position

    if best_point is None or best_weight <= 0.0 and positive_only:
        return None

    members = tuple(
        witem for witem in candidates if best_point in witem.interval
    )
    if not members:
        return None
    segment = common_segment(witem.interval for witem in members)
    if segment is None:
        raise InternalInvariantError(
            "max-clique members share best_point yet have no common "
            "segment; the sweep selected an inconsistent member set"
        )
    weight = sum(witem.weight for witem in members)
    return CliqueResult(members=members, weight=weight, segment=segment)


def iterated_max_cliques(
    intervals: Sequence[WeightedInterval],
    max_patterns: Optional[int] = None,
    positive_only: bool = True,
) -> List[CliqueResult]:
    """Extract multiple disjoint cliques by iterated removal.

    This implements the paper's "Getting Multiple Patterns" strategy:
    repeatedly apply ``maxClique`` and remove the matched intervals, so
    the reported patterns never share an interval (which suppresses the
    trivial near-duplicates that overlapping cliques would produce).

    Args:
        intervals: The full interval family.
        max_patterns: Optional cap on the number of cliques returned;
            ``None`` keeps going until no positive clique remains.
        positive_only: Forwarded to :func:`max_weight_clique`.

    Returns:
        Cliques in decreasing discovery order (each is the maximum over
        the intervals remaining at its round; weights are therefore
        non-increasing).
    """
    remaining = list(intervals)
    results: List[CliqueResult] = []
    while remaining:
        if max_patterns is not None and len(results) >= max_patterns:
            break
        best = max_weight_clique(remaining, positive_only=positive_only)
        if best is None:
            break
        results.append(best)
        # Remove one occurrence per clique member; equal-valued intervals
        # from the same stream are interchangeable, so multiset removal
        # by value is correct.
        budget: dict = {}
        for witem in best.members:
            budget[witem] = budget.get(witem, 0) + 1
        kept: List[WeightedInterval] = []
        for witem in remaining:
            if budget.get(witem, 0) > 0:
                budget[witem] -= 1
            else:
                kept.append(witem)
        remaining = kept
    return results
