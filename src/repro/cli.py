"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro.cli table1            # Table 1 on the default corpus
    python -m repro.cli table2 --patterns 60
    python -m repro.cli figure8 --streams 100 200 400
    python -m repro.cli all --background-rate 2.0
    python -m repro.cli mine --workers 4  # batch-mine the whole corpus
    python -m repro.cli ingest --query storm --report-every 8
    python -m repro.cli ingest --file feed.jsonl --verify

Every experiment subcommand prints the same rows/series the paper's
table or figure reports (see EXPERIMENTS.md for the comparison); the
``mine`` subcommand runs the snapshot-major batch pipeline over the
corpus vocabulary and prints a per-term pattern summary; the ``ingest``
subcommand replays a JSONL feed (or a built-in demo feed) through the
live ingestion + serving layer, querying as documents arrive.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.datagen.corpus import CorpusSettings
from repro.eval.experiments import (
    TopixLab,
    exp_figure4,
    exp_figure5,
    exp_figure6,
    exp_figure7,
    exp_figure8,
    exp_figure9,
    exp_table1,
    exp_table2,
    exp_table3,
)

__all__ = ["main"]

_CORPUS_EXPERIMENTS = {
    "table1": exp_table1,
    "figure4": exp_figure4,
    "table3": exp_table3,
    "figure5": exp_figure5,
    "figure6": exp_figure6,
    "figure7": exp_figure7,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'On the Spatiotemporal "
        "Burstiness of Terms' (VLDB 2012).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(
            list(_CORPUS_EXPERIMENTS)
            + ["table2", "figure8", "figure9", "all", "mine", "ingest"]
        ),
        help="which table/figure to regenerate, 'mine' to batch-mine "
        "the corpus with the snapshot-major pipeline, or 'ingest' to "
        "replay a document feed through the live serving layer",
    )
    parser.add_argument(
        "--background-rate",
        type=float,
        default=2.0,
        help="corpus background documents per country per week "
        "(paper-scale: 5.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="corpus / generator seed"
    )
    parser.add_argument(
        "--patterns",
        type=int,
        default=120,
        help="injected patterns for table2 (paper: 1000)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        nargs="+",
        default=None,
        help="stream counts for the figure8 sweep",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for term-sharded batch mining (mine)",
    )
    parser.add_argument(
        "--miner",
        choices=("stlocal", "stcomb", "both"),
        default="both",
        help="which pattern family to batch-mine (mine)",
    )
    parser.add_argument(
        "--top-terms",
        type=int,
        default=None,
        help="restrict mining to the N heaviest terms (mine)",
    )
    parser.add_argument(
        "--file",
        default=None,
        help="JSONL feed to replay (ingest); omit for a built-in demo "
        "feed.  Lines: {\"type\":\"stream\",\"id\":...,\"x\":...,\"y\":...}, "
        "{\"doc_id\":...,\"stream\":...,\"timestamp\":...,\"text\":...}, "
        "{\"type\":\"advance\",\"timestamp\":...}",
    )
    parser.add_argument(
        "--timeline",
        type=int,
        default=64,
        help="timeline length for the live collection (ingest)",
    )
    parser.add_argument(
        "--query",
        action="append",
        default=None,
        help="query to serve during the replay; repeatable (ingest)",
    )
    parser.add_argument(
        "--k", type=int, default=5, help="results per query (ingest)"
    )
    parser.add_argument(
        "--report-every",
        type=int,
        default=10,
        help="serve the queries every N ingested snapshots (ingest)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="after the replay, cross-check live results against a cold "
        "batch rebuild (ingest)",
    )
    return parser


def _corpus_lab(args: argparse.Namespace) -> TopixLab:
    print(
        f"building Topix-style corpus (181 countries, 48 weeks, "
        f"background rate {args.background_rate}, seed {args.seed})...",
        file=sys.stderr,
    )
    settings = CorpusSettings(
        background_rate=args.background_rate, seed=args.seed
    )
    started = time.perf_counter()
    lab = TopixLab(settings)
    print(
        f"corpus ready: {lab.collection.document_count} documents "
        f"({time.perf_counter() - started:.1f}s)",
        file=sys.stderr,
    )
    return lab


def _run_mine(args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Batch-mine the corpus vocabulary with the snapshot-major pipeline."""
    from repro.pipeline import BatchMiner

    if lab is None:
        lab = _corpus_lab(args)
    tensor = lab.tensor
    if args.top_terms and args.top_terms > 0:
        terms = [term for term, _ in tensor.top_terms(args.top_terms)]
    else:
        terms = sorted(tensor.terms)
    print(
        f"mining {len(terms)} terms "
        f"({args.workers} worker{'s' if args.workers != 1 else ''})...",
        file=sys.stderr,
    )
    jobs = []
    if args.miner in ("stlocal", "both"):
        jobs.append(("STLocal", True))
    if args.miner in ("stcomb", "both"):
        jobs.append(("STComb", False))
    miner = BatchMiner(
        stlocal=lab.stlocal, stcomb=lab.stcomb, workers=args.workers
    )
    for label, regional in jobs:
        started = time.perf_counter()
        if regional:
            mined = miner.mine_regional(
                tensor, terms, locations=lab.locations
            )
        else:
            mined = miner.mine_combinatorial(tensor, terms)
        elapsed = time.perf_counter() - started
        n_patterns = sum(len(patterns) for patterns in mined.values())
        print(
            f"{label}: {n_patterns} patterns over {len(mined)} terms "
            f"in {elapsed:.2f}s"
        )
        best = sorted(
            (
                (patterns[0].score, term)
                for term, patterns in mined.items()
            ),
            reverse=True,
        )[:10]
        for score, term in best:
            top = mined[term][0]
            print(
                f"  {term:<24} score={score:10.3f} "
                f"weeks=[{top.timeframe.start},{top.timeframe.end}] "
                f"streams={len(top.streams)}"
            )
    return lab


def _demo_feed(timeline: int):
    """Deterministic built-in feed: background chatter + one outbreak.

    Yields the same record dicts a JSONL feed file would contain, so
    the replay path is identical with and without ``--file``.
    """
    import random

    rng = random.Random(11)
    cities = [(f"city{c}{r}", c * 10.0, r * 10.0) for c in range(4) for r in range(4)]
    for cid, x, y in cities:
        yield {"type": "stream", "id": cid, "x": x, "y": y}
    vocabulary = ["storm", "market", "football", "election"]
    doc_id = 0
    for day in range(min(timeline, 40)):
        for cid, _, _ in cities:
            if rng.random() < 0.4:
                text = " ".join(
                    rng.choice(vocabulary) for _ in range(rng.randint(1, 3))
                )
                yield {
                    "doc_id": doc_id,
                    "stream": cid,
                    "timestamp": day,
                    "text": text,
                }
                doc_id += 1
        if 15 <= day <= 22:  # storm outbreak in the north-west block
            for cid in ("city00", "city01", "city10", "city11"):
                yield {
                    "doc_id": doc_id,
                    "stream": cid,
                    "timestamp": day,
                    "text": "storm storm flooding",
                }
                doc_id += 1
        yield {"type": "advance", "timestamp": day}


def _run_ingest(args: argparse.Namespace) -> None:
    """Replay a feed through the live layer, serving queries as it goes."""
    import json

    from repro.live import LiveCollection, LiveSearchEngine
    from repro.spatial import Point
    from repro.streams import Document

    if args.file:
        with open(args.file) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
    else:
        print("no --file given; replaying the built-in demo feed", file=sys.stderr)
        records = list(_demo_feed(args.timeline))

    live = LiveCollection(args.timeline)
    engine = LiveSearchEngine(live)
    queries = args.query or ["storm"]

    def serve(label: str) -> None:
        for query in queries:
            results = engine.search(query, k=args.k)
            top = (
                f"doc {results[0].document.doc_id!r} "
                f"(stream {results[0].document.stream_id!r}, "
                f"t={results[0].document.timestamp}, "
                f"score {results[0].score:.3f})"
                if results
                else "no bursty match"
            )
            print(f"{label} query {query!r}: {len(results)} result(s); top: {top}")

    snapshots_seen = 0
    last_timestamp: Optional[int] = None
    for record in records:
        kind = record.get("type", "doc")
        if kind == "stream":
            live.add_stream(record["id"], Point(record["x"], record["y"]))
            continue
        if kind == "advance":
            live.advance_to(record["timestamp"])
            continue
        document = Document.from_text(
            record["doc_id"],
            record["stream"],
            record["timestamp"],
            record["text"],
        )
        if last_timestamp is not None and document.timestamp != last_timestamp:
            snapshots_seen += 1
            if args.report_every > 0 and snapshots_seen % args.report_every == 0:
                serve(f"[t={last_timestamp}]")
        last_timestamp = document.timestamp
        live.ingest(document)

    print(
        f"replay complete: {live.document_count} documents over "
        f"{len(live)} streams, watermark t={live.watermark}, "
        f"epoch {live.epoch}"
    )
    serve("[final]")
    stats = engine.stats
    print(
        f"serving stats: {stats.cache_hits} cache hit(s), "
        f"{stats.cache_misses} miss(es), {stats.rebuilds} rebuild(s), "
        f"{stats.delta_updates} delta update(s), "
        f"{engine.index.compactions} compaction(s)"
    )

    if args.verify:
        from repro.pipeline import BatchMiner
        from repro.search import BurstySearchEngine
        from repro.streams import SpatiotemporalCollection

        cold = SpatiotemporalCollection(args.timeline)
        for sid, point in live.locations().items():
            cold.add_stream(sid, point)
        for document in live.collection.documents():
            cold.add_document(document)
        mined = BatchMiner().mine_regional(cold)
        batch_engine = BurstySearchEngine(cold, mined)
        for query in queries:
            lively = [
                (r.document.doc_id, r.score) for r in engine.search(query, k=args.k)
            ]
            coldly = [
                (r.document.doc_id, r.score)
                for r in batch_engine.search(query, k=args.k)
            ]
            verdict = "OK" if lively == coldly else "MISMATCH"
            print(f"verify {query!r}: live == cold batch rebuild ... {verdict}")
            if lively != coldly:
                raise SystemExit(1)


def _run_one(name: str, args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Run one experiment, creating/reusing the corpus lab as needed."""
    if name == "ingest":
        _run_ingest(args)
        return lab
    if name == "mine":
        return _run_mine(args, lab)
    if name in _CORPUS_EXPERIMENTS:
        if lab is None:
            lab = _corpus_lab(args)
        result = _CORPUS_EXPERIMENTS[name](lab)
    elif name == "table2":
        result = exp_table2(n_patterns=args.patterns, seed=args.seed)
    elif name == "figure8":
        if args.streams:
            result = exp_figure8(stream_counts=args.streams, seed=args.seed)
        else:
            result = exp_figure8(seed=args.seed)
    else:  # figure9
        result = exp_figure9()
    print(result.render())
    print()
    return lab


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    names = (
        ["table1", "figure4", "table2", "table3", "figure5", "figure6",
         "figure7", "figure8", "figure9"]
        if args.experiment == "all"
        else [args.experiment]
    )
    lab: Optional[TopixLab] = None
    for name in names:
        started = time.perf_counter()
        lab = _run_one(name, args, lab)
        print(
            f"[{name} finished in {time.perf_counter() - started:.1f}s]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
