"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro.cli table1            # Table 1 on the default corpus
    python -m repro.cli table2 --patterns 60
    python -m repro.cli figure8 --streams 100 200 400
    python -m repro.cli all --background-rate 2.0

Every subcommand prints the same rows/series the paper's table or
figure reports (see EXPERIMENTS.md for the comparison).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.datagen.corpus import CorpusSettings
from repro.eval.experiments import (
    TopixLab,
    exp_figure4,
    exp_figure5,
    exp_figure6,
    exp_figure7,
    exp_figure8,
    exp_figure9,
    exp_table1,
    exp_table2,
    exp_table3,
)

__all__ = ["main"]

_CORPUS_EXPERIMENTS = {
    "table1": exp_table1,
    "figure4": exp_figure4,
    "table3": exp_table3,
    "figure5": exp_figure5,
    "figure6": exp_figure6,
    "figure7": exp_figure7,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'On the Spatiotemporal "
        "Burstiness of Terms' (VLDB 2012).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(
            list(_CORPUS_EXPERIMENTS) + ["table2", "figure8", "figure9", "all"]
        ),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--background-rate",
        type=float,
        default=2.0,
        help="corpus background documents per country per week "
        "(paper-scale: 5.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="corpus / generator seed"
    )
    parser.add_argument(
        "--patterns",
        type=int,
        default=120,
        help="injected patterns for table2 (paper: 1000)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        nargs="+",
        default=None,
        help="stream counts for the figure8 sweep",
    )
    return parser


def _corpus_lab(args: argparse.Namespace) -> TopixLab:
    print(
        f"building Topix-style corpus (181 countries, 48 weeks, "
        f"background rate {args.background_rate}, seed {args.seed})...",
        file=sys.stderr,
    )
    settings = CorpusSettings(
        background_rate=args.background_rate, seed=args.seed
    )
    started = time.perf_counter()
    lab = TopixLab(settings)
    print(
        f"corpus ready: {lab.collection.document_count} documents "
        f"({time.perf_counter() - started:.1f}s)",
        file=sys.stderr,
    )
    return lab


def _run_one(name: str, args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Run one experiment, creating/reusing the corpus lab as needed."""
    if name in _CORPUS_EXPERIMENTS:
        if lab is None:
            lab = _corpus_lab(args)
        result = _CORPUS_EXPERIMENTS[name](lab)
    elif name == "table2":
        result = exp_table2(n_patterns=args.patterns, seed=args.seed)
    elif name == "figure8":
        if args.streams:
            result = exp_figure8(stream_counts=args.streams, seed=args.seed)
        else:
            result = exp_figure8(seed=args.seed)
    else:  # figure9
        result = exp_figure9()
    print(result.render())
    print()
    return lab


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    names = (
        ["table1", "figure4", "table2", "table3", "figure5", "figure6",
         "figure7", "figure8", "figure9"]
        if args.experiment == "all"
        else [args.experiment]
    )
    lab: Optional[TopixLab] = None
    for name in names:
        started = time.perf_counter()
        lab = _run_one(name, args, lab)
        print(
            f"[{name} finished in {time.perf_counter() - started:.1f}s]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
