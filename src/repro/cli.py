"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro.cli table1            # Table 1 on the default corpus
    python -m repro.cli table2 --patterns 60
    python -m repro.cli figure8 --streams 100 200 400
    python -m repro.cli all --background-rate 2.0
    python -m repro.cli mine --workers 4  # batch-mine the whole corpus
    python -m repro.cli mine --workers 0  # explicit serial fast path
    python -m repro.cli search --query "financial crisis" --compare
    python -m repro.cli search --query jackson --strategy blockmax
    python -m repro.cli search --query storm --explain --log-queries q.jsonl
    python -m repro.cli planner fit --log q.jsonl --out planner.json
    python -m repro.cli planner stats --model planner.json
    python -m repro.cli search --query storm --planner-model planner.json
    python -m repro.cli ingest --query storm --report-every 8
    python -m repro.cli ingest --file feed.jsonl --verify --strategy scan
    python -m repro.cli bench             # columnar vs legacy smoke run
    python -m repro.cli check             # static invariant analysis
    python -m repro.cli check src --format json --output report.json
    python -m repro.cli save --out idx --top-terms 24
    python -m repro.cli load --store idx --verify
    python -m repro.cli search --from-store idx --query "financial crisis"
    python -m repro.cli ingest --checkpoint-to ckpt
    python -m repro.cli ingest --from-store ckpt --query storm

Every experiment subcommand prints the same rows/series the paper's
table or figure reports (see EXPERIMENTS.md for the comparison); the
``mine`` subcommand runs the columnar batch pipeline over the corpus
vocabulary and prints a per-term pattern summary; the ``search``
subcommand mines the queried terms and serves top-k retrieval through
a selectable execution strategy (``auto``/``ta``/``blockmax``/``scan``,
see :mod:`repro.search.topk`); the ``ingest`` subcommand replays a
JSONL feed (or a built-in demo feed) through the live ingestion +
serving layer, querying as documents arrive; the ``save`` subcommand
mines the corpus and persists a complete serving snapshot as a durable
segment store, ``load`` opens one (``--verify`` byte-compares it
against a cold rebuild), and ``--from-store`` on ``search``/``ingest``
cold-starts serving straight from segments, skipping the rebuild
entirely; the ``bench`` subcommand
mines one synthetic corpus through the legacy and columnar paths,
compares the top-k strategies on a synthetic posting workload, and
reports the wall-clock ratios; the ``check`` subcommand runs the
:mod:`repro.analysis` static invariant analyzer (determinism,
mmap-safety, dtype discipline, exception hygiene, picklability, cache
invalidation) over the given paths and exits nonzero on any
unsuppressed finding — the same gate the CI ``lint`` job enforces.

The subcommands share their flag groups through ``argparse`` parent
parsers (one for corpus construction, one for mining, one for the
synthetic-workload knobs), so a flag is declared exactly once.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

from repro.datagen.corpus import CorpusSettings
from repro.eval.experiments import (
    TopixLab,
    exp_figure4,
    exp_figure5,
    exp_figure6,
    exp_figure7,
    exp_figure8,
    exp_figure9,
    exp_table1,
    exp_table2,
    exp_table3,
)

__all__ = ["main"]

_CORPUS_EXPERIMENTS = {
    "table1": exp_table1,
    "figure4": exp_figure4,
    "table3": exp_table3,
    "figure5": exp_figure5,
    "figure6": exp_figure6,
    "figure7": exp_figure7,
}


def _corpus_parent() -> argparse.ArgumentParser:
    """Shared corpus-construction flags (every corpus-backed command)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--background-rate",
        type=float,
        default=2.0,
        help="corpus background documents per country per week "
        "(paper-scale: 5.0)",
    )
    parent.add_argument(
        "--seed", type=int, default=0, help="corpus / generator seed"
    )
    return parent


def _synthetic_parent() -> argparse.ArgumentParser:
    """Shared synthetic-workload knobs (table2 / figure8 / all)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--patterns",
        type=int,
        default=120,
        help="injected patterns for table2 (paper: 1000)",
    )
    parent.add_argument(
        "--streams",
        type=int,
        nargs="+",
        default=None,
        help="stream counts for the figure8 sweep",
    )
    return parent


def _workers_parent() -> argparse.ArgumentParser:
    """Shared worker-count flag (mine / bench)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for term-sharded batch mining; 0 (or 1) "
        "is the serial fast path — on a single-CPU host the vectorized "
        "serial sweep beats oversubscribed workers, and values above "
        "the detected CPU count are clamped",
    )
    return parent


def _strategy_parent() -> argparse.ArgumentParser:
    """Shared top-k strategy flag (search / ingest)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--strategy",
        choices=("auto", "ta", "blockmax", "scan"),
        default="auto",
        help="top-k execution strategy: 'ta' is the reference "
        "round-robin Threshold Algorithm, 'blockmax' the block-at-a-"
        "time vectorized TA, 'scan' the full vectorized scan, and "
        "'auto' (default) lets the selectivity planner pick per query; "
        "all strategies return byte-identical rankings",
    )
    return parent


def _mining_parent() -> argparse.ArgumentParser:
    """Shared batch-mining flags (mine)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--miner",
        choices=("stlocal", "stcomb", "both"),
        default="both",
        help="which pattern family to batch-mine",
    )
    parent.add_argument(
        "--top-terms",
        type=int,
        default=None,
        help="restrict mining to the N heaviest terms",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'On the Spatiotemporal "
        "Burstiness of Terms' (VLDB 2012).",
    )
    subparsers = parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="command",
        help="which table/figure to regenerate, 'mine' to batch-mine "
        "the corpus with the columnar pipeline, 'ingest' to replay a "
        "document feed through the live serving layer, or 'bench' for "
        "a columnar-vs-legacy mining comparison",
    )
    corpus = _corpus_parent()
    synthetic = _synthetic_parent()
    workers = _workers_parent()
    mining = _mining_parent()
    strategy = _strategy_parent()

    for name in sorted(_CORPUS_EXPERIMENTS):
        subparsers.add_parser(
            name, parents=[corpus], help=f"regenerate {name}"
        )
    subparsers.add_parser(
        "table2", parents=[corpus, synthetic], help="regenerate table2"
    )
    subparsers.add_parser(
        "figure8", parents=[corpus, synthetic], help="regenerate figure8"
    )
    subparsers.add_parser("figure9", help="regenerate figure9")
    subparsers.add_parser(
        "all",
        parents=[corpus, synthetic],
        help="regenerate every table and figure",
    )
    subparsers.add_parser(
        "mine",
        parents=[corpus, workers, mining],
        help="batch-mine the corpus vocabulary",
    )
    save = subparsers.add_parser(
        "save",
        parents=[corpus],
        help="mine the corpus and persist a durable serving snapshot "
        "(documents, patterns, posting columns, tracker state)",
    )
    save.add_argument(
        "--out", required=True, help="target store directory (new or empty)"
    )
    save.add_argument(
        "--miner",
        choices=("stlocal", "stcomb"),
        default="stlocal",
        help="pattern family backing the persisted index",
    )
    save.add_argument(
        "--top-terms",
        type=int,
        default=None,
        help="restrict mining to the N heaviest terms",
    )
    save.add_argument(
        "--planner-model",
        default=None,
        metavar="FILE",
        help="persist this fitted planner model (from `repro planner "
        "fit`) alongside the index; `search --from-store` re-attaches "
        "it automatically",
    )
    save.add_argument(
        "--codec",
        choices=("raw", "packed"),
        default="raw",
        help="posting-column layout: raw <i8/<f8 columns (format v1) "
        "or block-compressed packed columns (format v2, ~3x smaller, "
        "byte-identical decode)",
    )
    load = subparsers.add_parser(
        "load",
        help="open a segment store, check its integrity and summarise it",
    )
    load.add_argument(
        "--store", required=True, help="store directory to open"
    )
    load.add_argument(
        "--verify",
        action="store_true",
        help="byte-compare the loaded index against a cold rebuild of "
        "its own corpus (ids, score float bits, crc32 tie order)",
    )
    fsck = subparsers.add_parser(
        "fsck",
        help="audit a segment store: per-file CRCs, format gates and "
        "per-term posting decode checks; exit 0 clean / 1 corrupt / "
        "2 unreadable",
    )
    fsck.add_argument(
        "--store", required=True, help="store directory to audit"
    )
    fsck.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="report_format",
        help="report format: human-readable text (default) or the "
        "machine-readable JSON the CI recovery job archives",
    )
    fsck.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report to FILE (stdout always gets it)",
    )
    repair = subparsers.add_parser(
        "repair",
        help="quarantine damaged segment files and restore a loadable "
        "store (rebuilding posting columns from the stored corpus)",
    )
    repair.add_argument(
        "--store", required=True, help="store directory to repair"
    )
    repair.add_argument(
        "--quarantine",
        action="store_true",
        help="actually move damaged files to <store>/quarantine/ and "
        "rewrite the manifest; without it, repair is a dry run that "
        "only reports what it would do",
    )
    search = subparsers.add_parser(
        "search",
        parents=[corpus, strategy],
        help="mine the queried terms and serve top-k retrieval with a "
        "selectable execution strategy",
    )
    search.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="serve from a saved segment store instead of building and "
        "mining the corpus (cold-start-from-disk path)",
    )
    search.add_argument(
        "--on-corruption",
        choices=("fail", "degrade"),
        default="fail",
        dest="on_corruption",
        help="with --from-store: 'fail' (default) aborts on any "
        "checksum mismatch; 'degrade' quarantines damaged posting "
        "columns per term and keeps serving the healthy ones, "
        "reporting what was lost",
    )
    search.add_argument(
        "--query",
        action="append",
        default=None,
        help="query to serve (repeatable); defaults to the Table 9 "
        "multi-term query 'financial crisis'",
    )
    search.add_argument(
        "--k", type=int, default=10, help="results per query"
    )
    search.add_argument(
        "--miner",
        choices=("stlocal", "stcomb"),
        default="stlocal",
        help="pattern family backing the engine",
    )
    search.add_argument(
        "--compare",
        action="store_true",
        help="run every strategy on each query, verify the rankings "
        "are identical, and report per-strategy wall-clock",
    )
    search.add_argument(
        "--explain",
        action="store_true",
        help="print the planner's decision per query: strategy run, "
        "deciding tier (memory/model/heuristic/merged), true vs "
        "visible list lengths, predicted costs and hot-combination "
        "support",
    )
    search.add_argument(
        "--planner-model",
        default=None,
        metavar="FILE",
        help="attach a calibrated planner model (from `repro planner "
        "fit`) so 'auto' uses the fitted cost model instead of the "
        "static selectivity rule; with --from-store, a model persisted "
        "in the store attaches automatically",
    )
    search.add_argument(
        "--log-queries",
        default=None,
        metavar="FILE",
        help="write the per-query planner log (JSONL) after serving — "
        "the input `repro planner fit` calibrates from",
    )
    bench = subparsers.add_parser(
        "bench",
        parents=[workers],
        help="mine a synthetic corpus through the legacy and columnar "
        "paths and report the speedup",
    )
    bench.add_argument(
        "--seed", type=int, default=11, help="synthetic corpus seed"
    )
    bench.add_argument(
        "--bench-streams",
        type=int,
        default=64,
        help="streams in the synthetic bench corpus",
    )
    bench.add_argument(
        "--bench-terms",
        type=int,
        default=24,
        help="terms in the synthetic bench corpus",
    )
    bench.add_argument(
        "--bench-timeline",
        type=int,
        default=260,
        help="timeline length of the synthetic bench corpus",
    )

    ingest = subparsers.add_parser(
        "ingest",
        parents=[strategy],
        help="replay a feed through the live serving layer",
    )
    ingest.add_argument(
        "--file",
        default=None,
        help="JSONL feed to replay; omit for a built-in demo feed.  "
        "Lines: {\"type\":\"stream\",\"id\":...,\"x\":...,\"y\":...}, "
        "{\"doc_id\":...,\"stream\":...,\"timestamp\":...,\"text\":...}, "
        "{\"type\":\"advance\",\"timestamp\":...}",
    )
    ingest.add_argument(
        "--timeline",
        type=int,
        default=64,
        help="timeline length for the live collection",
    )
    ingest.add_argument(
        "--query",
        action="append",
        default=None,
        help="query to serve during the replay; repeatable",
    )
    ingest.add_argument(
        "--k", type=int, default=5, help="results per query"
    )
    ingest.add_argument(
        "--report-every",
        type=int,
        default=10,
        help="serve the queries every N ingested snapshots",
    )
    ingest.add_argument(
        "--verify",
        action="store_true",
        help="after the replay, cross-check live results against a cold "
        "batch rebuild",
    )
    ingest.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="restore the live engine from a checkpoint before replaying; "
        "records the checkpoint already covers are skipped, so ingestion "
        "resumes from the persisted watermark instead of replaying the "
        "whole feed",
    )
    ingest.add_argument(
        "--checkpoint-to",
        default=None,
        metavar="DIR",
        help="persist the live engine as a checkpoint after the replay",
    )

    planner_cmd = subparsers.add_parser(
        "planner",
        help="fit or inspect the calibrated query planner "
        "(repro.search.planner)",
    )
    planner_sub = planner_cmd.add_subparsers(
        dest="action", required=True, metavar="action"
    )
    fit = planner_sub.add_parser(
        "fit",
        help="calibrate a planner model from a query log (JSONL from "
        "`repro search --log-queries`)",
    )
    fit.add_argument(
        "--log", required=True, metavar="FILE", help="query log to fit from"
    )
    fit.add_argument(
        "--out", required=True, metavar="FILE", help="model JSON to write"
    )
    fit.add_argument(
        "--min-samples",
        type=int,
        default=8,
        help="timed rows per strategy before the cost model fits "
        "(below this, 'auto' keeps the static heuristic)",
    )
    fit.add_argument(
        "--hot-support",
        type=int,
        default=16,
        help="queries over the same term set before its merged ranking "
        "is pre-materialized (0 disables hot-combination mining)",
    )
    stats = planner_sub.add_parser(
        "stats",
        help="summarise a planner model and/or query log: strategy "
        "mix, fit state, hot term combinations",
    )
    stats.add_argument(
        "--model", default=None, metavar="FILE", help="planner model JSON"
    )
    stats.add_argument(
        "--log", default=None, metavar="FILE", help="query log JSONL"
    )

    check = subparsers.add_parser(
        "check",
        help="run the static invariant analyzer (repro.analysis) and "
        "fail on any unsuppressed finding",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files/directories to analyze (default: src and "
        "benchmarks, whichever exist under the working directory)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="report_format",
        help="report format: human-readable text (default) or the "
        "machine-readable JSON the CI lint job archives",
    )
    check.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report to FILE (stdout always gets it)",
    )
    check.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    check.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help="skip this rule (repeatable)",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules with their scopes and exit",
    )
    check.add_argument(
        "--stats",
        action="store_true",
        help="report run statistics: summary-cache hits/misses, "
        "program-graph size and wall-clock time",
    )
    check.add_argument(
        "--cache-dir",
        default=".repro-check-cache",
        metavar="DIR",
        help="incremental summary cache directory (default: "
        ".repro-check-cache); unchanged files reuse cached per-file "
        "results keyed by content hash",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze every file from scratch, neither reading nor "
        "writing the summary cache",
    )
    return parser


def _resolve_workers(requested: int) -> int:
    """Clamp a worker count to the host's CPUs (0/1 → serial fast path).

    Oversubscribing a single-CPU container with worker processes only
    adds pickling and scheduling overhead on top of the same serial
    compute; the columnar serial sweep is the fast path there.
    """
    cpus = os.cpu_count() or 1
    if requested <= 1:
        return 1
    if requested > cpus:
        print(
            f"workers={requested} exceeds the {cpus} detected CPU(s); "
            f"clamping to {cpus} (use --workers 0 for the serial fast "
            "path)",
            file=sys.stderr,
        )
        return cpus
    return requested


def _corpus_lab(args: argparse.Namespace) -> TopixLab:
    print(
        f"building Topix-style corpus (181 countries, 48 weeks, "
        f"background rate {args.background_rate}, seed {args.seed})...",
        file=sys.stderr,
    )
    settings = CorpusSettings(
        background_rate=args.background_rate, seed=args.seed
    )
    started = time.perf_counter()
    lab = TopixLab(settings)
    print(
        f"corpus ready: {lab.collection.document_count} documents "
        f"({time.perf_counter() - started:.1f}s)",
        file=sys.stderr,
    )
    return lab


def _run_mine(args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Batch-mine the corpus vocabulary with the snapshot-major pipeline."""
    from repro.pipeline import BatchMiner

    if lab is None:
        lab = _corpus_lab(args)
    tensor = lab.tensor
    if args.top_terms and args.top_terms > 0:
        terms = [term for term, _ in tensor.top_terms(args.top_terms)]
    else:
        terms = sorted(tensor.terms)
    workers = _resolve_workers(args.workers)
    print(
        f"mining {len(terms)} terms "
        f"({workers} worker{'s' if workers != 1 else ''})...",
        file=sys.stderr,
    )
    jobs = []
    if args.miner in ("stlocal", "both"):
        jobs.append(("STLocal", True))
    if args.miner in ("stcomb", "both"):
        jobs.append(("STComb", False))
    miner = BatchMiner(
        stlocal=lab.stlocal, stcomb=lab.stcomb, workers=workers
    )
    for label, regional in jobs:
        started = time.perf_counter()
        if regional:
            mined = miner.mine_regional(
                tensor, terms, locations=lab.locations
            )
        else:
            mined = miner.mine_combinatorial(tensor, terms)
        elapsed = time.perf_counter() - started
        n_patterns = sum(len(patterns) for patterns in mined.values())
        print(
            f"{label}: {n_patterns} patterns over {len(mined)} terms "
            f"in {elapsed:.2f}s"
        )
        best = sorted(
            (
                (patterns[0].score, term)
                for term, patterns in mined.items()
            ),
            reverse=True,
        )[:10]
        for score, term in best:
            top = mined[term][0]
            print(
                f"  {term:<24} score={score:10.3f} "
                f"weeks=[{top.timeframe.start},{top.timeframe.end}] "
                f"streams={len(top.streams)}"
            )
    return lab


def _run_save(args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Mine the corpus and persist a complete serving snapshot."""
    from repro.pipeline import BatchMiner
    from repro.search import BurstySearchEngine
    from repro.store import save_search_index
    from repro.store.format import check_save_target

    # Fail on an unusable target *before* paying for corpus + mining.
    check_save_target(args.out)
    if lab is None:
        lab = _corpus_lab(args)
    tensor = lab.tensor
    if args.top_terms and args.top_terms > 0:
        terms = [term for term, _ in tensor.top_terms(args.top_terms)]
    else:
        terms = sorted(tensor.terms)
    print(
        f"mining {len(terms)} term(s) with "
        f"{'STLocal' if args.miner == 'stlocal' else 'STComb'}...",
        file=sys.stderr,
    )
    miner = BatchMiner(stlocal=lab.stlocal, stcomb=lab.stcomb)
    trackers = None
    if args.miner == "stlocal":
        trackers = miner.regional_trackers(
            tensor, terms, locations=lab.locations
        )
        mined = {}
        for term in terms:
            patterns = trackers[term].patterns(term)
            if patterns:
                mined[term] = patterns
    else:
        mined = miner.mine_combinatorial(tensor, terms)
    engine = BurstySearchEngine(lab.collection, mined)
    planner = None
    if args.planner_model:
        from repro.search import CalibratedPlanner

        planner = CalibratedPlanner.load(args.planner_model)
    started = time.perf_counter()
    save_search_index(
        args.out,
        engine,
        "regional" if args.miner == "stlocal" else "combinatorial",
        terms=terms,
        trackers=trackers,
        miner_config=(
            lab.stlocal.config if args.miner == "stlocal" else lab.stcomb.config
        ),
        metadata={
            "background_rate": args.background_rate,
            "seed": args.seed,
        },
        planner=planner,
        codec=args.codec,
    )
    n_patterns = sum(len(patterns) for patterns in mined.values())
    print(
        f"saved {args.out}: {lab.collection.document_count} documents, "
        f"{n_patterns} patterns over {len(mined)} terms, "
        f"{len(mined)} posting lists [{args.codec}] "
        f"({time.perf_counter() - started:.2f}s)"
    )
    return lab


def _run_load(args: argparse.Namespace) -> None:
    """Open a store (verifying checksums), summarise, optionally verify."""
    from repro.store import open_store, verify_store

    started = time.perf_counter()
    store = open_store(args.store)
    n_files = len(store.files())
    total = sum(entry["size"] for entry in store.files().values())
    print(
        f"store {args.store}: kind={store.kind!r} "
        f"format=v{store.format_version} "
        f"library={store.library_version} "
        f"files={n_files} bytes={total} "
        f"({time.perf_counter() - started:.2f}s, checksums OK)"
    )
    for key in ("documents", "streams", "terms", "watermark", "epoch"):
        if key in store.metadata:
            value = store.metadata[key]
            if isinstance(value, list):
                value = len(value)
            print(f"  {key}: {value}")
    if args.verify:
        started = time.perf_counter()
        for line in verify_store(store):
            print(f"  verify: {line}")
        print(
            f"  verified against cold rebuild in "
            f"{time.perf_counter() - started:.2f}s"
        )


def _run_fsck(args: argparse.Namespace) -> int:
    """Audit a store and report per-file / per-term verdicts."""
    import json

    from repro.store.fsck import fsck_store

    report = fsck_store(args.store)
    if args.report_format == "json":
        rendered = json.dumps(report.to_payload(), indent=1, sort_keys=True)
    else:
        rendered = report.render()
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return report.exit_code


def _run_repair(args: argparse.Namespace) -> int:
    """Quarantine damage and restore a loadable store (or dry-run)."""
    from repro.store.fsck import fsck_store, repair_store

    if not args.quarantine:
        report = fsck_store(args.store)
        print(report.render())
        if report.error:
            return 2
        if report.clean:
            print("dry run: store is clean; nothing to repair")
            return 0
        print(
            "dry run: re-run with --quarantine to move the damaged "
            "file(s) aside and rewrite the manifest"
        )
        return 1
    report = repair_store(args.store)
    print(report.render())
    if report.changed:
        print(
            f"store {args.store} repaired; quarantined bytes kept "
            f"under {args.store}/quarantine/"
        )
    return 0


def _run_search(args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Mine the queried terms, then serve them with a chosen strategy."""
    from repro.pipeline import BatchMiner
    from repro.search import (
        BurstySearchEngine,
        CalibratedPlanner,
        normalize_query_terms,
    )
    from repro.streams.document import tokenize

    queries = args.query or ["financial crisis"]
    planner = None
    if args.planner_model:
        planner = CalibratedPlanner.load(args.planner_model)
        print(
            f"attached planner model {args.planner_model!r} "
            f"(cost model fitted: {'yes' if planner.model.fitted else 'no'})",
            file=sys.stderr,
        )
    if args.from_store:
        started = time.perf_counter()
        engine = BurstySearchEngine.from_store(
            args.from_store,
            strategy=args.strategy,
            planner=planner,
            on_corruption=getattr(args, "on_corruption", "fail"),
        )
        if planner is None and engine.planner is not None:
            print(
                "attached the planner model persisted in the store",
                file=sys.stderr,
            )
        print(
            f"cold-started engine from store {args.from_store!r} in "
            f"{time.perf_counter() - started:.3f}s "
            f"({engine.collection.document_count} documents)",
            file=sys.stderr,
        )
        degraded = engine.degraded_report()
        if degraded:
            print(
                f"DEGRADED MODE: {len(degraded)} quarantined "
                "component(s); serving continues over healthy terms",
                file=sys.stderr,
            )
            for term in sorted(degraded):
                print(
                    f"  quarantined {term!r}: {degraded[term]}",
                    file=sys.stderr,
                )
    else:
        if lab is None:
            lab = _corpus_lab(args)
        wanted = sorted(
            {
                term
                for query in queries
                for term in normalize_query_terms(tokenize(query))
            }
            & set(lab.tensor.terms)
        )
        print(
            f"mining {len(wanted)} query term(s) with "
            f"{'STLocal' if args.miner == 'stlocal' else 'STComb'}...",
            file=sys.stderr,
        )
        miner = BatchMiner(stlocal=lab.stlocal, stcomb=lab.stcomb)
        if args.miner == "stlocal":
            mined = miner.mine_regional(
                lab.tensor, wanted, locations=lab.locations
            )
        else:
            mined = miner.mine_combinatorial(lab.tensor, wanted)
        engine = BurstySearchEngine(
            lab.collection, mined, strategy=args.strategy, planner=planner
        )
    if engine.planner is None and (args.explain or args.log_queries):
        # --explain / --log-queries imply planner machinery even without
        # a pre-fitted model (explicit, or persisted in the store):
        # decisions fall back to the heuristic tier and every execution
        # is logged for a later `planner fit`.
        engine.planner = CalibratedPlanner()
    strategies = (
        ("ta", "blockmax", "scan", "auto") if args.compare else (args.strategy,)
    )
    for query in queries:
        if args.compare:
            # Warm every strategy once untimed (posting lists, doc map,
            # random-access dicts, column caches), so the printed
            # numbers are steady-state and no strategy pays one-time
            # costs inside its timed region.
            for strategy in strategies:
                engine.search(query, k=args.k, strategy=strategy)
        baseline = None
        for strategy in strategies:
            started = time.perf_counter()
            results, stats = engine.search_with_stats(
                query, k=args.k, strategy=strategy
            )
            elapsed = time.perf_counter() - started
            ranking = [(r.document.doc_id, r.score) for r in results]
            if baseline is None:
                baseline = ranking
                print(f"query {query!r}: {len(results)} result(s)")
                for rank, hit in enumerate(results, start=1):
                    doc = hit.document
                    print(
                        f"  {rank:2d}. doc {doc.doc_id!r} "
                        f"(stream {doc.stream_id!r}, t={doc.timestamp}, "
                        f"score {hit.score:.4f})"
                    )
            elif ranking != baseline:
                print(f"  {strategy:<8} MISMATCH vs {strategies[0]}")
                raise SystemExit(1)
            if stats.degraded_terms:
                print(
                    "  WARNING: served without quarantined term(s) "
                    + ", ".join(repr(t) for t in stats.degraded_terms)
                )
            print(f"  [{strategy:<8}] {elapsed * 1000.0:8.2f}ms")
            if args.explain and (strategy == "auto" or not args.compare):
                _print_explanation(engine, query, stats, args.k)
        if args.compare:
            print("  rankings byte-identical across strategies: yes")
    if args.log_queries and engine.planner is not None:
        engine.planner.log.save(args.log_queries)
        print(
            f"wrote {len(engine.planner.log)} logged queries to "
            f"{args.log_queries} (calibrate with `repro planner fit`)",
            file=sys.stderr,
        )
    return lab


def _print_explanation(engine, query: str, stats, k: int) -> None:
    """Planner decision breakdown for one served query (--explain)."""
    from repro.search import normalize_query_terms
    from repro.streams.document import tokenize

    print(
        f"    explain: ran {stats.strategy!r} via {stats.source!r}, "
        f"{stats.sorted_accesses} sorted access(es)"
    )
    if engine.planner is None:
        return
    terms = normalize_query_terms(tokenize(query))
    engine._check_freshness()
    lists = [engine._posting_list(term) for term in terms]
    info = engine.planner.explain(lists, k=k, terms=terms)
    print(
        f"    explain: visible lengths {info['visible_lengths']}, "
        f"true lengths {info['true_lengths']}, "
        f"heuristic would pick {info['heuristic']!r}"
    )
    predicted = info.get("predicted_cost")
    if predicted:
        costs = ", ".join(
            f"{name}={cost:.2e}s" for name, cost in sorted(predicted.items())
        )
        print(f"    explain: model predicts {costs}")
    print(
        f"    explain: term-set support {info['support']}"
        + (
            " (merged ranking cached)"
            if info["merged_cached"]
            else ""
        )
    )


def _search_kernel_bench(seed: int, list_len: int, n_lists: int, k: int):
    """Multi-term top-k strategy comparison over synthetic PostingArrays.

    A compact single-regime cousin of ``benchmarks/bench_search.py``
    (which owns the multi-regime workload and the speedup assertions);
    returns per-strategy wall-clock plus the verified-identical flag.
    """
    import numpy as np

    from repro.search import threshold_topk, topk
    from repro.columnar.postings import PostingArray

    rng = np.random.default_rng(seed)
    universe = list_len * 2
    columns = []
    for _ in range(n_lists):
        ids = np.sort(
            rng.choice(universe, size=list_len, replace=False)
        ).tolist()
        scores = rng.random(list_len)
        columns.append((ids, scores))

    def fresh_lists():
        # New PostingArray objects per run: every strategy pays its own
        # materialisation (column caches ride on object identity).
        return [PostingArray(ids, scores) for ids, scores in columns]

    timings = {}
    rankings = {}
    for strategy in ("ta", "blockmax", "scan", "auto"):
        lists = fresh_lists()
        started = time.perf_counter()
        if strategy == "ta":
            results, _ = threshold_topk(lists, k)
        else:
            results, _ = topk(lists, k, strategy)
        timings[strategy] = time.perf_counter() - started
        rankings[strategy] = [(r.doc_id, r.score) for r in results]
    identical = all(
        rankings[name] == rankings["ta"] for name in rankings
    )
    return timings, identical


def _run_bench(args: argparse.Namespace) -> None:
    """Mine one synthetic corpus via the legacy and columnar paths."""
    import random

    from repro.pipeline import BatchMiner
    from repro.spatial import Point
    from repro.streams import (
        Document,
        FrequencyTensor,
        SpatiotemporalCollection,
    )

    rng = random.Random(args.seed)
    n_streams = max(4, args.bench_streams)
    timeline = max(32, args.bench_timeline)
    side = max(2, int(n_streams ** 0.5))
    collection = SpatiotemporalCollection(timeline=timeline)
    for i in range(n_streams):
        collection.add_stream(
            f"s{i:03d}", Point(float(i % side) * 5.0, float(i // side) * 5.0)
        )
    doc_id = 0
    for index in range(max(1, args.bench_terms)):
        term = f"event{index:03d}"
        start = rng.randint(0, timeline - 24)
        span = rng.randint(6, 12)
        anchor = rng.randint(0, n_streams - 1)
        members = {anchor}
        while len(members) < rng.randint(2, 6):
            step = rng.choice((-side - 1, -side, -1, 1, side, side + 1))
            members.add(max(0, min(n_streams - 1, anchor + step)))
        for t in range(start, start + span):
            for member in members:
                for _ in range(rng.randint(1, 3)):
                    collection.add_document(
                        Document(doc_id, f"s{member:03d}", t, (term,))
                    )
                    doc_id += 1
        for _ in range(span * 3):
            t = rng.randint(
                max(0, start - 3), min(timeline - 1, start + span + 2)
            )
            collection.add_document(
                Document(
                    doc_id, f"s{rng.randint(0, n_streams-1):03d}", t, (term,)
                )
            )
            doc_id += 1

    tensor = FrequencyTensor(collection)
    terms = sorted(tensor.terms)
    locations = collection.locations()
    workers = _resolve_workers(args.workers)
    print(
        f"bench corpus: {collection.document_count} documents, "
        f"{n_streams} streams, {len(terms)} terms, timeline {timeline}",
        file=sys.stderr,
    )
    legacy_miner = BatchMiner(workers=workers, columnar=False)
    columnar_miner = BatchMiner(workers=workers, columnar=True)
    # Warm both paths once so import/allocation costs stay out of the
    # measured ratio.
    columnar_miner.mine_regional(tensor, terms, locations)
    legacy_miner.mine_regional(tensor, terms, locations)

    started = time.perf_counter()
    legacy = legacy_miner.mine_regional(tensor, terms, locations)
    legacy_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    columnar = columnar_miner.mine_regional(tensor, terms, locations)
    columnar_elapsed = time.perf_counter() - started

    identical = repr(legacy) == repr(columnar)
    n_patterns = sum(len(patterns) for patterns in columnar.values())
    print(f"legacy (per-snapshot replay)  {legacy_elapsed:8.3f}s")
    print(f"columnar kernel               {columnar_elapsed:8.3f}s")
    print(
        f"speedup {legacy_elapsed / max(columnar_elapsed, 1e-9):.2f}x, "
        f"{n_patterns} patterns over {len(columnar)} terms, "
        f"byte-identical: {'yes' if identical else 'NO'}"
    )
    if not identical:
        raise SystemExit(1)

    # Serving-side comparison: top-k strategies over synthetic posting
    # arrays (benchmarks/bench_search.py runs the same shape at scale).
    list_len = max(2000, args.bench_timeline * 100)
    timings, search_identical = _search_kernel_bench(
        seed=args.seed, list_len=list_len, n_lists=4, k=10
    )
    print(
        f"top-k strategies (4 lists x {list_len} postings, k=10):"
    )
    for name in ("ta", "blockmax", "scan", "auto"):
        ratio = timings["ta"] / max(timings[name], 1e-9)
        print(
            f"  {name:<8} {timings[name] * 1000.0:8.2f}ms "
            f"({ratio:5.2f}x vs reference TA)"
        )
    print(
        "  rankings byte-identical: "
        f"{'yes' if search_identical else 'NO'}"
    )
    if not search_identical:
        raise SystemExit(1)


def _demo_feed(timeline: int):
    """Deterministic built-in feed: background chatter + one outbreak.

    Yields the same record dicts a JSONL feed file would contain, so
    the replay path is identical with and without ``--file``.
    """
    import random

    rng = random.Random(11)
    cities = [(f"city{c}{r}", c * 10.0, r * 10.0) for c in range(4) for r in range(4)]
    for cid, x, y in cities:
        yield {"type": "stream", "id": cid, "x": x, "y": y}
    vocabulary = ["storm", "market", "football", "election"]
    doc_id = 0
    for day in range(min(timeline, 40)):
        for cid, _, _ in cities:
            if rng.random() < 0.4:
                text = " ".join(
                    rng.choice(vocabulary) for _ in range(rng.randint(1, 3))
                )
                yield {
                    "doc_id": doc_id,
                    "stream": cid,
                    "timestamp": day,
                    "text": text,
                }
                doc_id += 1
        if 15 <= day <= 22:  # storm outbreak in the north-west block
            for cid in ("city00", "city01", "city10", "city11"):
                yield {
                    "doc_id": doc_id,
                    "stream": cid,
                    "timestamp": day,
                    "text": "storm storm flooding",
                }
                doc_id += 1
        yield {"type": "advance", "timestamp": day}


#: Required fields (beyond ``type``) per feed record kind.
_FEED_FIELDS = {
    "stream": ("id", "x", "y"),
    "advance": ("timestamp",),
    "doc": ("doc_id", "stream", "timestamp", "text"),
}


def _load_feed(path: str) -> list:
    """Parse and validate a JSONL ingest feed, all-or-nothing.

    Every line is checked *before* any record is applied, so a
    malformed line aborts the replay with its line number and a
    one-line reason (exit 2 through the CLI's typed-error handler)
    instead of a traceback over a partially-ingested collection.

    Raises:
        FeedError: naming ``file:line`` and what is wrong with it.
    """
    import json

    from repro.errors import FeedError

    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise FeedError(f"cannot read feed {path!r}: {exc}") from None
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise FeedError(
                f"{path}:{lineno}: not valid JSON ({exc}); no records "
                "were applied"
            ) from None
        if not isinstance(record, dict):
            raise FeedError(
                f"{path}:{lineno}: expected a JSON object per line, got "
                f"{type(record).__name__}; no records were applied"
            )
        kind = record.get("type", "doc")
        fields = _FEED_FIELDS.get(kind)
        if fields is None:
            raise FeedError(
                f"{path}:{lineno}: unknown record type {kind!r} "
                f"(expected one of {sorted(_FEED_FIELDS)}); no records "
                "were applied"
            )
        missing = [field for field in fields if field not in record]
        if missing:
            raise FeedError(
                f"{path}:{lineno}: {kind!r} record is missing required "
                f"field(s) {missing}; no records were applied"
            )
        if "timestamp" in fields and not isinstance(
            record["timestamp"], int
        ):
            raise FeedError(
                f"{path}:{lineno}: 'timestamp' must be an integer, got "
                f"{record['timestamp']!r}; no records were applied"
            )
        records.append(record)
    return records


def _run_ingest(args: argparse.Namespace) -> None:
    """Replay a feed through the live layer, serving queries as it goes."""
    import json

    from repro.live import LiveCollection, LiveSearchEngine
    from repro.spatial import Point
    from repro.streams import Document

    if args.checkpoint_to:
        from repro.store.format import check_save_target

        # Fail on an unusable checkpoint target before the replay.
        check_save_target(args.checkpoint_to)
    if args.file:
        records = _load_feed(args.file)
    else:
        print("no --file given; replaying the built-in demo feed", file=sys.stderr)
        records = list(_demo_feed(args.timeline))

    if args.from_store:
        started = time.perf_counter()
        engine = LiveSearchEngine.from_checkpoint(
            args.from_store, strategy=args.strategy
        )
        live = engine.live
        print(
            f"restored checkpoint {args.from_store!r} in "
            f"{time.perf_counter() - started:.3f}s: "
            f"{live.document_count} documents, watermark t={live.watermark}, "
            f"epoch {live.epoch} — resuming ingestion (records the "
            "checkpoint covers are skipped)",
            file=sys.stderr,
        )
        known_streams = set(live.locations())
        records = [
            record
            for record in records
            if not (
                (record.get("type") == "stream" and record["id"] in known_streams)
                or (
                    record.get("type") == "advance"
                    and record["timestamp"] <= live.watermark
                )
                or (
                    record.get("type", "doc") == "doc"
                    and live.has_document(record["doc_id"])
                )
            )
        ]
    else:
        live = LiveCollection(args.timeline)
        engine = LiveSearchEngine(live, strategy=args.strategy)
    queries = args.query or ["storm"]

    def serve(label: str) -> None:
        for query in queries:
            results = engine.search(query, k=args.k)
            top = (
                f"doc {results[0].document.doc_id!r} "
                f"(stream {results[0].document.stream_id!r}, "
                f"t={results[0].document.timestamp}, "
                f"score {results[0].score:.3f})"
                if results
                else "no bursty match"
            )
            print(f"{label} query {query!r}: {len(results)} result(s); top: {top}")

    snapshots_seen = 0
    last_timestamp: Optional[int] = None
    for record in records:
        kind = record.get("type", "doc")
        if kind == "stream":
            live.add_stream(record["id"], Point(record["x"], record["y"]))
            continue
        if kind == "advance":
            live.advance_to(record["timestamp"])
            continue
        document = Document.from_text(
            record["doc_id"],
            record["stream"],
            record["timestamp"],
            record["text"],
        )
        if last_timestamp is not None and document.timestamp != last_timestamp:
            snapshots_seen += 1
            if args.report_every > 0 and snapshots_seen % args.report_every == 0:
                serve(f"[t={last_timestamp}]")
        last_timestamp = document.timestamp
        live.ingest(document)

    print(
        f"replay complete: {live.document_count} documents over "
        f"{len(live)} streams, watermark t={live.watermark}, "
        f"epoch {live.epoch}"
    )
    serve("[final]")
    stats = engine.stats
    print(
        f"serving stats: {stats.cache_hits} cache hit(s), "
        f"{stats.cache_misses} miss(es), {stats.rebuilds} rebuild(s), "
        f"{stats.delta_updates} delta update(s), "
        f"{engine.index.compactions} compaction(s)"
    )

    if args.checkpoint_to:
        started = time.perf_counter()
        engine.checkpoint(args.checkpoint_to)
        print(
            f"checkpoint written to {args.checkpoint_to} "
            f"({time.perf_counter() - started:.3f}s); resume with "
            f"--from-store {args.checkpoint_to}"
        )

    if args.verify:
        from repro.pipeline import BatchMiner
        from repro.search import BurstySearchEngine
        from repro.streams import SpatiotemporalCollection

        # live.timeline, not args.timeline: a restored checkpoint keeps
        # the timeline it was written with, whatever this run's flag says.
        cold = SpatiotemporalCollection(live.timeline)
        for sid, point in live.locations().items():
            cold.add_stream(sid, point)
        for document in live.collection.documents():
            cold.add_document(document)
        mined = BatchMiner().mine_regional(cold)
        batch_engine = BurstySearchEngine(cold, mined)
        for query in queries:
            lively = [
                (r.document.doc_id, r.score) for r in engine.search(query, k=args.k)
            ]
            coldly = [
                (r.document.doc_id, r.score)
                for r in batch_engine.search(query, k=args.k)
            ]
            verdict = "OK" if lively == coldly else "MISMATCH"
            print(f"verify {query!r}: live == cold batch rebuild ... {verdict}")
            if lively != coldly:
                raise SystemExit(1)


def _run_planner(args: argparse.Namespace) -> None:
    """Fit a planner model from a query log, or summarise model/log."""
    from repro.errors import SearchError
    from repro.search import CalibratedPlanner, QueryLog

    if args.action == "fit":
        log = QueryLog.load(args.log)
        planner = CalibratedPlanner(
            min_samples=args.min_samples, hot_support=args.hot_support
        )
        planner.replay(log)
        fitted = planner.fit()
        planner.save(args.out)
        print(
            f"fitted planner from {len(log)} logged queries -> {args.out}"
        )
        samples = ", ".join(
            f"{name}={count}"
            for name, count in sorted(planner.model.samples.items())
        )
        print(f"  timed samples: {samples}")
        print(
            "  cost model: "
            + (
                "fitted"
                if fitted
                else f"cold (needs >= {args.min_samples} samples per "
                "strategy; 'auto' falls back to the static heuristic)"
            )
        )
        hot = planner.hot_combinations(5)
        if hot:
            print("  hottest term sets:")
            for terms, support in hot:
                print(f"    {' '.join(terms):<32} support={support}")
        return
    # stats
    if not args.model and not args.log:
        raise SearchError(
            "planner stats needs --model and/or --log to summarise"
        )
    planner = (
        CalibratedPlanner.load(args.model)
        if args.model
        else CalibratedPlanner()
    )
    if args.log:
        planner.replay(QueryLog.load(args.log))
    info = planner.stats()
    print(f"log records:        {info['log_records']}")
    print(
        "by strategy:        "
        + (
            ", ".join(
                f"{name}={count}"
                for name, count in info["by_strategy"].items()
            )
            or "-"
        )
    )
    print(
        "by source:          "
        + (
            ", ".join(
                f"{name}={count}" for name, count in info["by_source"].items()
            )
            or "-"
        )
    )
    print(f"cost model fitted:  {'yes' if info['model_fitted'] else 'no'}")
    print(
        "model samples:      "
        + ", ".join(
            f"{name}={count}"
            for name, count in sorted(info["model_samples"].items())
        )
    )
    print(f"term sets in memory: {info['term_sets_remembered']}")
    print(
        f"merged rankings:    {info['merged_cached']} cached, "
        f"{info['merged_hits']} hit(s), {info['merged_builds']} build(s)"
    )
    if info["hot_combinations"]:
        print("hottest term sets:")
        for entry in info["hot_combinations"]:
            print(
                f"  {' '.join(entry['terms']):<32} "
                f"support={entry['support']}"
            )


def _run_check(args: argparse.Namespace) -> int:
    """Run the static invariant analyzer; exit 0 clean, 1 on findings."""
    from repro.analysis import (
        all_program_rules,
        all_rules,
        check_paths,
        default_config,
        render_json,
        render_text,
    )
    from repro.analysis.config import DEFAULT_SCOPES

    if args.list_rules:
        per_file = all_rules()
        program = all_program_rules()
        for rule_list, kind in ((per_file, "file"), (program, "program")):
            for rule in rule_list:
                scopes = ", ".join(DEFAULT_SCOPES.get(rule.name, ()))
                print(f"{rule.name:<26} <{kind}> [{scopes}]")
                print(f"    {rule.description}")
        return 0
    paths = args.paths or [
        path for path in ("src", "benchmarks") if os.path.isdir(path)
    ]
    if not paths:
        print(
            "error: no paths given and neither src/ nor benchmarks/ "
            "exists under the working directory",
            file=sys.stderr,
        )
        return 2
    select = frozenset(args.select) if args.select else None
    ignore = frozenset(args.ignore) if args.ignore else frozenset()
    # default_config validates rule names: a typo in --select raises
    # ConfigurationError, which main() turns into exit 2.
    config = default_config(select=select, ignore=ignore)
    cache_dir = None if args.no_cache else args.cache_dir
    report = check_paths(paths, config, cache_dir=cache_dir)
    rendered = (
        render_json(report)
        if args.report_format == "json"
        else render_text(report, show_stats=args.stats)
    )
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return 0 if report.clean else 1


def _run_one(name: str, args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Run one experiment, creating/reusing the corpus lab as needed."""
    if name == "ingest":
        _run_ingest(args)
        return lab
    if name == "bench":
        _run_bench(args)
        return lab
    if name == "mine":
        return _run_mine(args, lab)
    if name == "search":
        return _run_search(args, lab)
    if name == "save":
        return _run_save(args, lab)
    if name == "load":
        _run_load(args)
        return lab
    if name == "planner":
        _run_planner(args)
        return lab
    if name in _CORPUS_EXPERIMENTS:
        if lab is None:
            lab = _corpus_lab(args)
        result = _CORPUS_EXPERIMENTS[name](lab)
    elif name == "table2":
        result = exp_table2(n_patterns=args.patterns, seed=args.seed)
    elif name == "figure8":
        if args.streams:
            result = exp_figure8(stream_counts=args.streams, seed=args.seed)
        else:
            result = exp_figure8(seed=args.seed)
    else:  # figure9
        result = exp_figure9()
    print(result.render())
    print()
    return lab


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.errors import ReproError

    args = _build_parser().parse_args(argv)
    if args.experiment in ("check", "fsck", "repair"):
        runner = {
            "check": _run_check,
            "fsck": _run_fsck,
            "repair": _run_repair,
        }[args.experiment]
        try:
            return runner(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    names = (
        ["table1", "figure4", "table2", "table3", "figure5", "figure6",
         "figure7", "figure8", "figure9"]
        if args.experiment == "all"
        else [args.experiment]
    )
    lab: Optional[TopixLab] = None
    for name in names:
        started = time.perf_counter()
        try:
            lab = _run_one(name, args, lab)
        except ReproError as exc:
            # Library failures (missing/corrupted stores, bad requests)
            # are user-facing conditions, not bugs: report them plainly
            # and exit nonzero instead of dumping a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"[{name} finished in {time.perf_counter() - started:.1f}s]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
