"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro.cli table1            # Table 1 on the default corpus
    python -m repro.cli table2 --patterns 60
    python -m repro.cli figure8 --streams 100 200 400
    python -m repro.cli all --background-rate 2.0
    python -m repro.cli mine --workers 4  # batch-mine the whole corpus

Every experiment subcommand prints the same rows/series the paper's
table or figure reports (see EXPERIMENTS.md for the comparison); the
``mine`` subcommand runs the snapshot-major batch pipeline over the
corpus vocabulary and prints a per-term pattern summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.datagen.corpus import CorpusSettings
from repro.eval.experiments import (
    TopixLab,
    exp_figure4,
    exp_figure5,
    exp_figure6,
    exp_figure7,
    exp_figure8,
    exp_figure9,
    exp_table1,
    exp_table2,
    exp_table3,
)

__all__ = ["main"]

_CORPUS_EXPERIMENTS = {
    "table1": exp_table1,
    "figure4": exp_figure4,
    "table3": exp_table3,
    "figure5": exp_figure5,
    "figure6": exp_figure6,
    "figure7": exp_figure7,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'On the Spatiotemporal "
        "Burstiness of Terms' (VLDB 2012).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(
            list(_CORPUS_EXPERIMENTS)
            + ["table2", "figure8", "figure9", "all", "mine"]
        ),
        help="which table/figure to regenerate, or 'mine' to batch-mine "
        "the corpus with the snapshot-major pipeline",
    )
    parser.add_argument(
        "--background-rate",
        type=float,
        default=2.0,
        help="corpus background documents per country per week "
        "(paper-scale: 5.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="corpus / generator seed"
    )
    parser.add_argument(
        "--patterns",
        type=int,
        default=120,
        help="injected patterns for table2 (paper: 1000)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        nargs="+",
        default=None,
        help="stream counts for the figure8 sweep",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for term-sharded batch mining (mine)",
    )
    parser.add_argument(
        "--miner",
        choices=("stlocal", "stcomb", "both"),
        default="both",
        help="which pattern family to batch-mine (mine)",
    )
    parser.add_argument(
        "--top-terms",
        type=int,
        default=None,
        help="restrict mining to the N heaviest terms (mine)",
    )
    return parser


def _corpus_lab(args: argparse.Namespace) -> TopixLab:
    print(
        f"building Topix-style corpus (181 countries, 48 weeks, "
        f"background rate {args.background_rate}, seed {args.seed})...",
        file=sys.stderr,
    )
    settings = CorpusSettings(
        background_rate=args.background_rate, seed=args.seed
    )
    started = time.perf_counter()
    lab = TopixLab(settings)
    print(
        f"corpus ready: {lab.collection.document_count} documents "
        f"({time.perf_counter() - started:.1f}s)",
        file=sys.stderr,
    )
    return lab


def _run_mine(args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Batch-mine the corpus vocabulary with the snapshot-major pipeline."""
    from repro.pipeline import BatchMiner

    if lab is None:
        lab = _corpus_lab(args)
    tensor = lab.tensor
    if args.top_terms and args.top_terms > 0:
        terms = [term for term, _ in tensor.top_terms(args.top_terms)]
    else:
        terms = sorted(tensor.terms)
    print(
        f"mining {len(terms)} terms "
        f"({args.workers} worker{'s' if args.workers != 1 else ''})...",
        file=sys.stderr,
    )
    jobs = []
    if args.miner in ("stlocal", "both"):
        jobs.append(("STLocal", True))
    if args.miner in ("stcomb", "both"):
        jobs.append(("STComb", False))
    miner = BatchMiner(
        stlocal=lab.stlocal, stcomb=lab.stcomb, workers=args.workers
    )
    for label, regional in jobs:
        started = time.perf_counter()
        if regional:
            mined = miner.mine_regional(
                tensor, terms, locations=lab.locations
            )
        else:
            mined = miner.mine_combinatorial(tensor, terms)
        elapsed = time.perf_counter() - started
        n_patterns = sum(len(patterns) for patterns in mined.values())
        print(
            f"{label}: {n_patterns} patterns over {len(mined)} terms "
            f"in {elapsed:.2f}s"
        )
        best = sorted(
            (
                (patterns[0].score, term)
                for term, patterns in mined.items()
            ),
            reverse=True,
        )[:10]
        for score, term in best:
            top = mined[term][0]
            print(
                f"  {term:<24} score={score:10.3f} "
                f"weeks=[{top.timeframe.start},{top.timeframe.end}] "
                f"streams={len(top.streams)}"
            )
    return lab


def _run_one(name: str, args: argparse.Namespace, lab: Optional[TopixLab]) -> Optional[TopixLab]:
    """Run one experiment, creating/reusing the corpus lab as needed."""
    if name == "mine":
        return _run_mine(args, lab)
    if name in _CORPUS_EXPERIMENTS:
        if lab is None:
            lab = _corpus_lab(args)
        result = _CORPUS_EXPERIMENTS[name](lab)
    elif name == "table2":
        result = exp_table2(n_patterns=args.patterns, seed=args.seed)
    elif name == "figure8":
        if args.streams:
            result = exp_figure8(stream_counts=args.streams, seed=args.seed)
        else:
            result = exp_figure8(seed=args.seed)
    else:  # figure9
        result = exp_figure9()
    print(result.render())
    print()
    return lab


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    names = (
        ["table1", "figure4", "table2", "table3", "figure5", "figure6",
         "figure7", "figure8", "figure9"]
        if args.experiment == "all"
        else [args.experiment]
    )
    lab: Optional[TopixLab] = None
    for name in names:
        started = time.perf_counter()
        lab = _run_one(name, args, lab)
        print(
            f"[{name} finished in {time.perf_counter() - started:.1f}s]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
