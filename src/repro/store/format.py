"""On-disk segment format: little-endian buffers under a crash-safe manifest.

A *store* is a directory of immutable segment files — NumPy arrays in
``.npy`` containers, structural metadata in JSON — described by one
``MANIFEST.json`` at the root.  The manifest is the commit record:

* every segment file is written first, flushed and ``fsync``-ed;
* the manifest (which names every file with its size and CRC-32) is
  then written to a temporary sibling, ``fsync``-ed, and atomically
  renamed into place; the directory is ``fsync``-ed last.

A crash at any point therefore leaves either a complete store or a
directory without a manifest — never a manifest describing files that
were not fully written.  Readers refuse directories without a manifest
and (by default) verify every file's checksum before serving from it.

Arrays are stored in fixed little-endian dtypes (``<i8``/``<i4``/
``<f8``), so a store written on any host loads on any other, and are
read back with ``np.load(..., mmap_mode="r")`` — the serving path
operates directly on the page cache without materialising copies.

The manifest also stamps the producing library's ``__version__`` and
the store ``FORMAT_VERSION``; readers reject stores written by a newer
incompatible format with an explicit message instead of misparsing
them.
"""

from __future__ import annotations

import ast
import io
import json
import os
import zlib
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro._version import __version__
from repro.errors import StoreCorruptionError, StoreError, StoreIOError
from repro.faults.io import store_io

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SegmentReader",
    "SegmentWriter",
    "check_save_target",
    "decode_id_column",
    "encode_id_column",
    "rewrite_manifest",
]

FORMAT_NAME = "repro-segment-store"
#: Bump on any incompatible layout change; readers refuse newer majors.
#: v1: raw little-endian columns.  v2 adds byte-payload (``|u1``)
#: segments, the carrier of the packed posting codec
#: (:mod:`repro.store.codec`).  Writers stamp the *lowest* version that
#: can describe what they actually wrote, so a raw store remains a v1
#: store older readers accept; v2 readers read both.
FORMAT_VERSION = 2
MANIFEST_NAME = "MANIFEST.json"

_CHUNK = 1 << 20

#: Canonical little-endian storage dtypes per NumPy kind.  Unsigned
#: inputs are resolved in :meth:`SegmentWriter.add_array`: single-byte
#: payloads persist as order-free ``|u1``; wider unsigned arrays are
#: widened into ``<i8`` only when every value fits — values ≥ 2**63
#: raise instead of silently wrapping negative.
_STORE_DTYPES = {"i": "<i8", "f": "<f8", "b": "|b1"}


def _file_crc32(path: str) -> Tuple[int, int]:
    """CRC-32 and byte size of a file, streamed."""
    crc = 0
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            size += len(chunk)
    return crc & 0xFFFFFFFF, size


def _json_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (str, int, float, bool))


def encode_id_column(ids: Sequence[Hashable]) -> Dict[str, Any]:
    """Encode document/stream identifiers for persistence.

    Plain ``int`` ids (the engines' common case) become an ``int64``
    array payload; any other JSON scalar type round-trips through a
    JSON list (``json.dumps`` emits ``repr``-exact floats).  Ids that
    are not JSON scalars cannot be persisted faithfully and raise.

    Returns a dict with either ``{"kind": "int64", "array": ndarray}``
    or ``{"kind": "json", "values": list}``.
    """
    as_ints: Optional[List[int]] = []
    for value in ids:
        if type(value) is int and -(2**63) <= value < 2**63:
            as_ints.append(value)
            continue
        as_ints = None
        break
    if as_ints is not None:
        return {"kind": "int64", "array": np.asarray(as_ints, dtype="<i8")}
    for value in ids:
        if not _json_scalar(value):
            raise StoreError(
                f"identifier {value!r} of type {type(value).__name__} is "
                "not persistable: ids must be ints, strings, floats, "
                "bools or None to survive a store round-trip"
            )
    return {"kind": "json", "values": list(ids)}


def decode_id_column(kind: str, payload) -> List[Hashable]:
    """Inverse of :func:`encode_id_column`."""
    if kind == "int64":
        return [int(v) for v in payload.tolist()]
    return list(payload)


def _read_small_array(target: str) -> Optional[np.ndarray]:
    """One-read ``.npy`` loader for small segment files.

    Reads the whole file and wraps the payload bytes with
    ``np.frombuffer`` after hand-parsing the standard header — ~3×
    cheaper than ``np.load``'s open/seek/map choreography, which is
    pure overhead on the packed codec's many small per-column header
    files.  Returns ``None`` on anything unusual (object dtypes,
    Fortran order, malformed header), sending the caller down the
    regular ``np.load`` path so error behaviour is unchanged.
    """
    try:
        with open(target, "rb") as handle:
            data = handle.read()
        if data[:6] != b"\x93NUMPY":
            return None
        if data[6] == 1:
            offset = 10
            header_len = int.from_bytes(data[8:10], "little")
        else:
            offset = 12
            header_len = int.from_bytes(data[8:12], "little")
        header = ast.literal_eval(
            data[offset : offset + header_len].decode("latin1")
        )
        if header.get("fortran_order"):
            return None
        dtype = np.dtype(header["descr"])
        if dtype.hasobject:
            return None
        shape = header["shape"]
        count = 1
        for dim in shape:
            count *= dim
        loaded = np.frombuffer(
            data, dtype=dtype, count=count, offset=offset + header_len
        )
        return loaded.reshape(shape)
    except (OSError, ValueError, SyntaxError, KeyError, TypeError):  # repro: noqa[error-escalation] -- fall through to np.load, whose failure is escalated typed by the caller
        return None


def check_save_target(path: str) -> None:
    """Validate a store save target without creating anything.

    Raises:
        StoreError: when ``path`` exists and is not an empty directory
            — refusing to write into a populated directory is what
            keeps a typoed ``repro save`` from shredding unrelated
            files.  Callers about to do expensive work before the save
            (mining a corpus) should check up front.
    """
    if os.path.exists(path):
        if not os.path.isdir(path):
            raise StoreError(
                f"cannot save store: {path!r} exists and is not a directory"
            )
        if os.listdir(path):
            raise StoreError(
                f"cannot save store: directory {path!r} is not empty — "
                "choose a fresh path or remove its contents first"
            )


class SegmentWriter:
    """Writes one store directory, committing via the manifest.

    All durable effects flow through the installed
    :func:`repro.faults.io.store_io` backend, so fault-injection tests
    can tear, kill or fail any individual write/fsync/rename without
    monkey-patching this module.

    Args:
        path: Target directory.  Must not exist, or be an existing
            *empty* directory (see :func:`check_save_target`).
        fresh: When ``False``, skip the empty-target check — the repair
            path uses this to write replacement segments into an
            existing store directory before atomically rewriting its
            manifest.
    """

    def __init__(self, path: str, fresh: bool = True) -> None:
        if fresh:
            check_save_target(path)
        os.makedirs(path, exist_ok=True)
        self.path = path
        self._files: Dict[str, Dict[str, Any]] = {}
        self._committed = False
        self._format_version = 1

    def require_version(self, version: int) -> None:
        """Raise the manifest's stamped format version to ``version``.

        Codecs that emit layouts older readers cannot parse (the packed
        posting codec) call this; a store that never does stays a v1
        store any reader of this library's history accepts.
        """
        if version > FORMAT_VERSION:
            raise StoreError(
                f"cannot stamp format version {version}: this library "
                f"writes at most version {FORMAT_VERSION}"
            )
        self._format_version = max(self._format_version, version)

    # ------------------------------------------------------------------
    def _target(self, name: str) -> str:
        if name in self._files:
            raise StoreError(f"segment file {name!r} written twice")
        target = os.path.join(self.path, name)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        return target

    def _write_payload(
        self, name: str, target: str, data: bytes, kind: str, **extra
    ) -> None:
        """Write + fsync one segment payload and record its manifest entry.

        The CRC-32 is computed from the in-memory payload, not by
        re-reading the file: anything that mutates the bytes between
        here and the disk (a torn write, a flipped bit, a lying device)
        therefore *mismatches* the manifest and is caught by
        verification — exactly the contract ``repro fsck`` checks.
        """
        shim = store_io()
        try:
            shim.write_bytes(target, data)
            shim.fsync_file(target)
        except OSError as exc:
            raise StoreIOError(
                f"cannot write segment file {name!r} to {target!r}: {exc}"
            ) from None
        entry = {
            "type": kind,
            "crc32": zlib.crc32(data) & 0xFFFFFFFF,
            "size": len(data),
        }
        entry.update(extra)
        self._files[name] = entry

    def add_array(self, name: str, array: np.ndarray) -> None:
        """Persist one array as ``<name>`` in canonical little-endian form."""
        arr = np.asarray(array)
        if arr.dtype.kind == "u":
            if arr.dtype.itemsize == 1:
                # Packed byte payloads: order-free, a v2 layout.
                store_dtype = "|u1"
                self.require_version(2)
            elif arr.size and int(arr.max()) >= 2**63:
                raise StoreError(
                    f"array segment {name!r} holds unsigned values >= "
                    "2**63 that the <i8 storage dtype cannot represent "
                    "— they would silently wrap negative on encode"
                )
            else:
                store_dtype = "<i8"
        else:
            store_dtype = _STORE_DTYPES.get(arr.dtype.kind)
        if store_dtype is None:
            raise StoreError(
                f"array segment {name!r} has unsupported dtype {arr.dtype}"
            )
        arr = np.ascontiguousarray(arr.astype(store_dtype, copy=False))
        target = self._target(name)
        buffer = io.BytesIO()
        np.save(buffer, arr, allow_pickle=False)
        self._write_payload(
            name, target, buffer.getvalue(), "array",
            dtype=store_dtype, shape=list(arr.shape),
        )

    def add_json(self, name: str, payload: Any) -> None:
        """Persist one JSON document (floats round-trip bit-exactly)."""
        target = self._target(name)
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._write_payload(name, target, data, "json")

    # ------------------------------------------------------------------
    def commit(self, kind: str, metadata: Optional[Dict[str, Any]] = None) -> None:
        """Write the manifest atomically, making the store visible.

        Until this returns, the directory holds no manifest and no
        reader will serve from it — the crash-safety contract.
        """
        if self._committed:
            raise StoreError("store already committed")
        manifest = {
            "format": FORMAT_NAME,
            "format_version": self._format_version,
            "library_version": __version__,
            "kind": kind,
            "metadata": dict(metadata or {}),
            "files": self._files,
        }
        rewrite_manifest(self.path, manifest)
        self._committed = True


def rewrite_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Atomically install ``manifest`` as the store's commit record.

    Temp-sibling write, fsync, ``replace``, directory fsync — the same
    boundary sequence :meth:`SegmentWriter.commit` uses, shared with the
    repair path (which rewrites an existing store's manifest after
    quarantining damaged segments).
    """
    shim = store_io()
    temporary = os.path.join(path, MANIFEST_NAME + ".tmp")
    data = json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8")
    try:
        shim.write_bytes(temporary, data)
        shim.fsync_file(temporary)
        shim.replace(temporary, os.path.join(path, MANIFEST_NAME))
    except OSError as exc:
        raise StoreIOError(
            f"cannot commit manifest {MANIFEST_NAME!r} in {path!r}: {exc}"
        ) from None
    shim.fsync_dir(path)


class SegmentReader:
    """Reads one committed store directory.

    Args:
        path: The store directory.
        mmap: Serve arrays through ``np.memmap`` (zero-copy; default)
            instead of materialising them.
        verify: Stream-checksum every file against the manifest before
            serving (default).  Disable only for trusted local stores
            where open latency matters more than corruption detection.
    """

    def __init__(self, path: str, mmap: bool = True, verify: bool = True) -> None:
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.isdir(path):
            raise StoreError(
                f"store {path!r} does not exist or is not a directory"
            )
        if not os.path.exists(manifest_path):
            raise StoreCorruptionError(
                f"no {MANIFEST_NAME} in {path!r}: not a segment store, or "
                "a save was interrupted before commit — re-run `repro save`"
            )
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise StoreCorruptionError(
                f"corrupted manifest {manifest_path!r}: {exc} — the store "
                "cannot be trusted; re-create it with `repro save`"
            ) from None
        if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
            raise StoreError(
                f"{path!r} is not a {FORMAT_NAME} store (manifest format "
                f"field: {manifest.get('format') if isinstance(manifest, dict) else manifest!r})"
            )
        version = manifest.get("format_version")
        if not isinstance(version, int) or version > FORMAT_VERSION:
            raise StoreError(
                f"store {path!r} uses format version {version} (written by "
                f"library {manifest.get('library_version')!r}), but this "
                f"library ({__version__}) reads versions <= {FORMAT_VERSION}"
                " — upgrade the library or re-save the store"
            )
        self.path = path
        self.manifest = manifest
        self.kind: str = manifest.get("kind", "")
        self.metadata: Dict[str, Any] = manifest.get("metadata", {})
        self.library_version: str = manifest.get("library_version", "")
        self.format_version: int = version
        self._mmap = mmap
        if verify:
            self.verify_checksums()

    # ------------------------------------------------------------------
    def checksum_report(self) -> Dict[str, str]:
        """Per-file verification verdicts: name → ``"ok"`` or a reason.

        The non-raising companion of :meth:`verify_checksums` — what
        ``repro fsck`` walks and what degraded-mode loading consults to
        decide which columns to quarantine.  Reasons name the full path
        plus expected/actual values.
        """
        report: Dict[str, str] = {}
        for name, entry in self.files().items():
            target = os.path.join(self.path, name)
            if not os.path.exists(target):
                report[name] = (
                    f"missing: segment file {target!r} named by the "
                    "manifest is absent"
                )
                continue
            try:
                crc, size = _file_crc32(target)
            except OSError as exc:  # repro: noqa[error-escalation] -- the audit's contract is a verdict per file; verify_checksums escalates read-error verdicts as typed StoreIOError
                report[name] = f"read-error: cannot read {target!r}: {exc}"
                continue
            if size != entry.get("size") or crc != entry.get("crc32"):
                report[name] = (
                    f"checksum mismatch in {target!r}: expected crc32 "
                    f"{entry.get('crc32'):#010x}/{entry.get('size')}B, "
                    f"found {crc:#010x}/{size}B"
                )
            else:
                report[name] = "ok"
        return report

    def verify_checksums(self) -> None:
        """Stream-verify every segment file against the manifest."""
        for name, verdict in self.checksum_report().items():
            if verdict == "ok":
                continue
            if verdict.startswith("missing"):
                raise StoreCorruptionError(
                    f"store {self.path!r} is missing segment file {name!r} "
                    "named by its manifest — the store is corrupted; run "
                    "`repro fsck` / `repro repair`"
                )
            if verdict.startswith("read-error"):
                raise StoreIOError(
                    f"cannot verify segment file {name!r} of store "
                    f"{self.path!r}: {verdict}"
                )
            raise StoreCorruptionError(
                f"checksum mismatch in segment file {name!r} of store "
                f"{self.path!r} ({verdict}) — the store is corrupted; "
                "run `repro fsck` to locate damage and `repro repair "
                "--quarantine` to recover, or re-create it with "
                "`repro save`"
            )

    def files(self) -> Dict[str, Dict[str, Any]]:
        return dict(self.manifest.get("files", {}))

    def has(self, name: str) -> bool:
        return name in self.manifest.get("files", {})

    def _resolve(self, name: str, kind: str) -> str:
        entry = self.manifest.get("files", {}).get(name)
        if entry is None:
            raise StoreError(
                f"store {self.path!r} has no segment {name!r} "
                f"(kind {self.kind!r})"
            )
        if entry.get("type") != kind:
            raise StoreError(
                f"segment {name!r} is a {entry.get('type')!r} segment, "
                f"not {kind!r}"
            )
        return os.path.join(self.path, name)

    #: Array files below this size load through the single-read fast
    #: path instead of ``np.load``: mapping a file costs more in fixed
    #: Python/OS overhead than reading a few KB outright, and packed
    #: stores carry many small per-column header files whose open cost
    #: would otherwise dominate a cold start.
    SMALL_ARRAY_BYTES = 131072

    def array(self, name: str) -> np.ndarray:
        """Load an array segment (memory-mapped read-only by default).

        The returned array is frozen ``writeable=False`` regardless of
        the load mode: an ``mmap_mode="r"`` map is already read-only at
        the OS level, but the eager (``mmap=False``) path returns a
        private heap copy that would otherwise accept writes and
        silently diverge from the CRC-verified bytes on disk.  Callers
        that need a mutable buffer must copy explicitly.
        """
        target = self._resolve(name, "array")
        try:
            store_io().check_read(target)
        except OSError as exc:
            raise StoreIOError(
                f"I/O error reading array segment {name!r} at {target!r}: "
                f"{exc}"
            ) from None
        entry = self.manifest.get("files", {}).get(name, {})
        if entry.get("size", self.SMALL_ARRAY_BYTES) < self.SMALL_ARRAY_BYTES:
            loaded = _read_small_array(target)
            if loaded is not None:
                return loaded
        mode = "r" if self._mmap else None
        try:
            loaded = np.load(target, mmap_mode=mode, allow_pickle=False)
        except OSError as exc:
            raise StoreIOError(
                f"cannot read array segment {name!r} at {target!r}: {exc}"
            ) from None
        except ValueError as exc:
            raise StoreCorruptionError(
                f"cannot decode array segment {name!r} at {target!r}: "
                f"{exc}"
            ) from None
        loaded.flags.writeable = False
        return loaded

    def json(self, name: str) -> Any:
        """Load a JSON segment."""
        target = self._resolve(name, "json")
        try:
            store_io().check_read(target)
        except OSError as exc:
            raise StoreIOError(
                f"I/O error reading JSON segment {name!r} at {target!r}: "
                f"{exc}"
            ) from None
        try:
            with open(target, encoding="utf-8") as handle:
                return json.load(handle)
        except OSError as exc:
            raise StoreIOError(
                f"cannot read JSON segment {name!r} at {target!r}: {exc}"
            ) from None
        except ValueError as exc:
            raise StoreCorruptionError(
                f"cannot decode JSON segment {name!r} at {target!r}: {exc}"
            ) from None
