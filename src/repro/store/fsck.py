"""Offline store auditing (``repro fsck``) and recovery (``repro repair``).

``fsck`` is the non-destructive half: it walks the manifest, verifies
every segment file's CRC-32 and size, and — for posting segments that
carry per-term checksums — fully decodes every term's columns (raw
slices or packed blocks, exercising the block headers) against the
stored per-term CRC.  The result is a structured
:class:`FsckReport` with one verdict per file and per term, an exit
code (0 clean / 1 corrupt / 2 unreadable) and a JSON payload CI can
archive.

``repair`` is the destructive half, and is deliberately conservative:

* damage to *source* segments (``documents/``, ``patterns/``, a live
  checkpoint's ``live/`` or ``trackers/`` state) is unrepairable —
  those bytes cannot be derived from anything else in the store, so
  repair refuses before mutating anything;
* damaged ``postings/`` files on an ``index`` store are quarantined
  (moved to ``<store>/quarantine/``, never deleted) and the whole
  posting prefix is rebuilt from the store's own documents and mined
  patterns — which is possible precisely because patterns are persisted
  and posting scores are a deterministic function of them;
* a damaged ``planner/model`` or ``trackers/`` segment on an ``index``
  store is auxiliary: it is quarantined and dropped from the manifest
  (serving works without it, just uncalibrated / without tracker
  state).

The rewritten manifest is installed through the same atomic
temp-write → fsync → rename boundary sequence as a fresh save
(:func:`repro.store.format.rewrite_manifest`), so a crash mid-repair
leaves either the old manifest (with quarantined files now "missing" —
fsck still reports honestly) or the new one, never a half-state.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StoreCorruptionError, StoreError, StoreIOError
from repro.store.format import SegmentReader, SegmentWriter, rewrite_manifest
from repro.store.segments import PostingSegment, encode_posting_lists

__all__ = [
    "FileVerdict",
    "FsckReport",
    "RepairReport",
    "TermVerdict",
    "fsck_store",
    "repair_store",
]


@dataclasses.dataclass(frozen=True)
class FileVerdict:
    """One manifest-listed segment file's verification outcome."""

    name: str
    verdict: str

    @property
    def ok(self) -> bool:
        return self.verdict == "ok"


@dataclasses.dataclass(frozen=True)
class TermVerdict:
    """One posting term's decode-and-checksum outcome.

    ``term`` is ``"(segment)"`` for prefix-level outcomes (the segment
    could not be opened at all, or predates per-term checksums).
    """

    prefix: str
    term: str
    verdict: str

    @property
    def ok(self) -> bool:
        return self.verdict == "ok" or self.verdict.startswith("skipped")


@dataclasses.dataclass(frozen=True)
class FsckReport:
    """Structured ``repro fsck`` outcome for one store directory."""

    path: str
    kind: str = ""
    format_version: int = 0
    error: str = ""
    files: Tuple[FileVerdict, ...] = ()
    terms: Tuple[TermVerdict, ...] = ()

    @property
    def damaged_files(self) -> Tuple[FileVerdict, ...]:
        return tuple(f for f in self.files if not f.ok)

    @property
    def damaged_terms(self) -> Tuple[TermVerdict, ...]:
        return tuple(t for t in self.terms if not t.ok)

    @property
    def clean(self) -> bool:
        return not self.error and not self.damaged_files and not self.damaged_terms

    @property
    def exit_code(self) -> int:
        """0 — every check passed; 1 — damage found; 2 — unreadable."""
        if self.error:
            return 2
        return 0 if self.clean else 1

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready report (the CI artifact format)."""
        return {
            "path": self.path,
            "kind": self.kind,
            "format_version": self.format_version,
            "error": self.error,
            "exit_code": self.exit_code,
            "files": {f.name: f.verdict for f in self.files},
            "terms": [
                {"prefix": t.prefix, "term": t.term, "verdict": t.verdict}
                for t in self.terms
            ],
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"fsck {self.path}"]
        if self.error:
            lines.append(f"  unreadable: {self.error}")
            return "\n".join(lines)
        lines.append(
            f"  kind={self.kind} format_version={self.format_version}"
        )
        ok_files = sum(1 for f in self.files if f.ok)
        lines.append(f"  files: {ok_files}/{len(self.files)} ok")
        for entry in self.damaged_files:
            lines.append(f"    DAMAGED {entry.name}: {entry.verdict}")
        if self.terms:
            ok_terms = sum(1 for t in self.terms if t.ok)
            lines.append(f"  posting terms: {ok_terms}/{len(self.terms)} ok")
            for term in self.damaged_terms:
                lines.append(
                    f"    DAMAGED {term.prefix}/{term.term}: {term.verdict}"
                )
        lines.append(
            "  verdict: " + ("clean" if self.clean else "CORRUPT")
        )
        return "\n".join(lines)


def _posting_prefixes(reader: SegmentReader) -> List[str]:
    """Posting-segment prefixes, identified by their meta shape."""
    prefixes = []
    for name in sorted(reader.files()):
        if not name.endswith("/meta.json"):
            continue
        prefix = name[: -len("/meta.json")]
        try:
            meta = reader.json(name)
        except StoreError:  # repro: noqa[error-escalation] -- fsck records the damage as this file's verdict; raising here would abort the audit of every other segment
            continue
        if (
            isinstance(meta, dict)
            and "terms" in meta
            and "doc_id_kind" in meta
        ):
            prefixes.append(prefix)
    return prefixes


def fsck_store(path: str, mmap: bool = True) -> FsckReport:
    """Audit one store directory; never mutates it, never raises.

    Every failure mode becomes a verdict: an unopenable store is an
    ``error`` report (exit 2), per-file CRC/size mismatches and
    per-term decode/checksum failures are damage entries (exit 1).
    """
    try:
        reader = SegmentReader(path, mmap=mmap, verify=False)
    except StoreError as exc:  # repro: noqa[error-escalation] -- fsck's whole contract is converting failures into report verdicts (exit 2), not tracebacks
        return FsckReport(path=path, error=str(exc))
    files = tuple(
        FileVerdict(name, verdict)
        for name, verdict in sorted(reader.checksum_report().items())
    )
    terms: List[TermVerdict] = []
    for prefix in _posting_prefixes(reader):
        try:
            segment = PostingSegment(reader, prefix)
        except StoreError as exc:  # repro: noqa[error-escalation] -- an unopenable posting skeleton is a recorded verdict; its cause is already named by the per-file report
            terms.append(
                TermVerdict(prefix, "(segment)", f"unreadable: {exc}")
            )
            continue
        if segment._term_crcs is None:
            terms.append(
                TermVerdict(
                    prefix,
                    "(segment)",
                    "skipped: store predates per-term checksums "
                    "(no 'term_crcs' in postings meta)",
                )
            )
            continue
        for term in segment.terms:
            try:
                segment.check_term(term)
            except StoreCorruptionError as exc:  # repro: noqa[error-escalation] -- the corruption becomes this term's verdict; fsck keeps auditing the remaining terms
                terms.append(TermVerdict(prefix, term, str(exc)))
            except StoreIOError as exc:  # repro: noqa[error-escalation] -- a read failure is this term's verdict, not an audit abort
                terms.append(TermVerdict(prefix, term, f"read-error: {exc}"))
            else:
                terms.append(TermVerdict(prefix, term, "ok"))
    return FsckReport(
        path=path,
        kind=reader.kind,
        format_version=reader.format_version,
        files=files,
        terms=tuple(terms),
    )


@dataclasses.dataclass(frozen=True)
class RepairReport:
    """What ``repro repair --quarantine`` did to one store."""

    path: str
    quarantined: Tuple[str, ...] = ()
    rebuilt: Tuple[str, ...] = ()
    dropped: Tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.quarantined or self.rebuilt or self.dropped)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "quarantined": list(self.quarantined),
            "rebuilt": list(self.rebuilt),
            "dropped": list(self.dropped),
        }

    def render(self) -> str:
        lines = [f"repair {self.path}"]
        if not self.changed:
            lines.append("  store is clean; nothing to repair")
            return "\n".join(lines)
        for name in self.quarantined:
            lines.append(f"  quarantined {name} -> quarantine/{name}")
        for prefix in self.rebuilt:
            lines.append(f"  rebuilt segment {prefix}/ from source data")
        for name in self.dropped:
            lines.append(f"  dropped {name} from the manifest")
        return "\n".join(lines)


#: Segments whose bytes cannot be rederived from anything else in the
#: store — damage there is unrepairable by construction.
_SOURCE_PREFIXES = ("documents/", "patterns/", "live/")


def _quarantine_file(path: str, name: str) -> None:
    """Move one damaged segment file aside, preserving its bytes."""
    source = os.path.join(path, name)
    target = os.path.join(path, "quarantine", name)
    os.makedirs(os.path.dirname(target), exist_ok=True)
    os.replace(source, target)


def _rebuild_postings(
    reader: SegmentReader, writer: SegmentWriter, codec: str
) -> None:
    """Re-derive the ``postings/`` segment from documents + patterns.

    Persisted patterns plus the stored corpus determine every posting
    score (the manifest's scoring fingerprints pin the callables), so
    the rebuild reproduces the original encoder output byte-for-byte.
    """
    from repro.search.engine import BurstySearchEngine
    from repro.store.collection import DocumentTable, StoredCollection
    from repro.store.segments import decode_patterns
    from repro.store.store import _check_scoring_fingerprints

    _, patterns = decode_patterns(reader, "patterns")
    table = DocumentTable(reader, "documents")
    engine = BurstySearchEngine(
        StoredCollection(table), patterns, precompute=False
    )
    _check_scoring_fingerprints(reader, engine)
    engine.precompute()
    lists = {term: engine._posting_list(term) for term in patterns}
    encode_posting_lists(writer, "postings", lists, codec=codec)


def repair_store(path: str) -> RepairReport:
    """Quarantine damaged segments and restore a loadable store.

    Raises:
        StoreCorruptionError: when the store is unreadable (no usable
            manifest) or the damage reaches source segments
            (documents, patterns, live/tracker checkpoint state) that
            cannot be rederived — nothing is mutated in that case.
        StoreError: when posting rebuild is impossible (non-default
            scoring callables, or a ``live`` store's postings are
            damaged).
    """
    report = fsck_store(path)
    if report.error:
        raise StoreCorruptionError(
            f"cannot repair store {path!r}: {report.error}"
        )
    damaged = [entry.name for entry in report.damaged_files]
    if not damaged:
        return RepairReport(path=path)

    unrepairable = [
        name
        for name in damaged
        if name.startswith(_SOURCE_PREFIXES)
    ]
    if unrepairable:
        raise StoreCorruptionError(
            f"cannot repair store {path!r}: segment file "
            f"{unrepairable[0]!r} holds source data that nothing else in "
            "the store can rederive — restore it from a backup or "
            "re-create the store with `repro save`"
        )
    if report.kind != "index" and any(
        name.startswith("postings/") or name.startswith("trackers/")
        for name in damaged
    ):
        raise StoreError(
            f"cannot repair {report.kind!r} store {path!r}: its posting "
            "and tracker segments embed live serving state that only "
            "re-ingestion can reproduce — restore an earlier checkpoint"
        )

    reader = SegmentReader(path, verify=False)
    manifest = dict(reader.manifest)
    files: Dict[str, Dict[str, Any]] = dict(manifest.get("files", {}))
    metadata: Dict[str, Any] = dict(manifest.get("metadata", {}))

    rebuild_postings = any(name.startswith("postings/") for name in damaged)
    drop_planner = "planner/model" in damaged
    drop_trackers = any(name.startswith("trackers/") for name in damaged)

    quarantined: List[str] = []
    for name in damaged:
        if os.path.exists(os.path.join(path, name)):
            _quarantine_file(path, name)
        quarantined.append(name)

    rebuilt: List[str] = []
    dropped: List[str] = []
    writer = SegmentWriter(path, fresh=False)
    if rebuild_postings:
        codec = str(metadata.get("codec", "raw"))
        _rebuild_postings(reader, writer, codec)
        files = {
            name: entry
            for name, entry in files.items()
            if not name.startswith("postings/")
        }
        rebuilt.append("postings")
    if drop_planner:
        files.pop("planner/model", None)
        metadata["planner"] = False
        dropped.append("planner/model")
    if drop_trackers:
        files = {
            name: entry
            for name, entry in files.items()
            if not name.startswith("trackers/")
        }
        metadata["trackers"] = False
        dropped.append("trackers")
    # Merge the rebuilt segment entries and re-stamp the lowest
    # sufficient format version over what actually remains on disk.
    files.update(writer._files)
    manifest["files"] = files
    manifest["metadata"] = metadata
    version = int(manifest.get("format_version", 1))
    manifest["format_version"] = max(version, writer._format_version)
    rewrite_manifest(path, manifest)

    # The contract: after repair the store verify-opens, or repair
    # itself fails loudly.
    SegmentReader(path, verify=True)
    return RepairReport(
        path=path,
        quarantined=tuple(quarantined),
        rebuilt=tuple(rebuilt),
        dropped=tuple(dropped),
    )
