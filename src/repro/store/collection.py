"""Lazy document materialisation over stored collection segments.

Cold-starting a serving engine must not pay for objects the first
query never touches: a 50k-document corpus reconstructed eagerly costs
hundreds of milliseconds of pure ``Document``/dict churn, which is the
difference between a milliseconds cold start and one that merely
shaves the mining.  This module keeps the loaded document table in its
columnar (memory-mapped) form and materialises:

* **single documents on demand** — :class:`LazyDocumentMap` backs the
  engine's doc-id → document map; serving a top-k result materialises
  exactly ``k`` documents;
* **the full collection only when something genuinely needs it** —
  :class:`StoredCollection` answers scalar queries (``vocabulary``,
  ``document_count``, ``locations``) straight from the segment
  metadata and inflates the underlying
  :class:`~repro.streams.SpatiotemporalCollection` the first time a
  caller iterates documents, reads frequencies, or mutates it.  After
  inflation it *is* a plain collection (same iteration order as the
  one that was saved), so the mutation-staleness machinery of the
  engines behaves identically.

Materialisation is not a mutation: the documents were always logically
present, so the collection's ``version`` counter is restored afterwards
— otherwise the first query after a cold start would look like a
corpus change and throw the freshly-loaded posting segments away.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Dict, Hashable, Iterator, List, Optional

from repro.spatial.geometry import Point
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.document import Document

__all__ = [
    "DocumentTable",
    "LazyDocumentMap",
    "LazyPatternMap",
    "StoredCollection",
]


class LazyPatternMap(Mapping):
    """term → patterns mapping that decodes its segment on first read.

    Pure serving never touches the mined patterns — posting columns are
    already scored — so a cold start defers the (potentially
    many-thousand-dataclass) pattern decode until something actually
    asks for them (``patterns_for``, a posting rebuild, a re-save).
    """

    def __init__(self, reader, prefix: str) -> None:
        self._reader = reader
        self._prefix = prefix
        self._decoded: Optional[Dict[str, list]] = None

    def _load(self) -> Dict[str, list]:
        if self._decoded is None:
            from repro.store.segments import decode_patterns

            _, self._decoded = decode_patterns(self._reader, self._prefix)
        return self._decoded

    def __getitem__(self, term: str):
        return self._load()[term]

    def __iter__(self):
        return iter(self._load())

    def __len__(self) -> int:
        return len(self._load())


class DocumentTable:
    """Columnar document table with per-row materialisation.

    Wraps the decoded segment columns; :meth:`document_at` builds (and
    caches) one :class:`Document`, so the collection view and the
    lazy doc-id map hand out the *same* object per row.
    """

    def __init__(self, reader, prefix: str) -> None:
        meta = reader.json(f"{prefix}/meta.json")
        from repro.store.segments import _read_id_column

        self.timeline: int = int(meta["timeline"])
        stream_ids = _read_id_column(
            reader, prefix, "stream_ids", meta["stream_id_kind"]
        )
        xs = reader.array(f"{prefix}/stream_x.npy").tolist()
        ys = reader.array(f"{prefix}/stream_y.npy").tolist()
        self.locations: Dict[Hashable, Point] = {
            sid: Point(x, y) for sid, x, y in zip(stream_ids, xs, ys)
        }
        self._stream_ids = stream_ids
        self.doc_ids: List[Hashable] = _read_id_column(
            reader, prefix, "doc_ids", meta["doc_id_kind"]
        )
        self._stream_codes = reader.array(f"{prefix}/stream_codes.npy")
        self._timestamps = reader.array(f"{prefix}/timestamps.npy")
        self._indptr = reader.array(f"{prefix}/term_indptr.npy")
        self._term_codes = reader.array(f"{prefix}/term_codes.npy")
        self._term_counts = reader.array(f"{prefix}/term_counts.npy")
        self.vocabulary: List[str] = list(meta["vocabulary"])
        self._event_ids: Dict[str, Hashable] = meta.get("event_ids", {})
        self._cache: Dict[int, Document] = {}
        self._row_of: Optional[Dict[Hashable, int]] = None

    def __len__(self) -> int:
        return len(self.doc_ids)

    def row_of(self, doc_id: Hashable) -> Optional[int]:
        if self._row_of is None:
            self._row_of = {
                doc_id: row for row, doc_id in enumerate(self.doc_ids)
            }
        return self._row_of.get(doc_id)

    def document_at(self, row: int) -> Document:
        document = self._cache.get(row)
        if document is None:
            terms: List[str] = []
            vocabulary = self.vocabulary
            for position in range(
                int(self._indptr[row]), int(self._indptr[row + 1])
            ):
                terms.extend(
                    [vocabulary[int(self._term_codes[position])]]
                    * int(self._term_counts[position])
                )
            document = Document(
                doc_id=self.doc_ids[row],
                stream_id=self._stream_ids[int(self._stream_codes[row])],
                timestamp=int(self._timestamps[row]),
                terms=tuple(terms),
                event_id=self._event_ids.get(str(row)),
            )
            self._cache[row] = document
        return document

    def all_documents(self) -> Iterator[Document]:
        """Materialise every row, in stored (save-time) order."""
        # Bulk path: plain Python lists beat per-row memmap indexing.
        indptr = self._indptr.tolist()
        codes = self._term_codes.tolist()
        counts = self._term_counts.tolist()
        stream_codes = self._stream_codes.tolist()
        timestamps = self._timestamps.tolist()
        vocabulary = self.vocabulary
        cache = self._cache
        for row, doc_id in enumerate(self.doc_ids):
            document = cache.get(row)
            if document is None:
                terms: List[str] = []
                for position in range(indptr[row], indptr[row + 1]):
                    terms.extend([vocabulary[codes[position]]] * counts[position])
                document = Document(
                    doc_id=doc_id,
                    stream_id=self._stream_ids[stream_codes[row]],
                    timestamp=timestamps[row],
                    terms=tuple(terms),
                    event_id=self._event_ids.get(str(row)),
                )
                cache[row] = document
            yield document


class LazyDocumentMap(dict):
    """doc-id → :class:`Document` map materialising entries on miss.

    A drop-in for the dict the engines build from
    ``collection.documents()``: serving a query touches only the
    result documents, so a cold start materialises ``k`` rows, not the
    corpus.
    """

    def __init__(self, table: DocumentTable) -> None:
        super().__init__()
        self._table = table

    def __missing__(self, doc_id: Hashable) -> Document:
        row = self._table.row_of(doc_id)
        if row is None:
            raise KeyError(doc_id)
        document = self._table.document_at(row)
        self[doc_id] = document
        return document


class StoredCollection(SpatiotemporalCollection):
    """A collection view over a document segment, inflated on demand.

    Scalar reads (``vocabulary``, ``document_count``, ``locations``,
    ``stream_ids``) come straight from the segment metadata; anything
    that walks or mutates documents triggers one full materialisation,
    after which the instance behaves exactly like the collection it was
    saved from (same ``documents()`` order, same per-stream state).
    """

    def __init__(self, table: DocumentTable) -> None:
        super().__init__(table.timeline if table.timeline > 0 else 1)
        self._table = table
        self._materialised = False
        for sid, point in table.locations.items():
            self.add_stream(sid, point)
        self._vocabulary.update(table.vocabulary)

    # -- materialisation ------------------------------------------------
    def _materialise(self) -> None:
        if self._materialised:
            return
        self._materialised = True
        version = self._version
        for document in self._table.all_documents():
            super().add_document(document)
        # Loading is not a mutation: derived views (posting segments,
        # doc maps) built against the store remain exactly current.
        self._version = version

    # -- mutations ------------------------------------------------------
    def add_document(self, document: Document) -> None:
        self._materialise()
        super().add_document(document)

    # -- document-backed reads ------------------------------------------
    def documents(self):
        self._materialise()
        return super().documents()

    def documents_matching(self, terms):
        self._materialise()
        return super().documents_matching(terms)

    def snapshot(self, timestamp: int):
        self._materialise()
        return super().snapshot(timestamp)

    def frequency(self, stream_id, timestamp: int, term: str) -> int:
        self._materialise()
        return super().frequency(stream_id, timestamp, term)

    def frequency_sequence(self, stream_id, term: str):
        self._materialise()
        return super().frequency_sequence(stream_id, term)

    def frequency_matrix(self, term: str):
        self._materialise()
        return super().frequency_matrix(term)

    def merged_frequency_sequence(self, term: str):
        self._materialise()
        return super().merged_frequency_sequence(term)

    def terms_at(self, timestamp: int):
        self._materialise()
        return super().terms_at(timestamp)

    def stream(self, stream_id):
        self._materialise()
        return super().stream(stream_id)

    def streams(self):
        self._materialise()
        return super().streams()

    # -- scalar reads served from metadata ------------------------------
    @property
    def document_count(self) -> int:
        if not self._materialised:
            return len(self._table)
        return self._document_count
