"""Durable index stores: save, load, verify.

Three store *kinds*, all sharing the segment format of
:mod:`repro.store.format`:

* ``index`` — a complete serving snapshot: document/stream tables,
  mined patterns, per-term posting columns and (when persistable) the
  mined tracker state.  :meth:`repro.search.BurstySearchEngine.
  from_store` cold-starts a query-ready engine from one of these
  without re-mining anything.
* ``patterns`` — mining output only (term → patterns, plus tracker
  state when available): what ``BatchMiner.mine_*(save_to=...)``
  writes, for pipelines that mine once and score elsewhere.
* ``live`` — a :class:`repro.live.LiveSearchEngine` checkpoint:
  arrival-ordered document table, sealed tracker state, compacted
  posting bases, per-term sync cursors, watermark and epoch — enough
  to resume ingestion and serving exactly where the saved engine
  stopped, without replaying the feed.

``verify_store`` is the acceptance oracle behind ``repro load
--verify``: it cold-rebuilds the index from the store's own document
table and byte-compares patterns, posting columns (ids, float bits,
crc32 tiebreaks) and top-k rankings across every execution strategy.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Union

from repro.errors import StoreCorruptionError, StoreError
from repro.store.format import SegmentReader, SegmentWriter
from repro.store.segments import (
    PostingSegment,
    decode_config,
    decode_documents,
    decode_patterns,
    decode_trackers,
    encode_config,
    encode_documents,
    encode_patterns,
    encode_posting_lists,
    encode_trackers,
    trackers_persistable,
)

__all__ = [
    "load_patterns",
    "load_search_engine",
    "load_trackers",
    "open_store",
    "save_patterns",
    "save_search_index",
    "verify_store",
]

StoreLike = Union[str, SegmentReader]


def open_store(
    path: StoreLike, mmap: bool = True, verify: bool = True
) -> SegmentReader:
    """Open a store directory (pass-through for an already-open reader)."""
    if isinstance(path, SegmentReader):
        return path
    return SegmentReader(path, mmap=mmap, verify=verify)


# ----------------------------------------------------------------------
# Pattern stores (BatchMiner.save_to)
# ----------------------------------------------------------------------
def save_patterns(
    path: str,
    patterns: Dict[str, Sequence],
    pattern_type: str,
    terms: Optional[Sequence[str]] = None,
    trackers: Optional[Dict] = None,
    locations: Optional[Dict] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Persist a mining result (and, when possible, its tracker state).

    Tracker state is stored only when every tracker uses the default
    persistable expectation model; otherwise the patterns still save
    and ``metadata["trackers"]`` records the omission.
    """
    writer = SegmentWriter(path)
    encode_patterns(writer, "patterns", patterns, pattern_type)
    meta = dict(metadata or {})
    meta["pattern_type"] = pattern_type
    meta["terms"] = list(terms) if terms is not None else list(patterns)
    meta["trackers"] = False
    if trackers and locations is not None and trackers_persistable(trackers):
        encode_documents_streams_only(writer, "trackers_streams", locations)
        encode_trackers(writer, "trackers", trackers)
        meta["trackers"] = True
    writer.commit("patterns", meta)


def encode_documents_streams_only(writer, prefix, locations) -> None:
    """Persist just a stream table (for tracker-only segments)."""
    encode_documents(writer, prefix, 0, locations, [])


def load_patterns(path: StoreLike, **open_kwargs) -> Dict[str, List]:
    """Load the term → patterns map of a ``patterns`` or ``index`` store."""
    store = open_store(path, **open_kwargs)
    _, patterns = decode_patterns(store, "patterns")
    return patterns


def load_trackers(path: StoreLike, **open_kwargs):
    """Load persisted tracker state as ``(config, term → tracker)``.

    Raises:
        StoreError: when the store carries no tracker segment.
    """
    store = open_store(path, **open_kwargs)
    if not store.metadata.get("trackers"):
        raise StoreError(
            f"store {store.path!r} holds no tracker state (it was mined "
            "with a non-persistable baseline, sharded across workers, or "
            "saved patterns-only)"
        )
    prefix = (
        "trackers_streams" if store.has("trackers_streams/meta.json")
        else "documents"
    )
    _, locations, _ = decode_documents(store, prefix)
    return decode_trackers(store, "trackers", locations)


# ----------------------------------------------------------------------
# Full search-index stores
# ----------------------------------------------------------------------
def _encode_miner_config(pattern_type: str, config) -> Optional[Dict[str, Any]]:
    """Mining settings as manifest metadata (best effort).

    ``--verify`` must re-mine with the configuration the store was
    mined under, or a faithful store false-fails against a
    differently-tuned cold run.  Returns ``None`` when the
    configuration has no stable representation (custom baseline
    callables) — verification then falls back to defaults.
    """
    if config is None:
        return None
    if pattern_type == "combinatorial":
        return {
            "max_patterns": config.max_patterns,
            "min_interval_score": config.min_interval_score,
            "min_pattern_streams": config.min_pattern_streams,
        }
    try:
        return encode_config(config)
    except StoreError:
        return None


def _decode_miner(pattern_type: str, payload: Optional[Dict[str, Any]]):
    from repro.pipeline.batch import BatchMiner

    if payload is None:
        return BatchMiner()
    if pattern_type == "combinatorial":
        from repro.core.config import STCombConfig
        from repro.core.stcomb import STComb

        config = STCombConfig(
            max_patterns=payload["max_patterns"],
            min_interval_score=payload["min_interval_score"],
            min_pattern_streams=payload["min_pattern_streams"],
        )
        return BatchMiner(stcomb=STComb(config=config))
    from repro.core.stlocal import STLocal

    return BatchMiner(stlocal=STLocal(decode_config(payload)))


def _callable_fingerprint(fn) -> str:
    """Best-effort identity of a scoring callable for mismatch checks."""
    return "{}.{}".format(
        getattr(fn, "__module__", "?"),
        getattr(fn, "__qualname__", repr(fn)),
    )


def _check_scoring_fingerprints(store: SegmentReader, engine) -> None:
    """Reject engine/store pairs whose scoring callables diverge.

    Persisted posting scores embed the relevance/aggregate functions
    they were computed with; serving (or appending deltas to) them
    through different callables would silently mix two scoring models
    in one index.  Callables cannot be persisted, so the manifest
    records their module-qualified names and restore insists they
    match.
    """
    recorded = store.metadata.get("scoring")
    if not recorded:
        return
    current = {
        "relevance": _callable_fingerprint(engine.relevance),
        "aggregate": _callable_fingerprint(engine.aggregate),
    }
    if current != recorded:
        raise StoreError(
            f"store {store.path!r} was scored with "
            f"relevance={recorded['relevance']} / "
            f"aggregate={recorded['aggregate']}, but this engine uses "
            f"relevance={current['relevance']} / "
            f"aggregate={current['aggregate']} — construct the engine "
            "with the same scoring callables the store was saved with"
        )


def save_search_index(
    path: str,
    engine,
    pattern_type: str,
    terms: Optional[Sequence[str]] = None,
    trackers: Optional[Dict] = None,
    miner_config=None,
    metadata: Optional[Dict[str, Any]] = None,
    planner=None,
    codec: str = "raw",
) -> None:
    """Persist a complete :class:`BurstySearchEngine` serving snapshot.

    Args:
        path: Target directory (must be new or empty).
        engine: The engine to snapshot; its posting lists are
            precomputed first so the store captures every
            pattern-bearing term.
        pattern_type: ``"regional"`` or ``"combinatorial"``.
        terms: The term list that was *requested* for mining (defaults
            to the pattern-bearing terms); recorded so ``--verify`` can
            re-mine the same scope.
        trackers: Optional mined tracker state to persist alongside.
        miner_config: The :class:`STLocalConfig` / :class:`STCombConfig`
            the patterns were mined with; recorded so ``--verify``
            re-mines under the same settings (defaults assumed when
            omitted).
        metadata: Extra manifest metadata.
        planner: A :class:`~repro.search.planner.CalibratedPlanner`
            whose calibration state (fitted cost model, term-set
            memory, hot-combination support) is stored as the
            ``planner/model`` segment; defaults to the engine's own
            attached planner.  :func:`load_search_engine` re-attaches
            it, so a reloaded store plans queries identically.
        codec: Posting-column layout — ``"raw"`` (format v1, plain
            ``<i8``/``<f8`` columns) or ``"packed"`` (format v2,
            block-compressed; see :mod:`repro.store.codec`).  Decoded
            postings are byte-identical either way.
    """
    engine.precompute()
    writer = SegmentWriter(path)
    collection = engine.collection
    encode_documents(
        writer,
        "documents",
        collection.timeline,
        collection.locations(),
        list(collection.documents()),
    )
    patterns = {
        term: list(mined) for term, mined in engine._patterns.items() if mined
    }
    encode_patterns(writer, "patterns", patterns, pattern_type)
    lists = {
        term: engine._posting_list(term) for term in patterns
    }
    encode_posting_lists(writer, "postings", lists, codec=codec)
    meta = dict(metadata or {})
    meta["pattern_type"] = pattern_type
    meta["terms"] = list(terms) if terms is not None else list(patterns)
    meta["documents"] = collection.document_count
    meta["streams"] = len(collection.locations())
    if codec != "raw":
        # Raw manifests stay byte-identical to pre-codec stores.
        meta["codec"] = codec
    meta["miner_config"] = _encode_miner_config(pattern_type, miner_config)
    meta["scoring"] = {
        "relevance": _callable_fingerprint(engine.relevance),
        "aggregate": _callable_fingerprint(engine.aggregate),
    }
    meta["trackers"] = False
    if trackers and trackers_persistable(trackers):
        encode_trackers(writer, "trackers", trackers)
        meta["trackers"] = True
    if planner is None:
        planner = getattr(engine, "planner", None)
    meta["planner"] = False
    if planner is not None:
        writer.add_json("planner/model", planner.to_payload())
        meta["planner"] = True
    writer.commit("index", meta)


#: Posting-column payload files degraded-mode serving can lose without
#: losing the store's structure: per-term damage inside any of these is
#: isolated by the per-term CRCs and quarantined at first touch.  The
#: skeleton files (``meta.json``, ``indptr.npy``, ``doc_table*``, the
#: shadow CSR) stay hard failures — without them no term can be trusted.
_DEGRADABLE_POSTING_FILES = frozenset(
    [
        "rows.npy",
        "scores.npy",
        "ties.npy",
        "rows_payload.npy",
        "rows_meta.npy",
        "rows_blocks.npy",
        "ties_payload.npy",
        "ties_meta.npy",
        "ties_blocks.npy",
        "scores_dict.npy",
        "scores_payload.npy",
        "scores_meta.npy",
        "scores_residual.npy",
        "scores_bounds.npy",
        "scores_blocks.npy",
    ]
)


def load_search_engine(path: StoreLike, **engine_kwargs):
    """Cold-start a :class:`BurstySearchEngine` from an ``index`` store.

    The document and stream tables are materialised (the engine hands
    real :class:`~repro.streams.Document` objects back to callers); the
    posting columns stay memory-mapped and are wrapped into
    :class:`~repro.columnar.postings.PostingArray` views lazily, per
    queried term.

    ``on_corruption`` selects the failure policy:

    * ``"fail"`` (default) — any checksum mismatch raises
      :class:`~repro.errors.StoreCorruptionError` (subject to the
      ``verify`` flag, as before);
    * ``"degrade"`` — damage confined to posting *payload* columns (or
      a stale planner model) is survivable: every term is audited
      against its stored CRC on first touch, damaged terms are
      quarantined and reported, and serving continues over healthy
      terms.  Damage to structural segments (documents, patterns,
      posting skeletons) still raises — there is no safe subset to
      serve without them.
    """
    from repro.search.engine import BurstySearchEngine
    from repro.store.collection import (
        DocumentTable,
        LazyDocumentMap,
        LazyPatternMap,
        StoredCollection,
    )

    on_corruption = engine_kwargs.pop("on_corruption", "fail")
    if on_corruption not in ("fail", "degrade"):
        raise StoreError(
            f"unknown on_corruption policy {on_corruption!r}: expected "
            "'fail' or 'degrade'"
        )
    mmap = engine_kwargs.pop("mmap", True)
    verify = engine_kwargs.pop("verify", True)
    damage: Dict[str, str] = {}
    if on_corruption == "degrade":
        store = open_store(path, mmap=mmap, verify=False)
        damage = {
            name: verdict
            for name, verdict in store.checksum_report().items()
            if verdict != "ok"
        }
        hard = {
            name: verdict
            for name, verdict in damage.items()
            if not (
                name == "planner/model"
                or (
                    name.startswith("postings/")
                    and name.rsplit("/", 1)[1] in _DEGRADABLE_POSTING_FILES
                )
            )
        }
        if hard:
            name, verdict = sorted(hard.items())[0]
            raise StoreCorruptionError(
                f"cannot serve degraded from store {store.path!r}: "
                f"segment file {name!r} is structural, not a posting "
                f"payload ({verdict}) — run `repro repair --quarantine` "
                "or re-save the store"
            )
    else:
        store = open_store(path, mmap=mmap, verify=verify)
    if store.kind != "index":
        raise StoreError(
            f"store {store.path!r} is a {store.kind!r} store, not an "
            "'index' store — only full serving snapshots can cold-start "
            "an engine"
        )
    table = DocumentTable(store, "documents")
    engine = BurstySearchEngine(
        StoredCollection(table), {}, precompute=False, **engine_kwargs
    )
    _check_scoring_fingerprints(store, engine)
    # Serving a query materialises only its k result documents and the
    # queried terms' posting columns; the pattern map and the full
    # corpus inflate lazily, and only if something walks them.
    engine._patterns = LazyPatternMap(store, "patterns")
    segments = PostingSegment(store, "postings")
    if on_corruption == "degrade":
        # Audit every term at first touch: a mismatch quarantines that
        # term only, and the engine keeps serving the healthy ones.
        segments.verify_terms = True
        engine._on_corruption = "degrade"
    engine._segments = segments
    engine._doc_map = LazyDocumentMap(table)
    planner_damage = damage.get("planner/model")
    if planner_damage is not None:
        engine._degraded["(planner)"] = (
            f"planner model dropped: {planner_damage}"
        )
    elif engine.planner is None and store.has("planner/model"):
        from repro.search.planner import CalibratedPlanner

        engine.planner = CalibratedPlanner.from_payload(
            store.json("planner/model")
        )
    return engine


# ----------------------------------------------------------------------
# Verification (repro load --verify)
# ----------------------------------------------------------------------
def _ranking(results) -> List:
    return [(r.document.doc_id, r.score) for r in results]


def _bits(array) -> bytes:
    import numpy as np

    return np.ascontiguousarray(np.asarray(array)).tobytes()


def verify_store(path: StoreLike, k: int = 10) -> List[str]:
    """Byte-compare a store against a cold rebuild of its own corpus.

    For ``index`` stores: re-mines the stored term scope from the
    reloaded collection, rebuilds a fresh engine, and asserts stored
    patterns, posting columns (doc ids, score float bits, crc32
    tiebreak order) and per-strategy top-k rankings are all identical.
    For ``live`` stores: restores the checkpoint and compares its
    serving output against a cold batch rebuild, mirroring
    ``repro ingest --verify``.

    Returns:
        Human-readable check lines.

    Raises:
        StoreError: on the first divergence.
    """
    store = open_store(path)
    if store.kind == "live":
        return _verify_live_store(store, k)
    if store.kind != "index":
        raise StoreError(
            f"store {store.path!r} is a {store.kind!r} store; --verify "
            "supports 'index' and 'live' stores"
        )

    from repro.search.engine import BurstySearchEngine

    checks: List[str] = []
    engine = load_search_engine(store)
    collection = engine.collection
    terms: List[str] = list(store.metadata.get("terms", []))
    pattern_type = store.metadata.get("pattern_type", "regional")
    # Re-mine under the configuration the store was mined with — a
    # faithful store must not false-fail against differently-tuned
    # defaults.
    miner = _decode_miner(pattern_type, store.metadata.get("miner_config"))
    if pattern_type == "regional":
        mined = miner.mine_regional(collection, terms)
    else:
        mined = miner.mine_combinatorial(collection, terms)
    stored_patterns = {
        term: list(mined_patterns)
        for term, mined_patterns in engine._patterns.items()
        if mined_patterns
    }
    if stored_patterns != mined:
        diverging = sorted(
            term
            for term in set(stored_patterns) | set(mined)
            if stored_patterns.get(term) != mined.get(term)
        )
        raise StoreError(
            f"stored patterns diverge from a cold re-mine for terms "
            f"{diverging[:5]} — the store does not match its own corpus"
        )
    checks.append(
        f"patterns: {sum(len(p) for p in mined.values())} across "
        f"{len(mined)} term(s) identical to cold re-mine"
    )

    cold = BurstySearchEngine(collection, mined)
    segment = engine._segments
    for term in segment.terms:
        ids, scores, ties = segment.columns(term)
        cold_list = cold._posting_list(term)
        cold_ids, cold_scores, cold_ties = cold_list.columns()
        if (
            ids != list(cold_ids)
            or _bits(scores) != _bits(cold_scores)
            or _bits(ties) != _bits(cold_ties)
        ):
            raise StoreError(
                f"posting columns for term {term!r} diverge from a cold "
                "rebuild (ids, score bits or tiebreak order)"
            )
    checks.append(
        f"postings: {len(segment.terms)} term column(s) byte-identical "
        "to cold rebuild"
    )

    queries = list(segment.terms[:8])
    if len(segment.terms) >= 2:
        queries.append(" ".join(segment.terms[:2]))
    for query in queries:
        for strategy in ("ta", "blockmax", "scan"):
            loaded = _ranking(engine.search(query, k=k, strategy=strategy))
            rebuilt = _ranking(cold.search(query, k=k, strategy=strategy))
            if loaded != rebuilt:
                raise StoreError(
                    f"top-{k} ranking for query {query!r} under strategy "
                    f"{strategy!r} diverges between the loaded store and "
                    "a cold rebuild"
                )
    checks.append(
        f"top-{k}: {len(queries)} query(ies) x 3 strategies byte-identical"
    )
    return checks


def _verify_live_store(store: SegmentReader, k: int) -> List[str]:
    from repro.core.stlocal import STLocal
    from repro.live.engine import LiveSearchEngine
    from repro.pipeline.batch import BatchMiner
    from repro.search.engine import BurstySearchEngine
    from repro.streams.collection import SpatiotemporalCollection

    engine = LiveSearchEngine.from_checkpoint(store)
    live = engine.live
    cold = SpatiotemporalCollection(live.timeline)
    for sid, point in live.locations().items():
        cold.add_stream(sid, point)
    for document in live.collection.documents():
        cold.add_document(document)
    # Cold-mine under the checkpoint's own STLocal settings (restore
    # just decoded them into engine.config).
    mined = BatchMiner(stlocal=STLocal(engine.config)).mine_regional(cold)
    batch_engine = BurstySearchEngine(cold, mined)
    terms = [
        state["term"] for state in store.json("live/meta.json")["states"]
    ] or sorted(live.vocabulary)
    checks: List[str] = []
    for term in terms:
        lively = _ranking(engine.search(term, k=k))
        coldly = _ranking(batch_engine.search(term, k=k))
        if lively != coldly:
            raise StoreError(
                f"restored live top-{k} for {term!r} diverges from a cold "
                "batch rebuild"
            )
    checks.append(
        f"live checkpoint: top-{k} for {len(terms)} term(s) identical to "
        "cold batch rebuild"
    )
    return checks


# ----------------------------------------------------------------------
# Live checkpoints
# ----------------------------------------------------------------------
def save_live_checkpoint(path: str, engine, codec: str = "raw") -> None:
    """Persist a :class:`LiveSearchEngine` checkpoint (see module doc)."""
    live = engine.live
    for term in engine.index.terms():
        engine.index.compact_pending(term)
    config = engine.config
    if config is None:
        from repro.core.config import STLocalConfig

        config = STLocalConfig()
    config_payload = encode_config(config)

    writer = SegmentWriter(path)
    encode_documents(
        writer,
        "documents",
        live.timeline,
        live.locations(),
        live.ingested_documents(),
    )
    states = engine._states
    patterns = {term: list(state.patterns) for term, state in states.items()}
    encode_patterns(writer, "patterns", patterns, "regional")
    lists = {term: engine.index.get(term) for term in engine.index.terms()}
    encode_posting_lists(writer, "postings", lists, codec=codec)
    trackers = engine._feeder._trackers if engine._feeder is not None else {}
    encode_trackers(writer, "trackers", trackers)
    writer.add_json(
        "live/meta.json",
        {
            "watermark": live.watermark,
            "epoch": live.epoch,
            "config": config_payload,
            "compaction_threshold": engine.index.compaction_threshold,
            "states": [
                {
                    "term": term,
                    "version": state.version,
                    "doc_cursor": state.doc_cursor,
                }
                for term, state in states.items()
            ],
        },
    )
    writer.commit(
        "live",
        {
            "documents": live.document_count,
            "streams": len(live.locations()),
            "watermark": live.watermark,
            "epoch": live.epoch,
            "terms": list(states),
            "scoring": {
                "relevance": _callable_fingerprint(engine.relevance),
                "aggregate": _callable_fingerprint(engine.aggregate),
            },
        },
    )


def restore_live_checkpoint(path: StoreLike, engine) -> None:
    """Load a ``live`` checkpoint into an existing engine (in place).

    Replaces the engine's collection, index, tracker feeder and
    per-term sync state with the persisted snapshot, resets the serving
    statistics and clears the result cache — counters and cached
    rankings describe the *previous* backing index, and surviving a
    restore would report stale hit-rates for an index they never
    measured.
    """
    from repro.live.collection import LiveCollection
    from repro.live.engine import _TermState, ServingStats
    from repro.live.index import LiveIndex
    from repro.pipeline.incremental import IncrementalFeeder

    store = open_store(path)
    if store.kind != "live":
        raise StoreError(
            f"store {store.path!r} is a {store.kind!r} store, not a "
            "'live' checkpoint"
        )
    # Persisted posting bases embed the checkpoint engine's scoring
    # callables; appending deltas scored by different ones would mix
    # two scoring models in one list.
    _check_scoring_fingerprints(store, engine)
    live_meta = store.json("live/meta.json")
    timeline, locations, documents = decode_documents(store, "documents")
    live = LiveCollection(timeline)
    for sid, point in locations.items():
        live.add_stream(sid, point)
    for document in documents:
        live.ingest(document)
    watermark = int(live_meta["watermark"])
    if watermark > live.watermark:
        live.advance_to(watermark)
    # The epoch counts every historical mutation (including empty
    # advance ticks the document table cannot reproduce); restore the
    # persisted value so cache keys continue the same sequence.
    live._epoch = int(live_meta["epoch"])

    config = decode_config(live_meta["config"])
    if engine.config is not None:
        if encode_config(engine.config) != live_meta["config"]:
            raise StoreError(
                "checkpoint was written with different STLocal settings "
                "than this engine's config — construct the engine with a "
                "matching config (or config=None) before restoring"
            )
    engine.config = config
    feeder = IncrementalFeeder(live.locations(), config)
    _, trackers = decode_trackers(
        store, "trackers", feeder.locations, config=config, index=feeder._index
    )
    feeder._trackers.update(trackers)

    index = LiveIndex(int(live_meta["compaction_threshold"]))
    postings = PostingSegment(store, "postings")
    for term in postings.terms:
        index.set_base(term, postings.posting_array(term))

    _, patterns = decode_patterns(store, "patterns")
    states = {}
    for state in live_meta["states"]:
        term = state["term"]
        states[term] = _TermState(
            patterns=list(patterns.get(term, [])),
            version=int(state["version"]),
            doc_cursor=int(state["doc_cursor"]),
        )

    engine.live = live
    engine._feeder = feeder
    engine.index = index
    engine._states = states
    engine._cache.clear()
    engine.stats = ServingStats()
