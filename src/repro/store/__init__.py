"""Durable segment store: mmap-backed index persistence.

Process restarts used to pay a full corpus rebuild — mine, columnar
precompute, posting construction — before the first query could be
served.  This package persists every serving structure as immutable
little-endian segments under a crash-safe manifest (write-temp +
``fsync`` + atomic rename, CRC-32 per file, format and library version
stamps), and loads them back through zero-copy ``np.memmap`` views, so
a saved index cold-starts in milliseconds instead of re-mining.

Entry points:

* :func:`save_search_index` / :func:`load_search_engine` — full
  serving snapshots (also reachable as
  :meth:`repro.search.BurstySearchEngine.from_store`);
* :func:`save_patterns` / :func:`load_patterns` /
  :func:`load_trackers` — mining output (written by
  ``BatchMiner.mine_*(save_to=...)``);
* :meth:`repro.live.LiveSearchEngine.checkpoint` / ``restore`` — live
  serving checkpoints (implemented here);
* :func:`verify_store` — byte-compares a store against a cold rebuild
  of its own corpus (``repro load --verify``).
"""

from repro.store.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SegmentReader,
    SegmentWriter,
)
from repro.store.store import (
    load_patterns,
    load_search_engine,
    load_trackers,
    open_store,
    save_patterns,
    save_search_index,
    verify_store,
)
from repro.store.store import (  # noqa: F401  (live wiring helpers)
    restore_live_checkpoint,
    save_live_checkpoint,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SegmentReader",
    "SegmentWriter",
    "load_patterns",
    "load_search_engine",
    "load_trackers",
    "open_store",
    "restore_live_checkpoint",
    "save_live_checkpoint",
    "save_patterns",
    "save_search_index",
    "verify_store",
]
