"""Packed posting-column codec: block-compressed, byte-exact on decode.

The raw posting layout (:mod:`repro.store.segments`) spends 24 bytes
per posting — ``<i8`` doc-table row, ``<f8`` score, ``<i8`` crc32
tiebreak — which makes the mmap working set, not compute, the serving
bottleneck at the corpus scales the ROADMAP targets.  This module is
the compact read-path layout: every column is cut into fixed-size
blocks (:data:`PACK_BLOCK` postings, restarting at each list boundary)
and each block is encoded independently, so a reader can decode *only*
the blocks a query touches.

* **Integer columns** (doc-table rows, tiebreaks) use per-block
  frame-of-reference bit packing: the block stores its minimum value
  and the minimal bit width of the offsets from it.  Doc rows of an
  ``n``-document corpus need ``~log2(n)`` bits instead of 64; crc32
  tiebreaks need at most 32.
* **Score columns** are block-quantized against a shared value
  dictionary: the distinct float64 bit patterns of the column (scores
  repeat heavily — documents sharing a term count and a pattern share
  a score) are stored once, exactly, and each posting carries a
  bit-packed dictionary code.  Values beyond the dictionary cap take an
  escape code and land, bit-exact, in a ``<f8`` residual column — so
  reconstruction is *byte-identical* for every input, NaN payloads and
  subnormals included.
* **Block headers** additionally record each score block's first
  (maximum) and last (minimum) value, so block-max top-k bounds are
  answered from the header without decompressing the block.

All bit manipulation happens on ``<u8`` views — two's-complement
wraparound arithmetic makes frame-of-reference exact for any ``int64``
range — and every persisted dtype is an explicit little-endian (or
order-free byte) string, per the store's dtype discipline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError

__all__ = [
    "PACK_BLOCK",
    "MAX_SCORE_DICT",
    "PackedIntLists",
    "PackedScoreLists",
    "pack_int_lists",
    "pack_score_lists",
]

#: Postings per compression block.  Divides the top-k kernel's default
#: sorted-access round (1024), so round frontiers land on block-final
#: positions and block-max bounds come straight from the headers.
PACK_BLOCK = 128

#: Distinct score values the shared dictionary may hold; the overflow
#: (rare, by construction of the scoring model) escapes to the exact
#: ``<f8`` residual column.
MAX_SCORE_DICT = 1 << 16

_U64_MASK = 0xFFFFFFFFFFFFFFFF


def _as_u64(values: np.ndarray) -> np.ndarray:
    """Bit-reinterpret an ``int64`` column as ``uint64`` (no copy)."""
    arr = np.ascontiguousarray(values).astype("<i8", copy=False)
    return arr.view("<u8")


def _pack_block(offsets: np.ndarray, width: int) -> np.ndarray:
    """Pack ``offsets`` (``uint64`` < 2**width) into little-endian bits."""
    if width == 0:
        return np.zeros(0, dtype="|u1")
    shifts = np.arange(width, dtype="<u8")
    bits = ((offsets[:, None] >> shifts[None, :]) & np.uint64(1)).astype(
        "|u1"
    )
    return np.packbits(bits.reshape(-1), bitorder="little")


#: Memoised unaligned-gather geometry per ``(width, count)`` shape:
#: ``(byte-index matrix, bit shifts, value mask)``.  Shapes recur
#: constantly (full blocks and equal-width runs all share a handful of
#: widths), and building the index matrix costs more than the gather
#: itself; bounded so adversarial shape streams cannot grow it.
_GATHER_PLANS: dict = {}
_GATHER_PLAN_LIMIT = 512


def _gather_plan(width: int, count: int):
    plan = _GATHER_PLANS.get((width, count))
    if plan is None:
        starts = np.arange(count, dtype="<i8") * width
        idx = (starts >> 3)[:, None] + np.arange(8, dtype="<i8")
        shifts = (starts & 7).view("<u8")
        plan = (idx, shifts, np.uint64((1 << width) - 1))
        if len(_GATHER_PLANS) >= _GATHER_PLAN_LIMIT:
            _GATHER_PLANS.clear()
        _GATHER_PLANS[(width, count)] = plan
    return plan


def _unpack_block(
    payload: np.ndarray, width: int, count: int
) -> np.ndarray:
    """Inverse of :func:`_pack_block`: ``count`` ``uint64`` offsets.

    Values up to 57 bits decode with one unaligned-word gather: value
    ``i`` occupies bits ``[i*width, (i+1)*width)`` of the little-endian
    stream, so reading the 8 bytes at ``(i*width) >> 3`` as a word and
    shifting by ``(i*width) & 7`` exposes it in the low bits — three
    vector ops, no per-bit expansion.  The byte-index matrix and shift
    column depend only on ``(width, count)``, which repeat across every
    block of a column, so they are memoised.  Wider values (58–64 bits
    — only adversarial tiebreak columns in practice) take the exact
    bit-matrix path.
    """
    if width == 0:
        return np.zeros(count, dtype="<u8")
    nbytes = _block_bytes(count, width)
    if width <= 57:
        padded = np.zeros(nbytes + 8, dtype="|u1")
        padded[:nbytes] = payload[:nbytes]
        idx, shifts, mask = _gather_plan(width, count)
        words = padded[idx].view("<u8").reshape(count)
        return (words >> shifts) & mask
    bits = np.unpackbits(
        np.ascontiguousarray(payload), count=count * width, bitorder="little"
    )
    by_byte = np.packbits(
        bits.reshape(count, width), axis=1, bitorder="little"
    )
    out = by_byte[:, 0].astype("<u8")
    for index in range(1, by_byte.shape[1]):
        out |= by_byte[:, index].astype("<u8") << np.uint64(8 * index)
    return out


def _block_bytes(count: int, width: int) -> int:
    return (count * width + 7) // 8


def _unpack_list(
    payload: np.ndarray, meta: np.ndarray, length: int
) -> np.ndarray:
    """Decode all blocks of one list (``meta`` rows) in one pass.

    Consecutive *full* blocks that share a bit width form one
    contiguous little-endian bitstream (every full block is exactly
    ``PACK_BLOCK * width / 8`` bytes), so each equal-width run costs a
    single :func:`np.unpackbits` instead of one per block — the widths
    of a column are near-constant in practice, so a full-list decode
    collapses to a handful of vector calls.  Per-block frame-of-
    reference bases are added back with one ``np.repeat``.  Returns the
    ``uint64`` domain values (base + offset, wraparound).
    """
    nblocks = meta.shape[0]
    bases = np.ascontiguousarray(meta[:, 0]).view("<u8")
    widths = meta[:, 1].tolist()
    out = np.empty(length, dtype="<u8")
    full = nblocks - 1 if length % PACK_BLOCK else nblocks
    local = 0
    while local < full:
        width = widths[local]
        run = local + 1
        while run < full and widths[run] == width:
            run += 1
        count = (run - local) * PACK_BLOCK
        start = local * PACK_BLOCK
        if width == 0:
            offs = np.zeros(count, dtype="<u8")
        else:
            begin = int(meta[local, 2])
            raw = payload[begin : begin + _block_bytes(count, width)]
            offs = _unpack_block(raw, width, count)
        out[start : start + count] = offs + np.repeat(
            bases[local:run], PACK_BLOCK
        )
        local = run
    if full < nblocks:  # trailing partial block
        width = widths[full]
        begin = int(meta[full, 2])
        tail = length - full * PACK_BLOCK
        raw = payload[begin : begin + _block_bytes(tail, width)]
        out[full * PACK_BLOCK :] = _unpack_block(raw, width, tail) + bases[
            full
        ]
    return out


def _iter_blocks(lo: int, hi: int):
    """Block start offsets of one list's ``[lo, hi)`` value range."""
    return range(lo, hi, PACK_BLOCK)


# ----------------------------------------------------------------------
# Integer columns: per-block frame-of-reference bit packing
# ----------------------------------------------------------------------
def pack_int_lists(
    values: Sequence[int], indptr: Sequence[int]
) -> Dict[str, np.ndarray]:
    """Pack a CSR of ``int64`` lists into block payloads.

    Returns the arrays the posting encoder persists: ``payload``
    (``|u1`` packed bits), ``meta`` (``<i8`` of shape ``[n_blocks, 3]``:
    block base value, bit width, payload byte offset) and
    ``block_indptr`` (``<i8``, per-list block ranges into ``meta``).
    """
    arr = np.ascontiguousarray(np.asarray(values), dtype="<i8")
    bounds = [int(p) for p in indptr]
    meta_rows: List[Tuple[int, int, int]] = []
    chunks: List[np.ndarray] = []
    block_indptr = [0]
    offset = 0
    unsigned = _as_u64(arr)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        for start in _iter_blocks(lo, hi):
            stop = min(start + PACK_BLOCK, hi)
            block = arr[start:stop]
            base = int(block.min())
            offs = unsigned[start:stop] - np.uint64(base & _U64_MASK)
            width = int(offs.max()).bit_length()
            meta_rows.append((base, width, offset))
            chunk = _pack_block(offs, width)
            chunks.append(chunk)
            offset += int(chunk.size)
        block_indptr.append(len(meta_rows))
    payload = (
        np.concatenate(chunks) if chunks else np.zeros(0, dtype="|u1")
    )
    return {
        "payload": payload,
        "meta": np.asarray(meta_rows, dtype="<i8").reshape(-1, 3),
        "block_indptr": np.asarray(block_indptr, dtype="<i8"),
    }


class PackedIntLists:
    """Block-granular reader over :func:`pack_int_lists` output.

    Decoded blocks are cached by global block index, so prefix-ordered
    consumers (sorted access, block-at-a-time top-k rounds) decode each
    touched block exactly once and untouched blocks never leave the
    mmap payload.  ``blocks_decoded`` counts cache misses — benches and
    tests assert laziness through it.
    """

    def __init__(
        self,
        payload: np.ndarray,
        meta: np.ndarray,
        block_indptr: np.ndarray,
        indptr: np.ndarray,
    ) -> None:
        self._payload = payload
        # Headers are hot (every granular read consults them) and tiny
        # (a few KB per column); materialise them so block reads don't
        # pay per-access memmap overhead.  The payload stays mapped.
        self._meta = np.array(meta, dtype="<i8")
        self._block_indptr = np.array(block_indptr, dtype="<i8")
        self._indptr = np.array(indptr, dtype="<i8")
        self._cache: Dict[int, np.ndarray] = {}
        self.blocks_decoded = 0

    def length(self, index: int) -> int:
        return int(self._indptr[index + 1]) - int(self._indptr[index])

    def _block(self, index: int, local: int) -> np.ndarray:
        key = int(self._block_indptr[index]) + local
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        base, width, offset = (int(v) for v in self._meta[key])
        length = self.length(index)
        count = min(PACK_BLOCK, length - local * PACK_BLOCK)
        raw = self._payload[offset : offset + _block_bytes(count, width)]
        offs = _unpack_block(raw, width, count)
        decoded = (offs + np.uint64(base & _U64_MASK)).view("<i8")
        self._cache[key] = decoded
        self.blocks_decoded += 1
        return decoded

    def decode_list(self, index: int) -> np.ndarray:
        """The full ``int64`` column of one list (vectorized decode)."""
        length = self.length(index)
        if length == 0:
            return np.zeros(0, dtype="<i8")
        first = int(self._block_indptr[index])
        last = int(self._block_indptr[index + 1])
        self.blocks_decoded += last - first
        return _unpack_list(
            self._payload, self._meta[first:last], length
        ).view("<i8")

    def decode_range(self, index: int, lo: int, hi: int) -> np.ndarray:
        """Values ``[lo, hi)`` of one list, decoding only covering blocks."""
        hi = min(hi, self.length(index))
        if hi <= lo:
            return np.zeros(0, dtype="<i8")
        first, last = lo // PACK_BLOCK, (hi - 1) // PACK_BLOCK
        blocks = [
            self._block(index, local) for local in range(first, last + 1)
        ]
        joined = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        start = first * PACK_BLOCK
        return joined[lo - start : hi - start]


# ----------------------------------------------------------------------
# Score columns: shared dictionary + bit-packed codes + exact residuals
# ----------------------------------------------------------------------
def pack_score_lists(
    values: Sequence[float], indptr: Sequence[int]
) -> Dict[str, np.ndarray]:
    """Pack a CSR of ``float64`` lists into dictionary-coded blocks.

    Returns ``dict`` (``<f8`` distinct values, ascending by bit
    pattern), ``payload`` (``|u1`` packed codes), ``meta`` (``<i8`` of
    shape ``[n_blocks, 4]``: code base, bit width, payload byte offset,
    residual start), ``residual`` (``<f8`` escaped values in posting
    order), ``bounds`` (``<f8`` of shape ``[n_blocks, 2]``: block first
    and last value — the block-max headers) and ``block_indptr``.
    """
    arr = np.ascontiguousarray(np.asarray(values, dtype="<f8"))
    bits = arr.view("<u8")
    if bits.size:
        uniq, counts = np.unique(bits, return_counts=True)
    else:
        uniq = np.zeros(0, dtype="<u8")
        counts = np.zeros(0, dtype="<i8")
    if uniq.size > MAX_SCORE_DICT:
        # Keep the most frequent values; ties broken by bit pattern so
        # the dictionary is deterministic.  np.argsort is ascending, so
        # take from the tail.
        keep = np.sort(
            np.argsort(counts, kind="stable")[-MAX_SCORE_DICT:]
        )
        uniq = uniq[keep]
    escape = int(uniq.size)
    if escape:
        pos = np.searchsorted(uniq, bits)
        clamped = np.minimum(pos, escape - 1)
        in_dict = uniq[clamped] == bits
        codes = np.where(in_dict, clamped, escape)
    else:
        in_dict = np.zeros(bits.size, dtype="|b1")
        codes = np.zeros(bits.size, dtype="<i8")
    codes = np.ascontiguousarray(codes, dtype="<i8")
    residual = bits[~in_dict]

    bounds_list = [int(p) for p in indptr]
    meta_rows: List[Tuple[int, int, int, int]] = []
    bound_rows: List[Tuple[int, int]] = []
    chunks: List[np.ndarray] = []
    block_indptr = [0]
    offset = 0
    resid_cursor = 0
    codes_u = _as_u64(codes)
    bits_list = bits  # alias for block bound lookups
    for lo, hi in zip(bounds_list[:-1], bounds_list[1:]):
        for start in _iter_blocks(lo, hi):
            stop = min(start + PACK_BLOCK, hi)
            base = int(codes[start:stop].min())
            offs = codes_u[start:stop] - np.uint64(base)
            width = int(offs.max()).bit_length()
            meta_rows.append((base, width, offset, resid_cursor))
            bound_rows.append(
                (int(bits_list[start]), int(bits_list[stop - 1]))
            )
            resid_cursor += int((~in_dict[start:stop]).sum())
            chunk = _pack_block(offs, width)
            chunks.append(chunk)
            offset += int(chunk.size)
        block_indptr.append(len(meta_rows))
    payload = (
        np.concatenate(chunks) if chunks else np.zeros(0, dtype="|u1")
    )
    bounds = (
        np.asarray(bound_rows, dtype="<u8").reshape(-1, 2).view("<f8")
    )
    return {
        "dict": uniq.view("<f8"),
        "payload": payload,
        "meta": np.asarray(meta_rows, dtype="<i8").reshape(-1, 4),
        "residual": residual.view("<f8"),
        "bounds": bounds,
        "block_indptr": np.asarray(block_indptr, dtype="<i8"),
    }


class PackedScoreLists:
    """Block-granular reader over :func:`pack_score_lists` output.

    Three access grains, cheapest first:

    * :meth:`block_bound` / :meth:`value_at` on a block-final position —
      answered from the ``bounds`` header, no decode;
    * :meth:`take` — random access for a gather batch, decoding only
      the blocks that contain hits;
    * :meth:`decode_range` / :meth:`decode_list` — contiguous decode
      for sorted-access prefixes and full verification reads.
    """

    def __init__(
        self,
        payload: np.ndarray,
        meta: np.ndarray,
        dictionary: np.ndarray,
        residual: np.ndarray,
        bounds: np.ndarray,
        block_indptr: np.ndarray,
        indptr: np.ndarray,
    ) -> None:
        self._payload = payload
        # Hot headers (meta, bounds, dictionary, indptrs) materialise —
        # they are consulted on every granular read and total a few KB;
        # the code payload and the residual column stay mapped.
        self._meta = np.array(meta, dtype="<i8")
        self._dict_bits = np.array(dictionary, dtype="<f8").view("<u8")
        self._residual_bits = np.ascontiguousarray(residual).view("<u8")
        self._bounds = np.array(bounds, dtype="<f8")
        self._block_indptr = np.array(block_indptr, dtype="<i8")
        self._indptr = np.array(indptr, dtype="<i8")
        self._cache: Dict[int, np.ndarray] = {}
        self.blocks_decoded = 0

    def length(self, index: int) -> int:
        return int(self._indptr[index + 1]) - int(self._indptr[index])

    def total_blocks(self, index: int) -> int:
        return int(self._block_indptr[index + 1]) - int(
            self._block_indptr[index]
        )

    def _block(self, index: int, local: int) -> np.ndarray:
        key = int(self._block_indptr[index]) + local
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        base, width, offset, resid_start = (
            int(v) for v in self._meta[key]
        )
        length = self.length(index)
        count = min(PACK_BLOCK, length - local * PACK_BLOCK)
        raw = self._payload[offset : offset + _block_bytes(count, width)]
        codes = _unpack_block(raw, width, count) + np.uint64(base)
        escape = np.uint64(self._dict_bits.size)
        escaped = codes == escape
        out = np.empty(count, dtype="<u8")
        hit = ~escaped
        if hit.any():
            out[hit] = self._dict_bits[codes[hit].astype("<i8")]
        n_escaped = int(escaped.sum())
        if n_escaped:
            out[escaped] = self._residual_bits[
                resid_start : resid_start + n_escaped
            ]
        decoded = out.view("<f8")
        self._cache[key] = decoded
        self.blocks_decoded += 1
        return decoded

    def block_bound(self, index: int, local: int, side: int) -> float:
        """Header read: block-first (``side=0``) / block-last value."""
        return float(self._bounds[int(self._block_indptr[index]) + local, side])

    def value_at(self, index: int, rank: int) -> float:
        """One score; block-boundary positions come from the header."""
        local = rank // PACK_BLOCK
        start = local * PACK_BLOCK
        stop = min(start + PACK_BLOCK, self.length(index))
        if rank == stop - 1:
            return self.block_bound(index, local, 1)
        if rank == start:
            return self.block_bound(index, local, 0)
        return float(self._block(index, local)[rank - start])

    def take(self, index: int, slots: np.ndarray) -> np.ndarray:
        """Scores at ``slots``, decoding only the blocks containing them."""
        slots = np.asarray(slots, dtype="<i8")
        out = np.empty(slots.size, dtype="<f8")
        if slots.size == 0:
            return out
        locals_ = slots // PACK_BLOCK
        for local in np.unique(locals_).tolist():
            mask = locals_ == local
            block = self._block(index, int(local))
            out[mask] = block[slots[mask] - int(local) * PACK_BLOCK]
        return out

    def decode_range(self, index: int, lo: int, hi: int) -> np.ndarray:
        hi = min(hi, self.length(index))
        if hi <= lo:
            return np.zeros(0, dtype="<f8")
        first, last = lo // PACK_BLOCK, (hi - 1) // PACK_BLOCK
        blocks = [
            self._block(index, local) for local in range(first, last + 1)
        ]
        joined = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        start = first * PACK_BLOCK
        return joined[lo - start : hi - start]

    def decode_list(self, index: int) -> np.ndarray:
        """The full ``float64`` column of one list (vectorized decode).

        Codes for every block decode in width-grouped runs; the
        dictionary gather and the residual splice then run once over
        the whole list — escapes land in posting order, so the list's
        residual range is one contiguous slice starting at the first
        block's residual cursor.
        """
        length = self.length(index)
        if length == 0:
            return np.zeros(0, dtype="<f8")
        first = int(self._block_indptr[index])
        last = int(self._block_indptr[index + 1])
        codes = _unpack_list(self._payload, self._meta[first:last], length)
        self.blocks_decoded += last - first
        # The residual cursors bound the list's escape count without a
        # scan; the common all-in-dictionary list is one pure gather.
        resid_start = int(self._meta[first, 3])
        resid_end = (
            int(self._meta[last, 3])
            if last < self._meta.shape[0]
            else int(self._residual_bits.size)
        )
        if resid_start == resid_end:
            return self._dict_bits[codes].view("<f8")
        escape = np.uint64(self._dict_bits.size)
        escaped = codes == escape
        out = np.empty(length, dtype="<u8")
        hit = ~escaped
        out[hit] = self._dict_bits[codes[hit]]
        out[escaped] = self._residual_bits[resid_start:resid_end]
        return out.view("<f8")
