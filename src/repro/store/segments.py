"""Segment codecs: library objects ⇄ little-endian buffers + JSON skeletons.

Each codec pairs an ``encode_*`` (writes into a
:class:`~repro.store.format.SegmentWriter` under a name prefix) with a
``decode_*`` (reads from a :class:`~repro.store.format.SegmentReader`).
The split follows one rule everywhere: **numeric payloads** — scores,
tiebreaks, geometry, timestamps, Ruzzo–Tompa state, expectation-model
sums — live in binary NumPy buffers so every float round-trips bit for
bit (NaN payloads and subnormals included); **structure** — term names,
identifier lists, per-term counts — lives in JSON skeletons whose list
order preserves the in-memory iteration order the algorithms depend on.

Codecs:

* **documents** — the :class:`~repro.columnar.collection.
  ColumnarCollection` column set in document-major form: doc-id table,
  stream codes, timestamps, precomputed ``rank_tiebreak`` values, and a
  CSR of int-coded per-document term counts.  Decoding rebuilds the
  exact :class:`~repro.streams.SpatiotemporalCollection` document
  iteration order (term multiplicity is preserved; intra-document token
  interleaving, which no algorithm observes, is not).
* **postings** — per-term :class:`~repro.columnar.postings.
  PostingArray` columns as one CSR over a shared doc-id table, plus a
  *shadow* CSR for random-access-only entries (documents a
  :meth:`~repro.search.inverted_index.PostingList.truncated` list still
  answers for but no longer exposes to sorted access).
* **patterns** — :class:`~repro.core.patterns.RegionalPattern` /
  :class:`~repro.core.patterns.CombinatorialPattern` maps.
* **trackers** — full :class:`~repro.core.stlocal.STLocalTermTracker`
  streaming state (expectation models, open region sequences with their
  online Ruzzo–Tompa candidates, archived windows, histories), so a
  restored tracker keeps consuming snapshots exactly where the saved
  one stopped.  Only the paper-default
  :class:`~repro.temporal.baselines.RunningMeanBaseline` has a stable
  numeric state representation; exotic models are rejected explicitly.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import STLocalConfig
from repro.core.patterns import CombinatorialPattern, RegionalPattern
from repro.core.stlocal import RegionSequence, STLocalTermTracker
from repro.errors import StoreCorruptionError, StoreError, StoreIOError
from repro.faults.io import store_io
from repro.intervals.interval import Interval
from repro.search.inverted_index import (
    PostingList,
    random_access_map,
    rank_tiebreak,
)
from repro.spatial.geometry import Point, Rectangle
from repro.spatial.index import SpatialIndex
from repro.store.format import (
    SegmentReader,
    SegmentWriter,
    decode_id_column,
    encode_id_column,
)
from repro.streams.document import Document
from repro.temporal.baselines import RunningMeanBaseline
from repro.temporal.max_segments import OnlineMaxSegments

__all__ = [
    "decode_collection",
    "decode_config",
    "decode_documents",
    "decode_patterns",
    "decode_posting_list",
    "decode_trackers",
    "encode_config",
    "encode_documents",
    "encode_patterns",
    "encode_posting_lists",
    "encode_trackers",
    "trackers_persistable",
    "PostingSegment",
]


def _ordered_ids(values) -> List[Hashable]:
    """Deterministic listing of a set-like of ids (sorted by repr).

    Ids embedded in JSON skeletons must be JSON scalars to survive a
    round trip (a tuple id would silently decode as a list and break
    frozenset reconstruction), so non-scalars are rejected at save
    time — a store that commits must always load.
    """
    ordered = sorted(values, key=repr)
    for value in ordered:
        _check_json_id(value)
    return ordered


def _check_json_id(value: Hashable) -> None:
    if value is not None and not isinstance(value, (str, int, float, bool)):
        raise StoreError(
            f"stream id {value!r} of type {type(value).__name__} is "
            "not persistable: ids must be ints, strings, floats, "
            "bools or None to survive a store round-trip"
        )


def _write_id_column(writer: SegmentWriter, prefix: str, name: str, ids) -> str:
    """Persist an id column, returning the kind recorded in the skeleton."""
    encoded = encode_id_column(ids)
    if encoded["kind"] == "int64":
        writer.add_array(f"{prefix}/{name}.npy", encoded["array"])
    else:
        writer.add_json(f"{prefix}/{name}.json", encoded["values"])
    return encoded["kind"]


def _read_id_column(
    reader: SegmentReader, prefix: str, name: str, kind: str
) -> List[Hashable]:
    if kind == "int64":
        return decode_id_column(kind, reader.array(f"{prefix}/{name}.npy"))
    return decode_id_column(kind, reader.json(f"{prefix}/{name}.json"))


# ----------------------------------------------------------------------
# Documents / collection
# ----------------------------------------------------------------------
def encode_documents(
    writer: SegmentWriter,
    prefix: str,
    timeline: int,
    locations: Dict[Hashable, Point],
    documents: Sequence[Document],
) -> None:
    """Persist a document table plus the stream table under ``prefix``.

    ``documents`` order is authoritative: batch stores pass
    ``collection.documents()`` order, live checkpoints pass arrival
    order — decoding replays the same order either way.
    """
    stream_ids = list(locations)
    stream_code = {sid: code for code, sid in enumerate(stream_ids)}
    streams_kind = _write_id_column(writer, prefix, "stream_ids", stream_ids)
    writer.add_array(
        f"{prefix}/stream_x.npy",
        np.asarray([locations[sid].x for sid in stream_ids], dtype="<f8"),
    )
    writer.add_array(
        f"{prefix}/stream_y.npy",
        np.asarray([locations[sid].y for sid in stream_ids], dtype="<f8"),
    )

    vocabulary: Dict[str, int] = {}
    doc_ids: List[Hashable] = []
    stream_codes: List[int] = []
    timestamps: List[int] = []
    indptr: List[int] = [0]
    term_codes: List[int] = []
    term_counts: List[int] = []
    event_ids: Dict[str, Hashable] = {}
    for row, document in enumerate(documents):
        doc_ids.append(document.doc_id)
        stream_codes.append(stream_code[document.stream_id])
        timestamps.append(document.timestamp)
        for term, count in document.term_counts().items():
            term_codes.append(vocabulary.setdefault(term, len(vocabulary)))
            term_counts.append(count)
        indptr.append(len(term_codes))
        if document.event_id is not None:
            event_ids[str(row)] = document.event_id
    for event_id in event_ids.values():
        if not isinstance(event_id, (str, int, float, bool)):
            raise StoreError(
                f"event id {event_id!r} is not a JSON scalar and cannot "
                "be persisted"
            )

    doc_kind = _write_id_column(writer, prefix, "doc_ids", doc_ids)
    writer.add_array(
        f"{prefix}/stream_codes.npy", np.asarray(stream_codes, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/timestamps.npy", np.asarray(timestamps, dtype="<i8")
    )
    writer.add_array(f"{prefix}/term_indptr.npy", np.asarray(indptr, dtype="<i8"))
    writer.add_array(
        f"{prefix}/term_codes.npy", np.asarray(term_codes, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/term_counts.npy", np.asarray(term_counts, dtype="<i8")
    )
    writer.add_json(
        f"{prefix}/meta.json",
        {
            "timeline": timeline,
            "documents": len(doc_ids),
            "doc_id_kind": doc_kind,
            "stream_id_kind": streams_kind,
            "vocabulary": list(vocabulary),
            "event_ids": event_ids,
        },
    )


def decode_documents(
    reader: SegmentReader, prefix: str
) -> Tuple[int, Dict[Hashable, Point], List[Document]]:
    """Rebuild ``(timeline, locations, documents)`` from a doc segment.

    Eager counterpart of the serve-from-disk path: one
    :class:`~repro.store.collection.DocumentTable` is the single
    decoder of this layout; here every row is materialised up front
    (live restores re-ingest the whole table anyway).
    """
    from repro.store.collection import DocumentTable

    table = DocumentTable(reader, prefix)
    return table.timeline, dict(table.locations), list(table.all_documents())


def decode_collection(reader: SegmentReader, prefix: str):
    """Rebuild a full :class:`SpatiotemporalCollection` from a segment."""
    from repro.streams.collection import SpatiotemporalCollection

    timeline, locations, documents = decode_documents(reader, prefix)
    collection = SpatiotemporalCollection(timeline)
    for sid, point in locations.items():
        collection.add_stream(sid, point)
    for document in documents:
        collection.add_document(document)
    return collection


# ----------------------------------------------------------------------
# Posting lists
# ----------------------------------------------------------------------
def _posting_term_crc(
    rows: np.ndarray, scores: np.ndarray, ties: np.ndarray
) -> int:
    """CRC-32 over one term's decoded posting columns.

    Computed over the canonical ``<i8`` row / ``<f8`` score-bit /
    ``<i8`` tie byte streams, so raw and packed encodings of the same
    term agree — the audit key of degraded-mode serving.
    """
    crc = zlib.crc32(np.ascontiguousarray(rows, dtype="<i8").tobytes())
    crc = zlib.crc32(np.ascontiguousarray(scores, dtype="<f8").tobytes(), crc)
    crc = zlib.crc32(np.ascontiguousarray(ties, dtype="<i8").tobytes(), crc)
    return crc & 0xFFFFFFFF


def encode_posting_lists(
    writer: SegmentWriter,
    prefix: str,
    lists: Dict[str, PostingList],
    codec: str = "raw",
) -> None:
    """Persist per-term posting columns as one CSR over a doc-id table.

    The *visible* CSR holds each list's sorted-access columns (document
    rows, score bits, tiebreaks); the *shadow* CSR holds random-access
    entries beyond the visible prefix, which pruned
    (:meth:`~repro.search.inverted_index.PostingList.truncated`) lists
    carry — both sides round-trip, so a reloaded pruned list answers
    random access for exactly the documents the original did.

    ``codec`` picks the on-disk layout of the visible CSR: ``"raw"``
    writes plain ``<i8``/``<f8`` columns (byte-identical to format v1),
    ``"packed"`` writes the block-compressed layout of
    :mod:`repro.store.codec` (format v2).  Both decode to byte-identical
    posting lists; the shadow CSR stays raw either way (it only exists
    for pruned lists and is read whole).
    """
    table: Dict[Hashable, int] = {}
    terms = list(lists)
    indptr: List[int] = [0]
    rows: List[int] = []
    scores: List[float] = []
    ties: List[int] = []
    shadow_indptr: List[int] = [0]
    shadow_rows: List[int] = []
    shadow_scores: List[float] = []
    for term in terms:
        posting_list = lists[term]
        visible_ids: List[Hashable] = []
        if hasattr(posting_list, "columns"):
            col_ids, col_scores, col_ties = posting_list.columns()
            visible_ids = list(col_ids)
            scores.extend(float(s) for s in np.asarray(col_scores, dtype="<f8"))
            ties.extend(int(t) for t in np.asarray(col_ties, dtype="<i8"))
        else:
            for posting in posting_list:
                visible_ids.append(posting.doc_id)
                scores.append(posting.score)
                ties.append(rank_tiebreak(posting.doc_id))
        for doc_id in visible_ids:
            rows.append(table.setdefault(doc_id, len(table)))
        indptr.append(len(rows))
        seen = set(visible_ids)
        for doc_id, score in random_access_map(posting_list).items():
            if doc_id in seen:
                continue
            shadow_rows.append(table.setdefault(doc_id, len(table)))
            shadow_scores.append(score)
        shadow_indptr.append(len(shadow_rows))

    doc_kind = _write_id_column(writer, prefix, "doc_table", list(table))
    rows_arr = np.asarray(rows, dtype="<i8")
    scores_arr = np.asarray(scores, dtype="<f8")
    ties_arr = np.asarray(ties, dtype="<i8")
    meta: Dict[str, Any] = {
        "terms": terms,
        "doc_id_kind": doc_kind,
        "entries": len(rows),
        # CRC-32 per term over its decoded (rows, score bits, ties)
        # column slice — codec-independent, so a reader can audit one
        # term's postings without trusting the rest of the file.  The
        # key is additive: pre-existing stores without it still load.
        "term_crcs": [
            _posting_term_crc(
                rows_arr[indptr[i] : indptr[i + 1]],
                scores_arr[indptr[i] : indptr[i + 1]],
                ties_arr[indptr[i] : indptr[i + 1]],
            )
            for i in range(len(terms))
        ],
    }
    if codec == "packed":
        # Readers without the key default to "raw", so raw meta stays
        # byte-identical to format v1 skeletons.
        from repro.store.codec import (
            PACK_BLOCK,
            pack_int_lists,
            pack_score_lists,
        )

        meta["codec"] = "packed"
        meta["block"] = PACK_BLOCK
    elif codec != "raw":
        raise StoreError(f"unknown posting codec {codec!r}")
    writer.add_json(f"{prefix}/meta.json", meta)
    writer.add_array(f"{prefix}/indptr.npy", np.asarray(indptr, dtype="<i8"))
    if codec == "packed":
        packed_rows = pack_int_lists(rows, indptr)
        packed_ties = pack_int_lists(ties, indptr)
        packed_scores = pack_score_lists(scores, indptr)
        writer.add_array(f"{prefix}/rows_payload.npy", packed_rows["payload"])
        writer.add_array(f"{prefix}/rows_meta.npy", packed_rows["meta"])
        writer.add_array(
            f"{prefix}/rows_blocks.npy", packed_rows["block_indptr"]
        )
        writer.add_array(f"{prefix}/ties_payload.npy", packed_ties["payload"])
        writer.add_array(f"{prefix}/ties_meta.npy", packed_ties["meta"])
        writer.add_array(
            f"{prefix}/ties_blocks.npy", packed_ties["block_indptr"]
        )
        writer.add_array(f"{prefix}/scores_dict.npy", packed_scores["dict"])
        writer.add_array(
            f"{prefix}/scores_payload.npy", packed_scores["payload"]
        )
        writer.add_array(f"{prefix}/scores_meta.npy", packed_scores["meta"])
        writer.add_array(
            f"{prefix}/scores_residual.npy", packed_scores["residual"]
        )
        writer.add_array(
            f"{prefix}/scores_bounds.npy", packed_scores["bounds"]
        )
        writer.add_array(
            f"{prefix}/scores_blocks.npy", packed_scores["block_indptr"]
        )
    else:
        writer.add_array(f"{prefix}/rows.npy", rows_arr)
        writer.add_array(f"{prefix}/scores.npy", scores_arr)
        writer.add_array(f"{prefix}/ties.npy", ties_arr)
    writer.add_array(
        f"{prefix}/shadow_indptr.npy", np.asarray(shadow_indptr, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/shadow_rows.npy", np.asarray(shadow_rows, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/shadow_scores.npy", np.asarray(shadow_scores, dtype="<f8")
    )


class PostingSegment:
    """Lazy reader over a persisted posting segment.

    The score and tiebreak columns stay memory-mapped; a term's
    :class:`~repro.columnar.postings.PostingArray` is materialised only
    when that term is first requested (its doc-id list is gathered from
    the shared table; the numeric columns are served as zero-copy
    slices of the mapped buffers).
    """

    #: When ``True`` (degraded-mode loading), every first touch of a
    #: term audits its decoded columns against the per-term CRC before
    #: serving — a :class:`~repro.errors.StoreCorruptionError` names the
    #: damaged term instead of silently returning wrong postings.
    verify_terms = False

    def __init__(self, reader: SegmentReader, prefix: str) -> None:
        self._reader = reader
        self._prefix = prefix
        meta = reader.json(f"{prefix}/meta.json")
        self.terms: List[str] = list(meta["terms"])
        self.codec: str = str(meta.get("codec", "raw"))
        self._term_crcs: Optional[List[int]] = meta.get("term_crcs")
        self._term_index = {term: i for i, term in enumerate(self.terms)}
        self._table = _read_id_column(
            reader, prefix, "doc_table", meta["doc_id_kind"]
        )
        self._indptr = reader.array(f"{prefix}/indptr.npy")
        if self.codec == "packed":
            from repro.store.codec import PackedIntLists, PackedScoreLists

            self._rows_packed = PackedIntLists(
                reader.array(f"{prefix}/rows_payload.npy"),
                reader.array(f"{prefix}/rows_meta.npy"),
                reader.array(f"{prefix}/rows_blocks.npy"),
                self._indptr,
            )
            self._ties_packed = PackedIntLists(
                reader.array(f"{prefix}/ties_payload.npy"),
                reader.array(f"{prefix}/ties_meta.npy"),
                reader.array(f"{prefix}/ties_blocks.npy"),
                self._indptr,
            )
            self._scores_packed = PackedScoreLists(
                reader.array(f"{prefix}/scores_payload.npy"),
                reader.array(f"{prefix}/scores_meta.npy"),
                reader.array(f"{prefix}/scores_dict.npy"),
                reader.array(f"{prefix}/scores_residual.npy"),
                reader.array(f"{prefix}/scores_bounds.npy"),
                reader.array(f"{prefix}/scores_blocks.npy"),
                self._indptr,
            )
        elif self.codec == "raw":
            self._rows = reader.array(f"{prefix}/rows.npy")
            self._scores = reader.array(f"{prefix}/scores.npy")
            self._ties = reader.array(f"{prefix}/ties.npy")
        else:
            raise StoreError(
                f"posting segment {prefix!r} uses unknown codec "
                f"{self.codec!r}"
            )
        self._shadow_indptr = reader.array(f"{prefix}/shadow_indptr.npy")
        self._shadow_rows = reader.array(f"{prefix}/shadow_rows.npy")
        self._shadow_scores = reader.array(f"{prefix}/shadow_scores.npy")

    def __contains__(self, term: str) -> bool:
        return term in self._term_index

    def posting_array(self, term: str):
        """The term's reloaded posting list, or ``None`` when absent.

        Raises:
            StoreIOError: on a (possibly transient) read failure of the
                term's backing column file — callers may retry once.
            StoreCorruptionError: in ``verify_terms`` mode, when the
                term's decoded columns fail their stored CRC.
        """
        index = self._term_index.get(term)
        if index is None:
            return None
        probe = os.path.join(
            self._reader.path,
            self._prefix,
            "scores_payload.npy" if self.codec == "packed" else "scores.npy",
        )
        try:
            store_io().check_read(probe)
        except OSError as exc:
            raise StoreIOError(
                f"I/O error reading posting column for term {term!r} at "
                f"{probe!r}: {exc}"
            ) from None
        if self.verify_terms:
            self.check_term(term)
        return decode_posting_list(self, index)

    def check_term(self, term: str) -> None:
        """Audit one term's decoded columns against its stored CRC.

        A full decode-and-checksum pass — the degraded-serving audit
        surface, not the hot path.  Raises
        :class:`~repro.errors.StoreCorruptionError` naming the term and
        segment when the columns fail to decode or mismatch.
        """
        index = self._term_index[term]
        where = (
            f"posting column for term {term!r} in segment "
            f"{self._prefix!r} of store {self._reader.path!r}"
        )
        if self._term_crcs is None:
            raise StoreCorruptionError(
                f"cannot audit {where}: the store predates per-term "
                "checksums (no 'term_crcs' in postings meta) — re-save "
                "it to enable per-term damage isolation"
            )
        try:
            if self.codec == "packed":
                rows = self._rows_packed.decode_list(index)
                scores = self._scores_packed.decode_list(index)
                ties = self._ties_packed.decode_list(index)
            else:
                lo = int(self._indptr[index])
                hi = int(self._indptr[index + 1])
                rows = self._rows[lo:hi]
                scores = self._scores[lo:hi]
                ties = self._ties[lo:hi]
            crc = _posting_term_crc(
                np.asarray(rows), np.asarray(scores), np.asarray(ties)
            )
        except StoreCorruptionError:
            raise
        except (
            StoreError,
            ValueError,
            IndexError,
            KeyError,
            OverflowError,
        ) as exc:
            raise StoreCorruptionError(
                f"{where} fails to decode: {exc}"
            ) from None
        expected = int(self._term_crcs[index])
        if crc != expected:
            raise StoreCorruptionError(
                f"checksum mismatch in {where}: expected crc32 "
                f"{expected:#010x}, found {crc:#010x}"
            )

    # -- raw column access (verification) ------------------------------
    def columns(self, term: str):
        """Raw ``(doc_ids, scores, ties)`` of a stored term's visible CSR.

        On a packed segment this decodes the term's blocks in full —
        it is the verification/audit surface, not the serving path.
        """
        index = self._term_index[term]
        if self.codec == "packed":
            rows = self._rows_packed.decode_list(index)
            ids = [self._table[row] for row in rows.tolist()]
            return (
                ids,
                self._scores_packed.decode_list(index),
                self._ties_packed.decode_list(index),
            )
        lo, hi = int(self._indptr[index]), int(self._indptr[index + 1])
        ids = [self._table[row] for row in self._rows[lo:hi].tolist()]
        return ids, self._scores[lo:hi], self._ties[lo:hi]


class _PackedTermSource:
    """Block-lazy column access for one term of a packed segment.

    The contract :class:`~repro.columnar.postings.PackedPostingArray`
    and the top-k kernel program against: full-column reads
    (:meth:`ids`, :meth:`scores`, :meth:`ties`) decode once and cache;
    the granular reads (:meth:`score_at`, the slice/take methods)
    touch only the covering blocks until a full decode has happened.
    """

    def __init__(self, segment: PostingSegment, index: int) -> None:
        self._segment = segment
        self._index = index
        self.length = segment._rows_packed.length(index)
        self._ids_cache: Optional[List[Hashable]] = None
        self._scores_cache: Optional[np.ndarray] = None
        self._ties_cache: Optional[np.ndarray] = None

    def ids(self) -> List[Hashable]:
        if self._ids_cache is None:
            rows = self._segment._rows_packed.decode_list(self._index)
            table = self._segment._table
            self._ids_cache = [table[row] for row in rows.tolist()]
        return self._ids_cache

    def ids_prefix(self, k: int) -> List[Hashable]:
        """The first ``k`` doc ids, decoding only the covering blocks."""
        if self._ids_cache is not None:
            return self._ids_cache[:k]
        rows = self._segment._rows_packed.decode_range(self._index, 0, k)
        table = self._segment._table
        return [table[row] for row in rows.tolist()]

    def scores(self) -> np.ndarray:
        if self._scores_cache is None:
            self._scores_cache = self._segment._scores_packed.decode_list(
                self._index
            )
        return self._scores_cache

    def ties(self) -> np.ndarray:
        if self._ties_cache is None:
            self._ties_cache = self._segment._ties_packed.decode_list(
                self._index
            )
        return self._ties_cache

    def score_at(self, rank: int) -> float:
        if self._scores_cache is not None:
            return float(self._scores_cache[rank])
        return self._segment._scores_packed.value_at(self._index, rank)

    def scores_slice(self, lo: int, hi: int) -> np.ndarray:
        if self._scores_cache is not None:
            return self._scores_cache[lo:hi]
        return self._segment._scores_packed.decode_range(self._index, lo, hi)

    def ties_slice(self, lo: int, hi: int) -> np.ndarray:
        if self._ties_cache is not None:
            return self._ties_cache[lo:hi]
        return self._segment._ties_packed.decode_range(self._index, lo, hi)

    def scores_take(self, slots: np.ndarray) -> np.ndarray:
        if self._scores_cache is not None:
            return self._scores_cache[slots]
        return self._segment._scores_packed.take(self._index, slots)


def decode_posting_list(segment: PostingSegment, index: int):
    """Materialise one term's :class:`PostingArray` from a segment.

    Raw segments serve score/tiebreak slices as zero-copy views of the
    mapped buffers; packed segments return a
    :class:`~repro.columnar.postings.PackedPostingArray` whose columns
    decode block-by-block on first touch.  A term with shadow entries
    (a pruned list) decodes its visible columns eagerly to seed the
    random-access map — exactly what the raw path materialises too.
    """
    from repro.columnar.postings import PackedPostingArray, PostingArray

    s_lo = int(segment._shadow_indptr[index])
    s_hi = int(segment._shadow_indptr[index + 1])
    if segment.codec == "packed":
        source = _PackedTermSource(segment, index)
        by_doc = None
        if s_hi > s_lo:
            by_doc = dict(zip(source.ids(), source.scores().tolist()))
            for row, score in zip(
                segment._shadow_rows[s_lo:s_hi].tolist(),
                segment._shadow_scores[s_lo:s_hi].tolist(),
            ):
                by_doc[segment._table[row]] = score
        packed_array = PackedPostingArray(source, random_access=by_doc)
        # The save input is a one-entry-per-document relation, so the
        # single-list scan shortcut may trust the columns.
        packed_array.ids_unique = True
        return packed_array

    lo, hi = int(segment._indptr[index]), int(segment._indptr[index + 1])
    ids = [segment._table[row] for row in segment._rows[lo:hi].tolist()]
    by_doc = None
    if s_hi > s_lo:
        by_doc = dict(zip(ids, segment._scores[lo:hi].tolist()))
        for row, score in zip(
            segment._shadow_rows[s_lo:s_hi].tolist(),
            segment._shadow_scores[s_lo:s_hi].tolist(),
        ):
            by_doc[segment._table[row]] = score
    array = PostingArray.from_columns(
        ids,
        segment._scores[lo:hi],
        segment._ties[lo:hi],
        random_access=by_doc,
    )
    array.ids_unique = True
    return array


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
def encode_patterns(
    writer: SegmentWriter,
    prefix: str,
    patterns: Dict[str, Sequence],
    pattern_type: str,
) -> None:
    """Persist a term → patterns map (``regional`` or ``combinatorial``)."""
    if pattern_type not in ("regional", "combinatorial"):
        raise StoreError(f"unknown pattern type {pattern_type!r}")
    skeleton: List[Dict[str, Any]] = []
    geometry: List[Tuple[float, float, float, float]] = []
    frames: List[Tuple[int, int]] = []
    scores: List[float] = []
    member_frames: List[Tuple[int, int]] = []
    member_scores: List[float] = []
    for term, term_patterns in patterns.items():
        entries = []
        for pattern in term_patterns:
            frames.append((pattern.timeframe.start, pattern.timeframe.end))
            scores.append(pattern.score)
            entry: Dict[str, Any] = {
                "streams": _ordered_ids(pattern.streams)
            }
            if pattern_type == "regional":
                region = pattern.region
                geometry.append(
                    (region.min_x, region.min_y, region.max_x, region.max_y)
                )
                entry["bursty"] = (
                    None
                    if pattern.bursty_streams is None
                    else _ordered_ids(pattern.bursty_streams)
                )
            else:
                members = []
                for sid, interval, score in pattern.member_intervals:
                    _check_json_id(sid)
                    member_frames.append((interval.start, interval.end))
                    member_scores.append(score)
                    members.append(sid)
                entry["members"] = members
            entries.append(entry)
        skeleton.append({"term": term, "patterns": entries})
    writer.add_json(
        f"{prefix}/meta.json", {"type": pattern_type, "terms": skeleton}
    )
    writer.add_array(f"{prefix}/frames.npy", np.asarray(frames, dtype="<i8"))
    writer.add_array(f"{prefix}/scores.npy", np.asarray(scores, dtype="<f8"))
    if pattern_type == "regional":
        writer.add_array(
            f"{prefix}/geometry.npy", np.asarray(geometry, dtype="<f8")
        )
    else:
        writer.add_array(
            f"{prefix}/member_frames.npy",
            np.asarray(member_frames, dtype="<i8"),
        )
        writer.add_array(
            f"{prefix}/member_scores.npy",
            np.asarray(member_scores, dtype="<f8"),
        )


def decode_patterns(
    reader: SegmentReader, prefix: str
) -> Tuple[str, Dict[str, List]]:
    """Rebuild ``(pattern_type, term → patterns)`` from a segment."""
    meta = reader.json(f"{prefix}/meta.json")
    pattern_type: str = meta["type"]
    # One bulk conversion per column: per-element indexing of a memmap
    # re-enters NumPy on every scalar and dominates cold-start time.
    frames = reader.array(f"{prefix}/frames.npy").tolist()
    scores = reader.array(f"{prefix}/scores.npy").tolist()
    if pattern_type == "regional":
        geometry = reader.array(f"{prefix}/geometry.npy").tolist()
    else:
        member_frames = reader.array(f"{prefix}/member_frames.npy").tolist()
        member_scores = reader.array(f"{prefix}/member_scores.npy").tolist()
    patterns: Dict[str, List] = {}
    cursor = 0
    member_cursor = 0
    for term_entry in meta["terms"]:
        term = term_entry["term"]
        decoded = []
        for entry in term_entry["patterns"]:
            frame = Interval(int(frames[cursor][0]), int(frames[cursor][1]))
            score = float(scores[cursor])
            if pattern_type == "regional":
                bounds = geometry[cursor]
                bursty = entry.get("bursty")
                decoded.append(
                    RegionalPattern(
                        term=term,
                        region=Rectangle(*(float(v) for v in bounds)),
                        streams=frozenset(entry["streams"]),
                        timeframe=frame,
                        score=score,
                        bursty_streams=(
                            None if bursty is None else frozenset(bursty)
                        ),
                    )
                )
            else:
                members = []
                for sid in entry["members"]:
                    members.append(
                        (
                            sid,
                            Interval(
                                int(member_frames[member_cursor][0]),
                                int(member_frames[member_cursor][1]),
                            ),
                            float(member_scores[member_cursor]),
                        )
                    )
                    member_cursor += 1
                decoded.append(
                    CombinatorialPattern(
                        term=term,
                        streams=frozenset(entry["streams"]),
                        timeframe=frame,
                        score=score,
                        member_intervals=tuple(members),
                    )
                )
            cursor += 1
        patterns[term] = decoded
    return pattern_type, patterns


# ----------------------------------------------------------------------
# STLocal configuration
# ----------------------------------------------------------------------
def encode_config(config: STLocalConfig) -> Dict[str, Any]:
    """STLocal settings as a JSON-safe dict (baseline must be default)."""
    try:
        probe = config.baseline_factory()
    except (TypeError, ValueError):
        # A factory the no-argument probe call cannot construct is not
        # the persistable paper default; fall through to the StoreError
        # below.  Other exception types are factory bugs and surface.
        probe = None
    if type(probe) is not RunningMeanBaseline:
        raise StoreError(
            "only the paper-default RunningMeanBaseline expectation model "
            "has a persistable state representation; a custom "
            "baseline_factory cannot be checkpointed"
        )
    return {
        "warmup": config.warmup,
        "key_by_geometry": config.key_by_geometry,
        "min_window_score": config.min_window_score,
        "track_history": config.track_history,
        "baseline_prior": probe._prior,
    }


def decode_config(payload: Dict[str, Any]) -> STLocalConfig:
    prior = payload.get("baseline_prior", 0.0)
    if prior == 0.0:
        factory = RunningMeanBaseline
    else:  # pragma: no cover - non-zero priors are a config edge case
        def factory(prior=prior):
            return RunningMeanBaseline(prior)

    return STLocalConfig(
        baseline_factory=factory,
        key_by_geometry=bool(payload["key_by_geometry"]),
        min_window_score=float(payload["min_window_score"]),
        warmup=int(payload["warmup"]),
        track_history=bool(payload["track_history"]),
    )


# ----------------------------------------------------------------------
# Trackers
# ----------------------------------------------------------------------
def trackers_persistable(
    trackers: Dict[str, STLocalTermTracker],
) -> bool:
    """True when every tracker's state has a stable binary encoding."""
    for tracker in trackers.values():
        try:
            encode_config(tracker.config)
        except StoreError:
            return False
        for model in tracker._models.values():
            if type(model) is not RunningMeanBaseline:
                return False
    return True


def encode_trackers(
    writer: SegmentWriter,
    prefix: str,
    trackers: Dict[str, STLocalTermTracker],
) -> None:
    """Persist full streaming state for a map of term trackers.

    Raises:
        StoreError: when any tracker holds expectation models other
            than the default :class:`RunningMeanBaseline` (their state
            has no stable representation).
    """
    skeleton: List[Dict[str, Any]] = []
    config_payload: Optional[Dict[str, Any]] = None
    rect_history: List[int] = []
    open_history: List[int] = []
    model_counts: List[int] = []
    model_totals: List[float] = []
    model_priors: List[float] = []
    seq_geometry: List[Tuple[float, float, float, float]] = []
    seq_start: List[int] = []
    seq_cumulative: List[float] = []
    seq_length: List[int] = []
    cand_bounds: List[Tuple[int, int]] = []
    cand_sums: List[Tuple[float, float]] = []
    arch_geometry: List[Tuple[float, float, float, float]] = []
    arch_frames: List[Tuple[int, int]] = []
    arch_scores: List[float] = []
    hist_timestamps: List[int] = []
    hist_values: List[float] = []

    for term, tracker in trackers.items():
        term_config = encode_config(tracker.config)
        if config_payload is None:
            config_payload = term_config
        elif config_payload != term_config:
            raise StoreError(
                "trackers with heterogeneous STLocal configurations cannot "
                "share one store segment"
            )
        entry: Dict[str, Any] = {"term": term, "clock": tracker.clock}
        rect_history.extend(tracker.rectangle_history)
        open_history.extend(tracker.open_history)
        entry["rect_history"] = len(tracker.rectangle_history)
        entry["open_history"] = len(tracker.open_history)

        model_ids = []
        for sid, model in tracker._models.items():
            if type(model) is not RunningMeanBaseline:
                raise StoreError(
                    f"tracker for term {term!r} holds a "
                    f"{type(model).__name__} expectation model; only the "
                    "default RunningMeanBaseline state is persistable"
                )
            _check_json_id(sid)
            model_ids.append(sid)
            model_counts.append(model._count)
            model_totals.append(model._total)
            model_priors.append(model._prior)
        entry["models"] = model_ids

        sequences = []
        for sequence in tracker._sequences.values():
            region = sequence.region
            seq_geometry.append(
                (region.min_x, region.min_y, region.max_x, region.max_y)
            )
            seq_start.append(sequence.start)
            seq_cumulative.append(sequence.tracker._cumulative)
            seq_length.append(len(sequence.tracker))
            candidates = sequence.tracker._candidates
            for candidate in candidates:
                cand_bounds.append((candidate.start, candidate.end))
                cand_sums.append((candidate.left_sum, candidate.right_sum))
            sequences.append(
                {
                    "members": _ordered_ids(sequence.stream_ids),
                    "candidates": len(candidates),
                }
            )
        entry["sequences"] = sequences

        archived = []
        for region, streams, timeframe, score in tracker._archived:
            arch_geometry.append(
                (region.min_x, region.min_y, region.max_x, region.max_y)
            )
            arch_frames.append((timeframe.start, timeframe.end))
            arch_scores.append(score)
            archived.append({"members": _ordered_ids(streams)})
        entry["archived"] = archived

        history = []
        for sid, values in tracker._history.items():
            _check_json_id(sid)
            history.append({"stream": sid, "entries": len(values)})
            for timestamp, value in values.items():
                hist_timestamps.append(timestamp)
                hist_values.append(value)
        entry["history"] = history
        skeleton.append(entry)

    writer.add_json(
        f"{prefix}/meta.json",
        {"config": config_payload, "terms": skeleton},
    )
    writer.add_array(
        f"{prefix}/rect_history.npy", np.asarray(rect_history, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/open_history.npy", np.asarray(open_history, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/model_counts.npy", np.asarray(model_counts, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/model_totals.npy", np.asarray(model_totals, dtype="<f8")
    )
    writer.add_array(
        f"{prefix}/model_priors.npy", np.asarray(model_priors, dtype="<f8")
    )
    writer.add_array(
        f"{prefix}/seq_geometry.npy", np.asarray(seq_geometry, dtype="<f8")
    )
    writer.add_array(
        f"{prefix}/seq_start.npy", np.asarray(seq_start, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/seq_cumulative.npy",
        np.asarray(seq_cumulative, dtype="<f8"),
    )
    writer.add_array(
        f"{prefix}/seq_length.npy", np.asarray(seq_length, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/cand_bounds.npy", np.asarray(cand_bounds, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/cand_sums.npy", np.asarray(cand_sums, dtype="<f8")
    )
    writer.add_array(
        f"{prefix}/arch_geometry.npy", np.asarray(arch_geometry, dtype="<f8")
    )
    writer.add_array(
        f"{prefix}/arch_frames.npy", np.asarray(arch_frames, dtype="<i8")
    )
    writer.add_array(
        f"{prefix}/arch_scores.npy", np.asarray(arch_scores, dtype="<f8")
    )
    writer.add_array(
        f"{prefix}/hist_timestamps.npy",
        np.asarray(hist_timestamps, dtype="<i8"),
    )
    writer.add_array(
        f"{prefix}/hist_values.npy", np.asarray(hist_values, dtype="<f8")
    )


def decode_trackers(
    reader: SegmentReader,
    prefix: str,
    locations: Dict[Hashable, Point],
    config: Optional[STLocalConfig] = None,
    index: Optional[SpatialIndex] = None,
) -> Tuple[STLocalConfig, Dict[str, STLocalTermTracker]]:
    """Rebuild term trackers, sharing one location map (and index)."""
    meta = reader.json(f"{prefix}/meta.json")
    config_payload = meta.get("config")
    if config is None:
        config = (
            decode_config(config_payload)
            if config_payload is not None
            else STLocalConfig()
        )
    rect_history = reader.array(f"{prefix}/rect_history.npy").tolist()
    open_history = reader.array(f"{prefix}/open_history.npy").tolist()
    model_counts = reader.array(f"{prefix}/model_counts.npy").tolist()
    model_totals = reader.array(f"{prefix}/model_totals.npy").tolist()
    model_priors = reader.array(f"{prefix}/model_priors.npy").tolist()
    seq_geometry = reader.array(f"{prefix}/seq_geometry.npy").tolist()
    seq_start = reader.array(f"{prefix}/seq_start.npy").tolist()
    seq_cumulative = reader.array(f"{prefix}/seq_cumulative.npy").tolist()
    seq_length = reader.array(f"{prefix}/seq_length.npy").tolist()
    cand_bounds = reader.array(f"{prefix}/cand_bounds.npy").tolist()
    cand_sums = reader.array(f"{prefix}/cand_sums.npy").tolist()
    arch_geometry = reader.array(f"{prefix}/arch_geometry.npy").tolist()
    arch_frames = reader.array(f"{prefix}/arch_frames.npy").tolist()
    arch_scores = reader.array(f"{prefix}/arch_scores.npy").tolist()
    hist_timestamps = reader.array(f"{prefix}/hist_timestamps.npy").tolist()
    hist_values = reader.array(f"{prefix}/hist_values.npy").tolist()

    trackers: Dict[str, STLocalTermTracker] = {}
    rect_at = open_at = model_at = seq_at = cand_at = arch_at = hist_at = 0
    for entry in meta["terms"]:
        tracker = STLocalTermTracker(
            locations, config=config, index=index, copy_locations=False
        )
        tracker._clock = int(entry["clock"])
        tracker.rectangle_history = rect_history[
            rect_at : rect_at + entry["rect_history"]
        ]
        rect_at += entry["rect_history"]
        tracker.open_history = open_history[
            open_at : open_at + entry["open_history"]
        ]
        open_at += entry["open_history"]

        for sid in entry["models"]:
            model = RunningMeanBaseline(model_priors[model_at])
            model._count = int(model_counts[model_at])
            model._total = float(model_totals[model_at])
            tracker._models[sid] = model
            model_at += 1

        for sequence_entry in entry["sequences"]:
            bounds = seq_geometry[seq_at]
            region = Rectangle(*(float(v) for v in bounds))
            members = frozenset(sequence_entry["members"])
            n_candidates = sequence_entry["candidates"]
            candidates = [
                (
                    int(cand_bounds[cand_at + i][0]),
                    int(cand_bounds[cand_at + i][1]),
                    float(cand_sums[cand_at + i][0]),
                    float(cand_sums[cand_at + i][1]),
                )
                for i in range(n_candidates)
            ]
            cand_at += n_candidates
            sequence = RegionSequence(
                region=region,
                stream_ids=members,
                start=int(seq_start[seq_at]),
                tracker=OnlineMaxSegments.restore(
                    candidates,
                    float(seq_cumulative[seq_at]),
                    int(seq_length[seq_at]),
                ),
            )
            key: Hashable
            if config.key_by_geometry:
                key = (region.min_x, region.min_y, region.max_x, region.max_y)
            else:
                key = members
            tracker._sequences[key] = sequence
            seq_at += 1

        for archived_entry in entry["archived"]:
            bounds = arch_geometry[arch_at]
            tracker._archived.append(
                (
                    Rectangle(*(float(v) for v in bounds)),
                    frozenset(archived_entry["members"]),
                    Interval(
                        int(arch_frames[arch_at][0]),
                        int(arch_frames[arch_at][1]),
                    ),
                    float(arch_scores[arch_at]),
                )
            )
            arch_at += 1

        for history_entry in entry["history"]:
            count = history_entry["entries"]
            tracker._history[history_entry["stream"]] = dict(
                zip(
                    hist_timestamps[hist_at : hist_at + count],
                    hist_values[hist_at : hist_at + count],
                )
            )
            hist_at += count
        trackers[entry["term"]] = tracker
    return config, trackers
