"""Bursty-document search engines (Section 5).

``score(q, d) = Σ_{t∈q} relevance(d, t) × burstiness(d, t)``  (Eq. 10)

where ``burstiness(d, t)`` is an aggregate (max by default — the
paper's best setting) of the scores of the term-``t`` patterns that
overlap the document, and ``−∞`` when none does (Eq. 11) — i.e. the
document is excluded for that term.

Three engines are provided, matching the evaluation of Section 6.3:

* :class:`BurstySearchEngine` over STComb patterns (combinatorial);
* :class:`BurstySearchEngine` over STLocal patterns (regional) — the
  engine is pattern-type-agnostic, "it only handles one type at a
  time";
* :class:`TemporalSearchEngine` (TB) — the authors' earlier KDD'09
  engine: all streams merged into one, patterns are purely temporal
  bursty intervals.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.errors import SearchError
from repro.intervals.interval import Interval
from repro.search.inverted_index import InvertedIndex, Posting
from repro.search.relevance import RelevanceFunction, log_relevance
from repro.search.threshold_algorithm import TopKResult, threshold_topk
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.document import Document, tokenize
from repro.temporal.lappas import LappasBurstDetector

__all__ = [
    "SearchResult",
    "BurstySearchEngine",
    "TemporalSearchEngine",
    "TemporalPattern",
]


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """A retrieved document with its aggregate score."""

    document: Document
    score: float


@dataclasses.dataclass(frozen=True)
class TemporalPattern:
    """A purely temporal pattern (the TB baseline's unit).

    Overlap ignores the document's origin: "this approach disregards
    the origin of each document" (Section 6.3).
    """

    term: str
    timeframe: Interval
    score: float

    def overlaps(self, document: Document) -> bool:
        return document.timestamp in self.timeframe


def _default_aggregate(scores: Sequence[float]) -> float:
    """The paper's best-performing f(P_{t,d}): the maximum pattern score."""
    return max(scores)


class _PatternEngineBase:
    """Shared machinery: postings construction + TA querying."""

    def __init__(
        self,
        collection: SpatiotemporalCollection,
        relevance: RelevanceFunction = log_relevance,
        aggregate: Callable[[Sequence[float]], float] = _default_aggregate,
    ) -> None:
        self.collection = collection
        self.relevance = relevance
        self.aggregate = aggregate
        self._index = InvertedIndex()

    # -- pattern access ------------------------------------------------
    def patterns_for(self, term: str) -> Sequence:
        raise NotImplementedError

    # -- index construction --------------------------------------------
    def _posting_list(self, term: str):
        cached = self._index.get(term)
        if cached is not None:
            return cached
        patterns = self.patterns_for(term)
        postings: List[Posting] = []
        if patterns:
            for document in self.collection.documents():
                if document.frequency(term) == 0:
                    continue
                overlapping = [
                    pattern.score
                    for pattern in patterns
                    if pattern.overlaps(document)
                ]
                if not overlapping:
                    continue  # burstiness = −∞ → excluded (Eq. 11)
                burstiness = self.aggregate(overlapping)
                relevance = self.relevance(document, term)
                postings.append(
                    Posting(doc_id=document.doc_id, score=relevance * burstiness)
                )
        return self._index.add(term, postings)

    # -- querying --------------------------------------------------------
    def search(self, query: str, k: int = 10) -> List[SearchResult]:
        """Retrieve the top-k bursty documents for a text query.

        Args:
            query: Free text; tokenised into terms (so ``"air france"``
                becomes the two-term query ``{air, france}``).
            k: Number of documents.

        Raises:
            SearchError: on an empty query.
        """
        terms = list(tokenize(query))
        if not terms:
            raise SearchError("empty query")
        lists = [self._posting_list(term) for term in terms]
        results, _ = threshold_topk(lists, k)
        documents = self._documents_by_id_map()
        return [
            SearchResult(document=documents[result.doc_id], score=result.score)
            for result in results
        ]

    def _documents_by_id_map(self) -> Dict[Hashable, Document]:
        cached = getattr(self, "_doc_map", None)
        if cached is None:
            cached = {
                document.doc_id: document
                for document in self.collection.documents()
            }
            self._doc_map = cached
        return cached


class BurstySearchEngine(_PatternEngineBase):
    """Search engine backed by mined spatiotemporal patterns.

    Works with either pattern type, one type per instance ("a separate
    instance is required for each type").

    Posting lists for every pattern-bearing term are precomputed in a
    *single* pass over the collection at construction (each document is
    visited once, scored only against the pattern terms it contains),
    instead of one full document scan per queried term.  Pass
    ``precompute=False`` to fall back to lazy per-term construction.

    Args:
        collection: The document collection to search.
        patterns: Map of term → its mined patterns (from
            :meth:`repro.core.STComb.mine`, :meth:`repro.core.STLocal.mine`
            or :meth:`repro.pipeline.BatchMiner`).
        relevance: Per-term relevance function (default log).
        aggregate: Aggregation of overlapping-pattern scores
            (default max, the paper's best).
        precompute: Build all posting lists up front (default).
    """

    def __init__(
        self,
        collection: SpatiotemporalCollection,
        patterns: Dict[str, Sequence],
        relevance: RelevanceFunction = log_relevance,
        aggregate: Callable[[Sequence[float]], float] = _default_aggregate,
        precompute: bool = True,
    ) -> None:
        super().__init__(collection, relevance=relevance, aggregate=aggregate)
        self._patterns = dict(patterns)
        if precompute:
            self.precompute()

    def patterns_for(self, term: str) -> Sequence:
        return self._patterns.get(term, ())

    def precompute(self, terms: Optional[Sequence[str]] = None) -> int:
        """Build posting lists for many terms in one document sweep.

        Args:
            terms: Terms to index; defaults to every term with at least
                one mined pattern.

        Returns:
            Number of posting lists built (terms already indexed are
            skipped).
        """
        if terms is None:
            terms = [term for term, mined in self._patterns.items() if mined]
        pending = {
            term for term in terms if self._index.get(term) is None
        }
        if not pending:
            return 0
        postings: Dict[str, List[Posting]] = {term: [] for term in pending}
        for document in self.collection.documents():
            for term in set(document.terms) & pending:
                overlapping = [
                    pattern.score
                    for pattern in self._patterns.get(term, ())
                    if pattern.overlaps(document)
                ]
                if not overlapping:
                    continue  # burstiness = −∞ → excluded (Eq. 11)
                burstiness = self.aggregate(overlapping)
                relevance = self.relevance(document, term)
                postings[term].append(
                    Posting(
                        doc_id=document.doc_id,
                        score=relevance * burstiness,
                    )
                )
        for term in pending:
            self._index.add(term, postings[term])
        return len(pending)


class TemporalSearchEngine(_PatternEngineBase):
    """The TB baseline: temporal-burstiness-only retrieval (KDD'09).

    "Since this approach disregards the origin of each document, the
    streams from the various countries were merged to a single stream."
    Patterns are the Lappas bursty intervals of the merged frequency
    sequence.

    Args:
        collection: The document collection to search.
        detector: Temporal burst detector for the merged sequences.
        relevance: Per-term relevance function.
        aggregate: Aggregation over overlapping temporal patterns.
    """

    def __init__(
        self,
        collection: SpatiotemporalCollection,
        detector: Optional[LappasBurstDetector] = None,
        relevance: RelevanceFunction = log_relevance,
        aggregate: Callable[[Sequence[float]], float] = _default_aggregate,
    ) -> None:
        super().__init__(collection, relevance=relevance, aggregate=aggregate)
        self.detector = detector if detector is not None else LappasBurstDetector()
        self._cache: Dict[str, List[TemporalPattern]] = {}

    def patterns_for(self, term: str) -> Sequence[TemporalPattern]:
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        merged = self.collection.merged_frequency_sequence(term)
        patterns = [
            TemporalPattern(term=term, timeframe=segment.interval, score=segment.score)
            for segment in self.detector.detect(merged)
        ]
        self._cache[term] = patterns
        return patterns
