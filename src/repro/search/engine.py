"""Bursty-document search engines (Section 5).

``score(q, d) = Σ_{t∈q} relevance(d, t) × burstiness(d, t)``  (Eq. 10)

where ``burstiness(d, t)`` is an aggregate (max by default — the
paper's best setting) of the scores of the term-``t`` patterns that
overlap the document, and ``−∞`` when none does (Eq. 11) — i.e. the
document is excluded for that term.

Three engines are provided, matching the evaluation of Section 6.3:

* :class:`BurstySearchEngine` over STComb patterns (combinatorial);
* :class:`BurstySearchEngine` over STLocal patterns (regional) — the
  engine is pattern-type-agnostic, "it only handles one type at a
  time";
* :class:`TemporalSearchEngine` (TB) — the authors' earlier KDD'09
  engine: all streams merged into one, patterns are purely temporal
  bursty intervals.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.errors import (
    SearchError,
    StoreCorruptionError,
    StoreError,
    StoreIOError,
)
from repro.intervals.interval import Interval
from repro.search.inverted_index import InvertedIndex, Posting
from repro.search.relevance import RelevanceFunction, log_relevance
from repro.search.topk import (
    STRATEGIES,
    normalize_query_terms,
    topk,
    topk_many,
)
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.document import Document, tokenize
from repro.temporal.lappas import LappasBurstDetector

__all__ = [
    "SearchResult",
    "BurstySearchEngine",
    "TemporalSearchEngine",
    "TemporalPattern",
    "score_posting",
]


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """A retrieved document with its aggregate score."""

    document: Document
    score: float


@dataclasses.dataclass(frozen=True)
class TemporalPattern:
    """A purely temporal pattern (the TB baseline's unit).

    Overlap ignores the document's origin: "this approach disregards
    the origin of each document" (Section 6.3).
    """

    term: str
    timeframe: Interval
    score: float

    def overlaps(self, document: Document) -> bool:
        return document.timestamp in self.timeframe


def _default_aggregate(scores: Sequence[float]) -> float:
    """The paper's best-performing f(P_{t,d}): the maximum pattern score."""
    return max(scores)


def score_posting(
    document: Document,
    term: str,
    patterns: Sequence,
    relevance: RelevanceFunction,
    aggregate: Callable[[Sequence[float]], float],
) -> Optional[Posting]:
    """One document's per-term posting (Eq. 10/11), or ``None`` if excluded.

    The single source of truth for posting scores: the static engines
    and the live serving layer (:mod:`repro.live`) all call this, which
    is what keeps their outputs byte-identical — the contract the
    differential tests enforce.
    """
    overlapping = [
        pattern.score for pattern in patterns if pattern.overlaps(document)
    ]
    if not overlapping:
        return None  # burstiness = −∞ → excluded (Eq. 11)
    return Posting(
        doc_id=document.doc_id,
        score=relevance(document, term) * aggregate(overlapping),
    )


class _PatternEngineBase:
    """Shared machinery: postings construction + top-k querying."""

    def __init__(
        self,
        collection: SpatiotemporalCollection,
        relevance: RelevanceFunction = log_relevance,
        aggregate: Callable[[Sequence[float]], float] = _default_aggregate,
        strategy: str = "auto",
        planner=None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise SearchError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.collection = collection
        self.relevance = relevance
        self.aggregate = aggregate
        self.strategy = strategy
        self.planner = planner
        self._index = InvertedIndex()
        self._doc_map: Optional[Dict[Hashable, Document]] = None
        self._built_version = collection.version
        #: term (or pseudo-entry like ``"(planner)"``) → quarantine
        #: reason; only ever populated under ``on_corruption="degrade"``.
        self._degraded: Dict[str, str] = {}
        self._on_corruption = "fail"

    def _version_token(self) -> Hashable:
        """Cache token for the planner's merged-ranking cache.

        Static engines rebuild every posting list when the collection's
        version changes, so the collection version is exactly the
        granularity at which cached merged rankings go stale.
        """
        return ("collection", self._built_version)

    # -- pattern access ------------------------------------------------
    def patterns_for(self, term: str) -> Sequence:
        raise NotImplementedError

    # -- staleness -----------------------------------------------------
    def _check_freshness(self) -> None:
        """Invalidate every derived view when the collection changed.

        Posting lists, the document map and pattern caches are all
        functions of the collection's contents; serving them across a
        mutation silently returns stale results.  The static engines
        rebuild from scratch on the next query — the incremental path
        lives in :mod:`repro.live`.
        """
        version = self.collection.version
        if version == self._built_version:
            return
        self._index.clear()
        self._doc_map = None
        self._invalidate_patterns()
        self._built_version = version

    def _invalidate_patterns(self) -> None:
        """Hook for engines with collection-derived pattern caches."""

    # -- degraded-mode serving -----------------------------------------
    def degraded_report(self) -> Dict[str, str]:
        """Quarantined posting columns: term → reason.

        Empty on a healthy engine.  Populated only when the engine was
        loaded with ``on_corruption="degrade"`` and damage was actually
        touched — quarantined terms serve empty posting lists (never a
        half-decoded column) and are reported per query through
        :attr:`~repro.search.topk.TopKStats.degraded_terms`.
        """
        return dict(self._degraded)

    # -- index construction --------------------------------------------
    def _posting_list(self, term: str):
        cached = self._index.get(term)
        if cached is not None:
            return cached
        patterns = self.patterns_for(term)
        postings: List[Posting] = []
        if patterns:
            for document in self.collection.documents():
                if document.frequency(term) == 0:
                    continue
                posting = score_posting(
                    document, term, patterns, self.relevance, self.aggregate
                )
                if posting is not None:
                    postings.append(posting)
        return self._index.add(term, postings)

    # -- querying --------------------------------------------------------
    def search(
        self, query: str, k: int = 10, strategy: Optional[str] = None
    ) -> List[SearchResult]:
        """Retrieve the top-k bursty documents for a text query.

        Args:
            query: Free text; tokenised into terms (so ``"air france"``
                becomes the two-term query ``{air, france}``).  Terms
                are deduplicated and sorted — repeating a term does not
                double-count its score.
            k: Number of documents.
            strategy: Top-k execution strategy for this query
                (``auto``/``ta``/``blockmax``/``scan``); defaults to
                the engine-level setting.  Every strategy returns the
                identical ranking.

        Raises:
            SearchError: on an empty query or unknown strategy.
        """
        results, _ = self.search_with_stats(query, k, strategy=strategy)
        return results

    def search_with_stats(
        self, query: str, k: int = 10, strategy: Optional[str] = None
    ):
        """:meth:`search` plus the :class:`~repro.search.topk.TopKStats`
        of the underlying execution (strategy run, planner tier, sorted
        accesses) — the machinery behind ``repro search --explain``."""
        terms = normalize_query_terms(tokenize(query))
        if not terms:
            raise SearchError("empty query")
        self._check_freshness()
        lists = [self._posting_list(term) for term in terms]
        results, stats = topk(
            lists,
            k,
            strategy or self.strategy,
            planner=self.planner,
            terms=terms,
            token=self._version_token(),
        )
        if self._degraded:
            affected = tuple(
                term for term in terms if term in self._degraded
            )
            if affected:
                stats = dataclasses.replace(stats, degraded_terms=affected)
        documents = self._documents_by_id_map()
        return [
            SearchResult(document=documents[result.doc_id], score=result.score)
            for result in results
        ], stats

    def search_many(
        self,
        queries: Sequence[str],
        k: int = 10,
        strategy: Optional[str] = None,
    ) -> List[List[SearchResult]]:
        """Batched :meth:`search` over a query workload.

        Posting lists are resolved once per distinct term and their
        columnar views are shared across the whole batch (see
        :func:`repro.search.topk.topk_many`), so a workload touching
        overlapping vocabularies pays each term's materialisation cost
        once.  The batch executes against a single collection snapshot.

        Raises:
            SearchError: when any query is empty.
        """
        per_query = []
        for query in queries:
            terms = normalize_query_terms(tokenize(query))
            if not terms:
                raise SearchError("empty query")
            per_query.append(terms)
        self._check_freshness()
        lists_by_term = {
            term: self._posting_list(term)
            for terms in per_query
            for term in terms
        }
        outcomes = topk_many(
            [[lists_by_term[term] for term in terms] for terms in per_query],
            k,
            strategy=strategy or self.strategy,
            planner=self.planner,
            terms_list=per_query,
            token=self._version_token(),
        )
        documents = self._documents_by_id_map()
        return [
            [
                SearchResult(
                    document=documents[result.doc_id], score=result.score
                )
                for result in results
            ]
            for results, _ in outcomes
        ]

    def _documents_by_id_map(self) -> Dict[Hashable, Document]:
        if self._doc_map is None:
            self._doc_map = {
                document.doc_id: document
                for document in self.collection.documents()
            }
        return self._doc_map


class BurstySearchEngine(_PatternEngineBase):
    """Search engine backed by mined spatiotemporal patterns.

    Works with either pattern type, one type per instance ("a separate
    instance is required for each type").

    Posting lists for every pattern-bearing term are precomputed in a
    *single* pass over the collection at construction (each document is
    visited once, scored only against the pattern terms it contains),
    instead of one full document scan per queried term.  Pass
    ``precompute=False`` to fall back to lazy per-term construction.

    Args:
        collection: The document collection to search.
        patterns: Map of term → its mined patterns (from
            :meth:`repro.core.STComb.mine`, :meth:`repro.core.STLocal.mine`
            or :meth:`repro.pipeline.BatchMiner`).
        relevance: Per-term relevance function (default log).
        aggregate: Aggregation of overlapping-pattern scores
            (default max, the paper's best).
        precompute: Build all posting lists up front (default).
        strategy: Default top-k execution strategy (``auto`` lets the
            planner pick per query; see :mod:`repro.search.topk`).
        planner: Optional :class:`~repro.search.planner.
            CalibratedPlanner` used by ``auto`` queries in place of the
            static selectivity rule (and for hot-combination serving).
    """

    def __init__(
        self,
        collection: SpatiotemporalCollection,
        patterns: Dict[str, Sequence],
        relevance: RelevanceFunction = log_relevance,
        aggregate: Callable[[Sequence[float]], float] = _default_aggregate,
        precompute: bool = True,
        columnar: bool = True,
        strategy: str = "auto",
        planner=None,
    ) -> None:
        super().__init__(
            collection,
            relevance=relevance,
            aggregate=aggregate,
            strategy=strategy,
            planner=planner,
        )
        self._patterns = dict(patterns)
        self._columnar = columnar
        self._store = None
        self._segments = None
        if precompute:
            self.precompute()

    @classmethod
    def from_store(cls, path, **engine_kwargs) -> "BurstySearchEngine":
        """Cold-start an engine from a saved ``index`` segment store.

        The collection, mined patterns and per-term posting columns are
        served from the on-disk segments (posting columns stay
        memory-mapped and materialise lazily per queried term), so no
        mining or posting construction runs — the store *is* the
        serving state.  Accepts the keyword arguments of the
        constructor except ``patterns``/``precompute``, plus
        ``mmap``/``verify`` for the store open and
        ``on_corruption`` (``"fail"``, the default, or ``"degrade"``:
        damaged posting columns are quarantined per term and serving
        continues over the healthy ones — see :meth:`degraded_report`).

        Raises:
            StoreError: for a missing, corrupted or non-``index`` store.
        """
        from repro.store import load_search_engine

        return load_search_engine(path, **engine_kwargs)

    def save(self, path, pattern_type: str = "regional", **kwargs) -> None:
        """Persist this engine as an ``index`` segment store.

        See :func:`repro.store.save_search_index` for the layout and
        the optional ``terms``/``trackers``/``metadata`` arguments.
        """
        from repro.store import save_search_index

        save_search_index(path, self, pattern_type, **kwargs)

    def patterns_for(self, term: str) -> Sequence:
        return self._patterns.get(term, ())

    def _invalidate_patterns(self) -> None:
        # The columnar snapshot copies the collection's contents; any
        # mutation invalidates it together with the posting lists —
        # and with any attached store segments, which describe the
        # pre-mutation corpus.  The quarantine list goes with them: it
        # describes segment columns that no longer back anything.
        self._store = None
        self._segments = None
        self._degraded = {}

    def _quarantine(self, term: str, reason: str) -> None:
        self._degraded[term] = reason

    def _segment_term(self, term: str):
        """Load one term's column from the attached segments.

        In the default ``"fail"`` policy every store error propagates.
        Under ``"degrade"``: a transient read failure
        (:class:`~repro.errors.StoreIOError`) is retried exactly once;
        corruption, decode failures and a failed retry quarantine the
        term (``None`` return) — it then serves an empty posting list
        and is reported, rather than raising mid-query or silently
        serving damaged scores.
        """
        try:
            return self._segments.posting_array(term)
        except StoreIOError:
            if self._on_corruption != "degrade":
                raise
            try:
                return self._segments.posting_array(term)
            except StoreError as retried:
                self._quarantine(
                    term, f"io error (after one retry): {retried}"
                )
                return None
        except StoreCorruptionError as exc:
            if self._on_corruption != "degrade":
                raise
            self._quarantine(term, str(exc))
            return None
        except StoreError as exc:
            if self._on_corruption != "degrade":
                raise
            self._quarantine(term, f"decode failure: {exc}")
            return None
        except (ValueError, IndexError, KeyError, OverflowError) as exc:
            # A corrupted packed payload can fail inside the decoder
            # before any CRC audit sees it.  In degrade mode that is
            # quarantine-worthy damage, not a crash; otherwise it is
            # store corruption and must surface as the typed error the
            # serving layers are contracted to raise, never as a bare
            # decoder exception.
            if self._on_corruption != "degrade":
                raise StoreCorruptionError(
                    f"posting decode failed for term {term!r}: {exc}"
                ) from exc
            self._quarantine(term, f"decode failure: {exc}")
            return None

    def _posting_list(self, term: str):
        if self._segments is not None:
            cached = self._index.get(term)
            if cached is not None:
                return cached
            if term not in self._degraded:
                loaded = self._segment_term(term)
                if loaded is not None:
                    return self._index.add_built(term, loaded)
            if term in self._degraded:
                # Quarantined: the empty column — never a half-decoded
                # one, never a silent rescore of the damaged store.
                return self._index.add(term, [])
        return super()._posting_list(term)

    def _columnar_store(self):
        if self._store is None:
            from repro.columnar.collection import ColumnarCollection

            self._store = ColumnarCollection(self.collection)
        return self._store

    def precompute(self, terms: Optional[Sequence[str]] = None) -> int:
        """Build posting lists for many terms in one document sweep.

        With the default scoring configuration the sweep is columnar:
        one :class:`~repro.columnar.collection.ColumnarCollection`
        snapshot serves every term's postings from its term-major index
        (vectorized overlap masks, cached log-relevance, one stable
        ``lexsort``), byte-identical to the per-document loop, which
        remains both as the fallback for custom relevance/aggregate
        callables or pattern types and as the differential-test oracle
        (``columnar=False``).

        Args:
            terms: Terms to index; defaults to every term with at least
                one mined pattern.

        Returns:
            Number of posting lists built (terms already indexed are
            skipped).
        """
        self._check_freshness()
        if terms is None:
            terms = [term for term, mined in self._patterns.items() if mined]
        pending = {
            term for term in terms if self._index.get(term) is None
        }
        if not pending:
            return 0
        remaining = set(pending)
        if self._segments is not None:
            # Attached store segments already hold these terms' columns;
            # loading them is both faster than rescoring and exactly the
            # bytes the store was verified against.
            for term in sorted(remaining, key=repr):
                if term in self._degraded:
                    self._index.add(term, [])
                    remaining.discard(term)
                    continue
                loaded = self._segment_term(term)
                if loaded is not None:
                    self._index.add_built(term, loaded)
                    remaining.discard(term)
                elif term in self._degraded:
                    self._index.add(term, [])
                    remaining.discard(term)
            if not remaining:
                return len(pending)
        from repro.columnar.scoring import (
            columnar_postings,
            vectorizable_relevance,
        )

        if (
            self._columnar
            and self.aggregate is _default_aggregate
            and vectorizable_relevance(self.relevance)
        ):
            store = self._columnar_store()
            for term in pending:
                posting_list = columnar_postings(
                    store, term, self._patterns.get(term, ()), self.relevance
                )
                if posting_list is not None:
                    self._index.add_built(term, posting_list)
                    remaining.discard(term)
        if remaining:
            postings: Dict[str, List[Posting]] = {
                term: [] for term in remaining
            }
            for document in self.collection.documents():
                for term in set(document.terms) & remaining:
                    posting = score_posting(
                        document,
                        term,
                        self._patterns.get(term, ()),
                        self.relevance,
                        self.aggregate,
                    )
                    if posting is not None:
                        postings[term].append(posting)
            for term in remaining:
                self._index.add(term, postings[term])
        return len(pending)


class TemporalSearchEngine(_PatternEngineBase):
    """The TB baseline: temporal-burstiness-only retrieval (KDD'09).

    "Since this approach disregards the origin of each document, the
    streams from the various countries were merged to a single stream."
    Patterns are the Lappas bursty intervals of the merged frequency
    sequence.

    Args:
        collection: The document collection to search.
        detector: Temporal burst detector for the merged sequences.
        relevance: Per-term relevance function.
        aggregate: Aggregation over overlapping temporal patterns.
        strategy: Default top-k execution strategy (``auto`` plans per
            query).
        planner: Optional calibrated planner for ``auto`` queries.
    """

    def __init__(
        self,
        collection: SpatiotemporalCollection,
        detector: Optional[LappasBurstDetector] = None,
        relevance: RelevanceFunction = log_relevance,
        aggregate: Callable[[Sequence[float]], float] = _default_aggregate,
        strategy: str = "auto",
        planner=None,
    ) -> None:
        super().__init__(
            collection,
            relevance=relevance,
            aggregate=aggregate,
            strategy=strategy,
            planner=planner,
        )
        self.detector = detector if detector is not None else LappasBurstDetector()
        self._cache: Dict[str, List[TemporalPattern]] = {}

    def _invalidate_patterns(self) -> None:
        # Merged frequency sequences change with every appended
        # document, so the detected temporal patterns do too.
        self._cache.clear()

    def patterns_for(self, term: str) -> Sequence[TemporalPattern]:
        self._check_freshness()
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        merged = self.collection.merged_frequency_sequence(term)
        patterns = [
            TemporalPattern(term=term, timeframe=segment.interval, score=segment.score)
            for segment in self.detector.detect(merged)
        ]
        self._cache[term] = patterns
        return patterns
