"""Relevance functions ``relevance(d, t)``.

Section 5: "relevance(d,t) ... can be implemented as any normalized
version of freq(t,d) ... In our own experiments, we found that using
log(freq(t,d)+1) yielded the best results."  The log form is the
default; raw and binary forms are provided for the ablation bench.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.streams.document import Document

__all__ = [
    "RelevanceFunction",
    "log_relevance",
    "raw_relevance",
    "binary_relevance",
]

RelevanceFunction = Callable[[Document, str], float]
"""Signature of a relevance function: (document, term) → score."""


def log_relevance(document: Document, term: str) -> float:
    """``log(freq(t, d) + 1)`` — the paper's choice."""
    return math.log(document.frequency(term) + 1.0)


def raw_relevance(document: Document, term: str) -> float:
    """Plain term frequency ``freq(t, d)``."""
    return float(document.frequency(term))


def binary_relevance(document: Document, term: str) -> float:
    """1 when the term occurs at all, else 0."""
    return 1.0 if document.frequency(term) > 0 else 0.0
