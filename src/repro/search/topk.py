"""Vectorized top-k execution over posting lists (Section 5 serving).

The paper serves Eq. 10 aggregation with Fagin's Threshold Algorithm;
:func:`repro.search.threshold_algorithm.threshold_topk` is the faithful
depth-at-a-time reference.  Its costs are per-posting Python work: one
``Posting`` materialisation per sorted access and one ``random_access``
dict probe per list per newly-seen document.  When the posting lists
already live in columnar :class:`~repro.columnar.postings.PostingArray`
segments, that work is the serving-path bottleneck.

This module is the columnar counterpart: three interchangeable
strategies that return **byte-identical rankings** (same documents,
same floating-point scores, same deterministic tiebreak order), picked
per query by a selectivity-based planner.

* ``ta`` — the reference round-robin Threshold Algorithm, unchanged.
* ``blockmax`` — block-at-a-time TA: sorted accesses are consumed in
  array blocks, the stopping threshold is bounded by each block's final
  (minimum) score, and newly-seen candidates resolve their full
  aggregates in one vectorized gather per list against a precomputed
  doc-id→row index instead of per-document dict probes.
* ``scan`` — a full vectorized scan: candidate document ids are
  intersected against every list's random-access column and the
  per-list score columns are masked and summed in one shot.  No early
  termination, but also no per-depth bookkeeping — it wins when lists
  are short or ``k`` is a large fraction of the shortest list.

Exactness notes:

* per-document aggregates are accumulated in list order starting from
  ``0.0``, reproducing ``_full_score``'s floating-point sums bit for
  bit (IEEE-754 addition is commutative but not associative — the
  *order* is what must match);
* candidate documents are those visible to *sorted* access somewhere,
  resolved through each list's *random* access relation — the exact
  semantics of TA over pruned (:meth:`~repro.search.inverted_index.
  PostingList.truncated`) lists, where random access still answers for
  documents sorted access no longer reaches;
* the blockmax stopping rule is TA's strict rule at block granularity:
  an exhausted list keeps bounding unseen documents by its final
  sorted score (``+inf`` if it never yielded), and the run only stops
  once the k-th aggregate *strictly* beats the threshold.

Integer document ids (the engines' common case) take a fully
vectorized path: the doc-id→row index is a sorted ``int64`` key array
built with ``np.asarray``/``argsort`` straight from the posting
columns — no Python-level dict construction — and candidate batches
resolve with ``searchsorted`` gathers.  ``bool`` ids coerce to their
integer values, which matches dict semantics exactly (``hash(True) ==
hash(1)``, so the reference path already aliases them).  Other id
types (strings, tuples, oversized ints) fall back to a dict-probe
gather per candidate batch; the aggregation, masking and ranking stay
vectorized either way.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import SearchError
from repro.search.inverted_index import (
    PostingList,
    random_access_map,
    rank_tiebreak,
)
from repro.search.threshold_algorithm import TopKResult, threshold_topk

__all__ = [
    "STRATEGIES",
    "TopKStats",
    "blockmax_topk",
    "normalize_query_terms",
    "plan_strategy",
    "scan_topk",
    "topk",
    "topk_many",
    "true_length",
]

#: Strategy names accepted by :func:`topk` and the engines.
STRATEGIES = ("auto", "ta", "blockmax", "scan")

#: Sorted accesses consumed per list per blockmax round.  Large enough
#: that per-round kernel-dispatch overhead amortises, small enough that
#: overshooting TA's exact stopping depth stays cheap.
DEFAULT_BLOCK = 1024

#: Below this many total visible postings the scan's single pass beats
#: any per-depth bookkeeping (kernel launch costs dominate).
SCAN_TOTAL_CUTOFF = 2048

#: TA-style early termination must descend at least ~k into the
#: shortest list before the threshold can fall under the k-th score;
#: when k is within this factor of that list, scan the lot instead.
SCAN_K_FACTOR = 4

_MISSING = object()


def normalize_query_terms(terms: Iterable[str]) -> Tuple[str, ...]:
    """Canonical query-term tuple: deduplicated and sorted.

    Duplicated query terms used to contribute their posting score once
    per occurrence, silently double-counting them in the Eq. 10
    aggregate; deduplication restores one-score-per-term.  Sorting
    makes the tuple order-insensitive, so ``"air france"`` and
    ``"france air"`` share a result-cache key *and* an aggregate
    evaluation order (floating-point sums depend on it).
    """
    return tuple(sorted(set(terms)))


@dataclasses.dataclass(frozen=True)
class TopKStats:
    """Execution metadata for one :func:`topk` call.

    Attributes:
        strategy: The strategy that actually ran (``auto`` resolved).
            ``"merged"`` means the query was answered from a
            pre-materialised hot-combination ranking (see
            :mod:`repro.search.planner`) without running any strategy.
        planned: True when a planner chose the strategy.
        sorted_accesses: Postings consumed through sorted access.
        source: How the strategy was chosen — ``"explicit"`` (caller
            named it), ``"heuristic"`` (the static selectivity rule),
            or a :class:`~repro.search.planner.CalibratedPlanner` tier
            (``"memory"``, ``"model"``, ``"explore"``, ``"merged"``).
        degraded_terms: Query terms whose posting columns were
            quarantined by degraded-mode serving (empty outside
            ``on_corruption="degrade"``); their contribution to the
            ranking is an empty posting list, so scores for documents
            that matched only those terms are missing from the result.
    """

    strategy: str
    planned: bool
    sorted_accesses: int
    source: str = "explicit"
    degraded_terms: Tuple[str, ...] = ()


def true_length(posting_list: PostingList) -> int:
    """Size of the list's full random-access relation, in O(1).

    For a pruned (:meth:`~repro.search.inverted_index.PostingList.
    truncated`) list the visible ``len()`` under-counts the work the
    scan strategy actually does: candidate gathers probe the *full*
    random-access relation, and the columnar index is built over it.
    The planner therefore needs both numbers — visible length for
    TA-style termination-depth reasoning, true length for scan-cost
    reasoning.

    Never materialises anything: lazy random-access maps are inspected
    through their backing attributes, and a
    :class:`~repro.live.index.DeltaPostingList` whose merge has not run
    yet is *estimated* as ``base + delta`` (an upper bound — overlap is
    unknowable without paying for the merge).
    """
    lazy = getattr(posting_list, "_by_doc_lazy", _MISSING)
    if lazy is not _MISSING:
        # PostingArray: a None lazy map means the relation IS the
        # visible columns; a dict means pruning replaced it wholesale.
        return len(posting_list) if lazy is None else len(lazy)
    cached = getattr(posting_list, "_by_doc_cache", _MISSING)
    if cached is not _MISSING:
        # DeltaPostingList: merged map if already paid for, else the
        # cheap upper estimate over its two sides.
        if cached is not None:
            return len(cached)
        base = getattr(posting_list, "_base", None)
        delta = getattr(posting_list, "_delta", None)
        if base is not None and delta is not None:
            return true_length(base) + true_length(delta)
        return len(posting_list)
    instance_vars = getattr(posting_list, "__dict__", None)
    by_doc = instance_vars.get("_by_doc") if instance_vars else None
    if isinstance(by_doc, dict):
        return len(by_doc)
    return len(posting_list)


def _int_keys(ids) -> Optional[np.ndarray]:
    """Ids as exact ``int64`` keys, or ``None`` when not losslessly so.

    ``np.asarray`` over a list of Python ints is a single C-level pass;
    a signed-integer or bool result proves every id was an
    int64-representable int (or a bool, which dicts already alias to
    its integer value).  Unsigned means an id above ``2**63 - 1`` —
    castable only with wraparound, so it is rejected; floats, strings,
    mixed and object dtypes are rejected outright.
    """
    try:
        arr = np.asarray(ids)
    except (ValueError, OverflowError):
        return None
    if arr.ndim != 1 or len(arr) != len(ids):
        return None
    if arr.dtype.kind == "i" or arr.dtype.kind == "b":
        return arr.astype(np.int64, copy=False)
    return None


class _LazyScoreColumn:
    """Rank-order score reads against packed blocks, decode-on-touch.

    Serves the two access shapes block-max TA makes against a score
    column — a single rank (``col.scores[hi - 1]``, the block-frontier
    bound) and a contiguous prefix slice — without ever materialising
    the full column.  Frontier reads on packed-block boundaries are
    answered straight from the stored block headers, costing no decode
    at all.
    """

    __slots__ = ("_source",)

    def __init__(self, source) -> None:
        self._source = source

    def __len__(self) -> int:
        return int(self._source.length)

    def __getitem__(self, item):
        if isinstance(item, slice):
            lo = 0 if item.start is None else int(item.start)
            hi = (
                int(self._source.length)
                if item.stop is None
                else int(item.stop)
            )
            return self._source.scores_slice(lo, hi)
        return self._source.score_at(int(item))


class _LazyTieColumn:
    """Rank-order tiebreak reads against packed blocks (slices only)."""

    __slots__ = ("_source",)

    def __init__(self, source) -> None:
        self._source = source

    def __len__(self) -> int:
        return int(self._source.length)

    def __getitem__(self, item):
        if isinstance(item, slice):
            lo = 0 if item.start is None else int(item.start)
            hi = (
                int(self._source.length)
                if item.stop is None
                else int(item.stop)
            )
            return self._source.ties_slice(lo, hi)
        return int(self._source.ties_slice(int(item), int(item) + 1)[0])


class _Columns:
    """Cached columnar view of one posting list.

    Two faces of the same list:

    * the *sorted-visible* columns (``ids`` / ``scores`` / ``ties``) —
      what sorted access iterates, in rank order;
    * the *random-access index* — every (document, score) pair
      :meth:`~repro.search.inverted_index.PostingList.random_access`
      would answer, keyed for vectorized gathers.

    For a non-pruned :class:`~repro.columnar.postings.PostingArray`
    the random-access relation *is* the sorted columns, so the index
    is one ``argsort`` over the int64 id keys — no dict is ever built.
    Pruned lists (random access outlives sorted visibility) and
    non-integer ids fall back to the list's random-access dict.

    A :class:`~repro.columnar.postings.PackedPostingArray` keeps its
    score/tiebreak columns *packed*: ``scores``/``ties`` become lazy
    block-decoding views, and the random-access index keeps the argsort
    permutation (``_map_order``) instead of a gathered score column, so
    gathers decode only the blocks that hold actual hits.  Strategies
    that touch every posting anyway (:func:`scan_topk`) call
    :meth:`densify` first.
    """

    __slots__ = (
        "ids",
        "scores",
        "ties",
        "keys",
        "exact",
        "map_is_columns",
        "_plist",
        "_packed",
        "_by_doc",
        "_map_keys",
        "_map_scores",
        "_map_order",
    )

    def __init__(self, posting_list: PostingList) -> None:
        source = getattr(posting_list, "packed", None)
        self._packed = source
        if source is not None:
            # Packed list: ids decode once (the index needs every key);
            # scores and ties stay block-lazy behind rank-order views.
            self.ids: Sequence[Hashable] = source.ids()
            self.scores = _LazyScoreColumn(source)
            self.ties = _LazyTieColumn(source)
        else:
            columns = getattr(posting_list, "columns", None)
            if callable(columns):
                ids, scores, ties = columns()
                self.ids = ids
                self.scores = np.asarray(scores, dtype=float)
                self.ties = np.asarray(ties, dtype="<i8")
            else:
                postings = list(posting_list)
                self.ids = [posting.doc_id for posting in postings]
                self.scores = np.fromiter(
                    (posting.score for posting in postings),
                    dtype=float,
                    count=len(postings),
                )
                self.ties = np.fromiter(
                    (rank_tiebreak(doc_id) for doc_id in self.ids),
                    dtype="<i8",
                    count=len(self.ids),
                )
        self._plist = posting_list
        self._by_doc: Optional[Dict[Hashable, float]] = None
        self.keys = _int_keys(self.ids)
        self.exact = self.keys is not None
        self.map_is_columns = False
        self._map_keys: Optional[np.ndarray] = None
        self._map_scores: Optional[np.ndarray] = None
        self._map_order: Optional[np.ndarray] = None
        if self.exact and self._columns_are_map():
            order = np.argsort(self.keys, kind="stable")
            map_keys = self.keys[order]
            if map_keys.size and bool(np.any(map_keys[1:] == map_keys[:-1])):
                # Duplicate ids inside one list: dict semantics keep the
                # *last* sorted occurrence — delegate to the dict.
                self.exact = False
            else:
                self.map_is_columns = True
                self._map_keys = map_keys
                if source is not None:
                    # Keep the permutation; gathers resolve hit slots
                    # through block-granular decode instead of a dense
                    # gathered copy.
                    self._map_order = order
                else:
                    self._map_scores = self.scores[order]
        elif self.exact:
            # Pruned list: random access answers beyond the visible
            # prefix, so the index comes from the dict relation.
            by_doc = self.by_doc
            map_keys = _int_keys(list(by_doc))
            if map_keys is None:
                self.exact = False
            else:
                map_scores = np.fromiter(
                    by_doc.values(), dtype=float, count=len(by_doc)
                )
                order = np.argsort(map_keys, kind="stable")
                self._map_keys = map_keys[order]
                self._map_scores = map_scores[order]

    def _columns_are_map(self) -> bool:
        """True when the sorted columns cover the random-access relation.

        A ``PostingArray`` whose lazy dict was never *overridden* (the
        pruning path replaces it wholesale) answers random access
        exactly from its columns; for other implementations, equality
        of sizes between the dict and the visible column proves the
        visible prefix is the whole relation.
        """
        posting_list = self._plist
        lazy = getattr(posting_list, "_by_doc_lazy", _MISSING)
        if lazy is not _MISSING:
            return lazy is None or len(lazy) == len(self.ids)
        by_doc = getattr(posting_list, "_by_doc", None)
        return isinstance(by_doc, dict) and len(by_doc) == len(self.ids)

    @property
    def by_doc(self) -> Dict[Hashable, float]:
        """The list's random-access dict (built/fetched on first use)."""
        if self._by_doc is None:
            self._by_doc = random_access_map(self._plist)
        return self._by_doc

    def __len__(self) -> int:
        return len(self.ids)

    def densify(self) -> None:
        """Materialise packed columns in full (exhaustive strategies).

        A no-op on already-dense views.  The scan touches every posting
        by construction, so lazy block decode would only add overhead —
        one bulk decode up front restores plain ndarray columns (and
        the gathered map-score column the fast scan path indexes).
        """
        source = self._packed
        if source is None:
            return
        self.scores = np.asarray(source.scores(), dtype=float)
        self.ties = np.asarray(source.ties(), dtype="<i8")
        if self._map_order is not None and self._map_scores is None:
            self._map_scores = self.scores[self._map_order]

    def gather(
        self, cand_ids: Sequence[Hashable], cand_keys: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Random-access scores for a candidate batch.

        Returns ``(scores, found)``; ``scores`` is meaningful only
        where ``found`` is True.
        """
        n = len(cand_ids) if cand_keys is None else int(cand_keys.size)
        if self.exact and cand_keys is not None:
            if self._map_keys.size == 0:
                return np.zeros(n), np.zeros(n, dtype=bool)
            pos = np.searchsorted(self._map_keys, cand_keys)
            pos = np.minimum(pos, self._map_keys.size - 1)
            found = self._map_keys[pos] == cand_keys
            if self._map_scores is None and self._map_order is not None:
                # Packed list: decode only the blocks holding hits.
                out = np.zeros(n)
                if bool(found.any()):
                    slots = self._map_order[pos[found]]
                    out[found] = self._packed.scores_take(slots)
                return out, found
            return self._map_scores[pos], found
        scores = np.zeros(n)
        found = np.zeros(n, dtype=bool)
        get = self.by_doc.get
        for index, doc_id in enumerate(cand_ids):
            value = get(doc_id, _MISSING)
            if value is not _MISSING:
                scores[index] = value
                found[index] = True
        return scores, found


def _columns(posting_list: PostingList) -> _Columns:
    """The list's cached columnar view (built on first use).

    The cache rides on the posting-list object itself: posting lists
    are immutable once registered, and the engines replace — never
    mutate — them on invalidation, so object identity is a sound cache
    key.  This is also what ``topk_many`` amortises: every query that
    touches the same term reuses the same materialised columns.
    """
    cached = getattr(posting_list, "_topk_columns", None)
    if cached is None:
        cached = _Columns(posting_list)
        try:
            posting_list._topk_columns = cached
        except AttributeError:
            pass  # exotic list with __slots__: rebuild per call
    return cached


def _validate(lists: Sequence[PostingList], k: int) -> None:
    if k < 1:
        raise SearchError("k must be positive")
    if not lists:
        raise SearchError("at least one posting list is required")


def _aggregate(
    cols: Sequence[_Columns],
    cand_ids: Sequence[Hashable],
    cand_keys: Optional[np.ndarray],
    driver: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Summed scores + everywhere-present mask for a candidate batch.

    Per-list contributions are added in list order starting from
    ``0.0`` — the bit-exact order of the reference ``_full_score``.
    When ``driver`` names the list the candidates were sliced from, its
    scores are taken straight from its aligned column.
    """
    n = len(cand_ids) if cand_keys is None else int(cand_keys.size)
    totals = np.zeros(n)
    keep = np.ones(n, dtype=bool)
    for index, col in enumerate(cols):
        if driver is not None and index == driver:
            totals = totals + cols[driver].scores
            continue
        scores, found = col.gather(cand_ids, cand_keys)
        keep &= found
        totals = totals + np.where(found, scores, 0.0)
    return totals, keep


def _ranked_results(
    cand_ids: Sequence[Hashable],
    totals: np.ndarray,
    ties: np.ndarray,
    keep: np.ndarray,
    k: int,
) -> List[TopKResult]:
    """Top-k of the surviving candidates by ``(-score, tiebreak)``."""
    kept = np.nonzero(keep)[0]
    if kept.size == 0:
        return []
    order = np.lexsort((ties[kept], -totals[kept]))
    top = kept[order[: min(k, kept.size)]]
    return [
        TopKResult(doc_id=cand_ids[index], score=float(totals[index]))
        for index in top.tolist()
    ]


def _single_prefix_topk(
    posting_list: PostingList, k: int
) -> Optional[Tuple[List[TopKResult], int]]:
    """Single-list scan shortcut: the ranking is a column prefix.

    A lone query term aggregates to its own scores, and the columns
    are already sorted by the ranking key ``(-score, tiebreak)``, so
    the top-k is the first ``k`` postings verbatim — provided the
    visible columns *are* the whole relation (no pruning shadow) and
    carry no duplicate ids (``ids_unique``, asserted by the store and
    live-index construction paths; adversarial hand-built lists fall
    back to the full scan).  Only the prefix is materialised, so a
    packed list decodes just its covering blocks.  Results and the
    reported access count are byte-identical to the full scan's.
    """
    if not getattr(posting_list, "ids_unique", False):
        return None
    prefix_columns = getattr(posting_list, "prefix_columns", None)
    if prefix_columns is None:
        return None
    length = len(posting_list)
    lazy = getattr(posting_list, "_by_doc_lazy", _MISSING)
    if lazy is not _MISSING and lazy is not None and len(lazy) != length:
        return None  # pruned: random access knows more than the columns
    if length == 0:
        return [], 0
    ids, scores, ties = prefix_columns(min(k, length))
    # Matches _aggregate's sum-from-zero (0.0 + s normalises -0.0).
    totals = np.zeros(len(ids)) + np.asarray(scores, dtype=float)
    keep = np.ones(len(ids), dtype=bool)
    results = _ranked_results(
        ids, totals, np.asarray(ties, dtype="<i8"), keep, k
    )
    return results, length


# ----------------------------------------------------------------------
# Strategy: full vectorized scan
# ----------------------------------------------------------------------
def scan_topk(
    lists: Sequence[PostingList], k: int
) -> Tuple[List[TopKResult], int]:
    """Exhaustive top-k in one vectorized pass.

    When no list is pruned, every surviving document must appear in the
    *shortest* list's column, which therefore drives the intersection
    directly — no candidate union is ever materialised.  Pruned or
    non-integer-id inputs fall back to deduplicating the union of
    visible ids first.  A single unpruned duplicate-free list resolves
    as a column prefix (the columns are already in ranking order)
    without touching the rest of the list at all.  Returns
    ``(results, sorted_accesses)`` where the access count is the total
    visible postings scanned.
    """
    _validate(lists, k)
    if len(lists) == 1:
        fast = _single_prefix_topk(lists[0], k)
        if fast is not None:
            return fast
    cols = [_columns(posting_list) for posting_list in lists]
    for col in cols:
        # The scan reads every posting of every list; packed columns
        # decode in one bulk pass instead of block-by-block.
        col.densify()
    accesses = sum(len(col) for col in cols)
    if accesses == 0:
        return [], 0
    if all(col.map_is_columns for col in cols):
        # Fast path: visible columns == random-access relation for all
        # lists, so survivors ⊆ every list ⊆ the smallest list.
        driver = min(range(len(cols)), key=lambda index: len(cols[index]))
        col = cols[driver]
        totals, keep = _aggregate(cols, col.ids, col.keys, driver=driver)
        return _ranked_results(col.ids, totals, col.ties, keep, k), accesses
    if all(col.exact for col in cols):
        cat_keys = np.concatenate([col.keys for col in cols])
        cat_ties = np.concatenate([col.ties for col in cols])
        cand_keys, first = np.unique(cat_keys, return_index=True)
        cand_ties = cat_ties[first]
        offsets = np.cumsum([0] + [len(col) for col in cols])

        def _doc_at(position: int) -> Hashable:
            list_index = int(np.searchsorted(offsets, position, "right")) - 1
            return cols[list_index].ids[position - int(offsets[list_index])]

        cand_ids: Sequence[Hashable] = _LazyIds(_doc_at, first.tolist())
    else:
        representative: Dict[Hashable, int] = {}
        position = 0
        for col in cols:
            for doc_id in col.ids:
                if doc_id not in representative:
                    representative[doc_id] = position
                position += 1
        cand_ids = list(representative)
        cat_ties = np.concatenate([col.ties for col in cols])
        cand_ties = cat_ties[list(representative.values())]
        cand_keys = None

    totals, keep = _aggregate(cols, cand_ids, cand_keys)
    return _ranked_results(cand_ids, totals, cand_ties, keep, k), accesses


class _LazyIds:
    """Candidate ids resolved on demand from concatenated positions.

    The exact-int scan never needs most candidates' original id
    objects — only the final ``k`` winners' — so this defers the
    position→object resolution instead of materialising the whole
    union up front.
    """

    __slots__ = ("_resolve", "_positions")

    def __init__(self, resolve, positions: List[int]) -> None:
        self._resolve = resolve
        self._positions = positions

    def __len__(self) -> int:
        return len(self._positions)

    def __getitem__(self, index: int) -> Hashable:
        return self._resolve(self._positions[index])


# ----------------------------------------------------------------------
# Strategy: block-max Threshold Algorithm
# ----------------------------------------------------------------------
def blockmax_topk(
    lists: Sequence[PostingList],
    k: int,
    block: int = DEFAULT_BLOCK,
) -> Tuple[List[TopKResult], int]:
    """TA with block-granular sorted access and vectorized aggregates.

    Each round consumes up to ``block`` postings per live list straight
    from the score columns (no ``Posting`` objects), resolves the
    round's newly-seen documents' full aggregates with one
    :meth:`_Columns.gather` per list, and re-tests TA's strict stopping
    rule with each list bounded by its block-final score.  Exact for
    the same reason TA is: every unseen document is bounded by the
    block frontier, and exhausted lists keep bounding by their final
    sorted score.

    Returns ``(results, sorted_accesses)``.
    """
    _validate(lists, k)
    if block < 1:
        raise SearchError("block size must be positive")
    cols = [_columns(posting_list) for posting_list in lists]
    lengths = [len(col) for col in cols]
    # A list that never yields a posting gives no information → +inf,
    # exactly as the reference TA initialises its bounds.
    bounds = [math.inf] * len(cols)
    exact = all(col.exact for col in cols)
    # Documents whose aggregates are already resolved: a sorted int64
    # key array in the exact path (membership via searchsorted, merged
    # by radix sort each round), a Python set otherwise.
    seen_keys = np.empty(0, dtype=np.int64)
    seen_set: set = set()
    heap: List[Tuple[float, int, Hashable]] = []
    accesses = 0
    depth = 0
    def _push(entry: Tuple[float, int, Hashable]) -> None:
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)

    while True:
        end = depth + block
        new_ids: List[Hashable] = []
        new_ties: List[int] = []
        key_chunks: List[np.ndarray] = []
        tie_chunks: List[np.ndarray] = []
        cat_ids: List[Hashable] = []
        any_live = False
        for index, (col, length) in enumerate(zip(cols, lengths)):
            if depth >= length:
                continue
            any_live = True
            hi = min(end, length)
            accesses += hi - depth
            bounds[index] = float(col.scores[hi - 1])
            if exact:
                key_chunks.append(col.keys[depth:hi])
                tie_chunks.append(col.ties[depth:hi])
                cat_ids.extend(col.ids[depth:hi])
            else:
                ties_block = col.ties[depth:hi].tolist()
                for offset, doc_id in enumerate(col.ids[depth:hi]):
                    if doc_id not in seen_set:
                        seen_set.add(doc_id)
                        new_ids.append(doc_id)
                        new_ties.append(ties_block[offset])
        if not any_live:
            break
        if exact:
            # Round-level dedup, all in C: unique within the round,
            # searchsorted against the already-seen keys, radix-merge
            # the fresh ones in.  Original id objects are resolved only
            # for the (typically few) candidates that survive the
            # everywhere-present mask.
            round_keys, first = np.unique(
                np.concatenate(key_chunks), return_index=True
            )
            if seen_keys.size:
                pos = np.minimum(
                    np.searchsorted(seen_keys, round_keys),
                    seen_keys.size - 1,
                )
                fresh = seen_keys[pos] != round_keys
                round_keys = round_keys[fresh]
                first = first[fresh]
            if round_keys.size:
                seen_keys = np.sort(
                    np.concatenate((seen_keys, round_keys)), kind="stable"
                )
                totals, keep = _aggregate(cols, (), round_keys)
                survivors = np.nonzero(keep)[0]
                if survivors.size:
                    round_ties = np.concatenate(tie_chunks)[first]
                    for position in survivors.tolist():
                        _push(
                            (
                                float(totals[position]),
                                -int(round_ties[position]),
                                cat_ids[int(first[position])],
                            )
                        )
        elif new_ids:
            totals, keep = _aggregate(cols, new_ids, None)
            for position in np.nonzero(keep)[0].tolist():
                _push(
                    (
                        float(totals[position]),
                        -new_ties[position],
                        new_ids[position],
                    )
                )
        threshold = sum(bounds)
        if len(heap) == k and heap[0][0] > threshold:
            break
        depth = end
    ranked = sorted(heap, key=lambda entry: (-entry[0], -entry[1]))
    return (
        [TopKResult(doc_id=doc_id, score=score) for score, _, doc_id in ranked],
        accesses,
    )


# ----------------------------------------------------------------------
# Planner + dispatch
# ----------------------------------------------------------------------
def plan_strategy(lists: Sequence[PostingList], k: int) -> str:
    """Pick ``blockmax`` or ``scan`` from cheap per-list statistics.

    The static fallback rule — used when no calibrated
    :class:`~repro.search.planner.CalibratedPlanner` is attached, or
    when its query log is still cold.  The inputs are the visible and
    :func:`true_length` list lengths, ``k`` and the number of terms —
    all O(1) per list.  The decision rule (documented in the README's
    performance model):

    * tiny total work (≤ ``SCAN_TOTAL_CUTOFF`` postings in the *full*
      random-access relations — what the scan actually touches; the
      visible prefix under-counts pruned lists): the scan's single
      pass beats any per-block bookkeeping;
    * ``k`` within ``SCAN_K_FACTOR``× of the shortest *visible* list
      (sorted access is what terminates): TA-style early termination
      cannot stop meaningfully before the scan would have finished
      anyway (the k-th aggregate needs ~k postings of every list
      before it can beat the threshold);
    * otherwise: deep lists and selective ``k`` — block-max TA's early
      termination pays.
    """
    _validate(lists, k)
    visible = [len(posting_list) for posting_list in lists]
    total = sum(true_length(posting_list) for posting_list in lists)
    if total <= SCAN_TOTAL_CUTOFF:
        return "scan"
    if k * SCAN_K_FACTOR >= min(visible):
        return "scan"
    return "blockmax"


def topk(
    lists: Sequence[PostingList],
    k: int,
    strategy: str = "auto",
    block: int = DEFAULT_BLOCK,
    planner=None,
    terms: Tuple[str, ...] = (),
    token: Hashable = None,
) -> Tuple[List[TopKResult], TopKStats]:
    """Top-k under Eq. 10 aggregation with a pluggable strategy.

    Args:
        lists: One posting list per (deduplicated) query term.
        k: Number of results.
        strategy: ``auto`` (planner-selected), ``ta``, ``blockmax`` or
            ``scan``.  All strategies return byte-identical rankings;
            only the execution cost differs.
        block: Sorted accesses per list per round for ``blockmax``.
        planner: Optional :class:`~repro.search.planner.
            CalibratedPlanner`.  With ``strategy="auto"`` it replaces
            the static :func:`plan_strategy` rule (falling back to it
            while its log is cold) and may answer straight from a
            pre-materialised hot-combination ranking.  Explicit
            strategies are still *observed* — their timings feed the
            planner's calibration.
        terms: The normalized query-term tuple, used by the planner
            for per-term-set memory and hot-combination mining.
        token: Version token for ``terms``' posting lists; the
            planner's merged-ranking cache is keyed by it so live
            mutation invalidates correctly.

    Returns:
        ``(results, stats)``.

    Raises:
        SearchError: on an unknown strategy, ``k < 1`` or no lists.
    """
    if strategy not in STRATEGIES:
        raise SearchError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    _validate(lists, k)
    planned = strategy == "auto"
    source = "explicit"
    if planned:
        if planner is not None:
            if terms:
                merged = planner.serve_merged(terms, token, lists, k)
                if merged is not None:
                    return merged, TopKStats(
                        strategy="merged",
                        planned=True,
                        sorted_accesses=0,
                        source="merged",
                    )
            resolved, source = planner.plan(lists, k, terms)
        else:
            resolved = plan_strategy(lists, k)
            source = "heuristic"
    else:
        resolved = strategy
    start = planner.clock() if planner is not None else 0.0
    if resolved == "ta":
        results, accesses = threshold_topk(lists, k)
    elif resolved == "blockmax":
        results, accesses = blockmax_topk(lists, k, block=block)
    else:
        results, accesses = scan_topk(lists, k)
    if planner is not None:
        planner.observe(
            lists=lists,
            k=k,
            strategy=resolved,
            sorted_accesses=accesses,
            elapsed=planner.clock() - start,
            terms=terms,
            source=source,
        )
    return results, TopKStats(
        strategy=resolved,
        planned=planned,
        sorted_accesses=accesses,
        source=source,
    )


def topk_many(
    queries: Sequence[Sequence[PostingList]],
    k: int,
    strategy: str = "auto",
    block: int = DEFAULT_BLOCK,
    planner=None,
    terms_list: Optional[Sequence[Tuple[str, ...]]] = None,
    token: Hashable = None,
) -> List[Tuple[List[TopKResult], TopKStats]]:
    """Batched :func:`topk` over a query workload.

    Every distinct posting list's columnar view (score/tiebreak arrays
    plus the doc-id→row index) is materialised exactly once and shared
    by every query that references it — the per-term materialisation
    cost is amortised across the workload instead of being paid per
    query.

    Args:
        queries: One posting-list sequence per query.
        k: Number of results per query.
        strategy: Strategy for every query (``auto`` plans per query).
        block: Blockmax block size.
        planner: Optional calibrated planner, shared by every query
            (see :func:`topk`).
        terms_list: One normalized term tuple per query, aligned with
            ``queries``; required for the planner's term-aware tiers.
        token: Version token shared by the whole batch.

    Returns:
        One ``(results, stats)`` pair per query, in input order.
    """
    warmed = set()
    for lists in queries:
        for posting_list in lists:
            if id(posting_list) not in warmed:
                warmed.add(id(posting_list))
                _columns(posting_list)
    if terms_list is None:
        terms_list = [() for _ in queries]
    return [
        topk(
            lists,
            k,
            strategy=strategy,
            block=block,
            planner=planner,
            terms=terms,
            token=token,
        )
        for lists, terms in zip(queries, terms_list)
    ]
