"""Calibrated query planner: cost model + hot-combination mining.

:func:`~repro.search.topk.plan_strategy` picks ``blockmax`` vs ``scan``
from two hand-tuned constants.  That rule is cheap but measurably
wrong on some regimes — anti-correlated lists share the *feature*
vector of ambient lists (same lengths, same ``k``) while having the
opposite best strategy, so no static function of those features can be
right on both.  `BENCH_search.json` showed ``auto`` reaching only
~1.36x vs the reference TA while ``scan`` alone reached 6.1x.

This module replaces the static rule with a planner that learns from
its own query log, in three tiers (first applicable wins):

1. **term-set memory** — once both candidate strategies have timed
   samples for an exact (normalized) term set, pick the empirically
   faster one.  This is what fixes the ambient-vs-anti confound: the
   term set identifies the regime even when the features cannot.
2. **exploration** (opt-in) — deterministically run the least-sampled
   candidate for a term set so memory warms without an explicit
   calibration pass.  Off by default: production serving should never
   knowingly run a slower strategy.
3. **cost model** — per-strategy linear least squares over O(1)
   features (totals of true/visible lengths, shortest visible list,
   ``k``, term count) fitted from the log; predict each candidate's
   cost and take the argmin.  Falls back to the static heuristic while
   the log is cold (fewer than ``min_samples`` timed rows per
   strategy).

Orthogonally, the planner mines the log for **hot term combinations**
(the TPF-log pattern-extraction insight: the query log is itself a
corpus).  A term set queried at least ``hot_support`` times gets its
full merged ranking pre-materialised once — by running the ``scan``
strategy to exhaustion, so the cached ranking is bit-identical to what
any strategy would return — and every later query over the same term
set at any ``k`` is served as a prefix slice without touching a
posting list.  The cache is keyed by a caller-supplied *version token*
(collection version for static engines, per-term version tuple for the
live engine) so mutation invalidates exactly the affected entries.

Determinism: all timing goes through an injected monotonic ``clock``
(the default is a *reference* to :func:`time.perf_counter`, called
only through the attribute) and timings only ever influence *which*
strategy runs — every strategy returns byte-identical rankings, so
planner decisions can never change query output, only query cost.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import SearchError
from repro.search.inverted_index import PostingList
from repro.search.threshold_algorithm import TopKResult
from repro.search.topk import plan_strategy, scan_topk, true_length

__all__ = [
    "CANDIDATES",
    "CalibratedPlanner",
    "CostModel",
    "QueryLog",
    "QueryRecord",
]

#: Strategies the planner chooses between.  ``ta`` is excluded by
#: design: it is the per-posting reference that ``blockmax`` strictly
#: dominates, kept only as the differential-testing oracle.
CANDIDATES: Tuple[str, ...] = ("blockmax", "scan")

#: Current schema version for persisted logs / models.
FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class QueryRecord:
    """One timed query execution, as logged by :func:`topk`.

    ``visible`` and ``true`` are per-list lengths: the visible length
    is what sorted access can reach, the :func:`~repro.search.topk.
    true_length` is the full random-access relation (they differ for
    pruned lists, and the scan's cost follows the latter).
    """

    terms: Tuple[str, ...]
    k: int
    visible: Tuple[int, ...]
    true: Tuple[int, ...]
    strategy: str
    sorted_accesses: int
    elapsed: float
    source: str = "explicit"

    def to_json(self) -> Dict[str, Any]:
        return {
            "terms": list(self.terms),
            "k": self.k,
            "visible": list(self.visible),
            "true": list(self.true),
            "strategy": self.strategy,
            "sorted_accesses": self.sorted_accesses,
            "elapsed": self.elapsed,
            "source": self.source,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "QueryRecord":
        return cls(
            terms=tuple(payload["terms"]),
            k=int(payload["k"]),
            visible=tuple(int(v) for v in payload["visible"]),
            true=tuple(int(v) for v in payload["true"]),
            strategy=str(payload["strategy"]),
            sorted_accesses=int(payload["sorted_accesses"]),
            elapsed=float(payload["elapsed"]),
            source=str(payload.get("source", "explicit")),
        )


def _features(visible: Sequence[int], true: Sequence[int], k: int) -> List[float]:
    """O(1) feature vector for the linear cost model.

    ``[1, Σtrue, Σvisible, min(visible), k, n_terms]`` — the constant
    term absorbs fixed dispatch overhead, the totals model scan-like
    full passes, the shortest visible list and ``k`` model TA-style
    termination depth, and the term count models per-list overheads.
    """
    return [
        1.0,
        float(sum(true)),
        float(sum(visible)),
        float(min(visible)),
        float(k),
        float(len(visible)),
    ]


class QueryLog:
    """Append-only in-memory log of :class:`QueryRecord`, JSONL on disk.

    Bounded by ``capacity``: the oldest records are dropped first, so a
    long-lived server calibrates against its *recent* workload.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise SearchError("query-log capacity must be positive")
        self.capacity = capacity
        self._records: List[QueryRecord] = []

    def append(self, record: QueryRecord) -> None:
        self._records.append(record)
        if len(self._records) > self.capacity:
            del self._records[: len(self._records) - self.capacity]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    def save(self, path: str) -> None:
        """Write the log as one JSON object per line."""
        lines = [json.dumps({"format": FORMAT_VERSION})]
        lines.extend(
            json.dumps(record.to_json(), sort_keys=True)
            for record in self._records
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: str, capacity: int = 4096) -> "QueryLog":
        log = cls(capacity=capacity)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = [line for line in handle.read().splitlines() if line]
        except OSError as exc:
            raise SearchError(f"cannot read query log {path!r}: {exc}") from None
        if not lines:
            raise SearchError(f"empty query log: {path}")
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise SearchError(
                f"corrupted query log {path!r}: {exc}"
            ) from None
        fmt = header.get("format")
        if fmt is None or int(fmt) > FORMAT_VERSION:
            raise SearchError(
                f"unsupported query-log format {fmt!r} in {path}; "
                f"this build reads format <= {FORMAT_VERSION}"
            )
        for line in lines[1:]:
            try:
                log.append(QueryRecord.from_json(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise SearchError(
                    f"corrupted query log {path!r}: {exc}"
                ) from None
        return log


class CostModel:
    """Per-strategy linear cost predictors fitted from a query log."""

    def __init__(self, min_samples: int = 8) -> None:
        if min_samples < 1:
            raise SearchError("min_samples must be positive")
        self.min_samples = min_samples
        self.weights: Dict[str, Optional[np.ndarray]] = {
            strategy: None for strategy in CANDIDATES
        }
        self.samples: Dict[str, int] = {strategy: 0 for strategy in CANDIDATES}

    @property
    def fitted(self) -> bool:
        """True when every candidate strategy has a fitted predictor."""
        return all(
            self.weights[strategy] is not None for strategy in CANDIDATES
        )

    def fit(self, records: Iterable[QueryRecord]) -> None:
        """Least-squares refit from scratch over ``records``.

        A strategy with fewer than ``min_samples`` timed rows keeps no
        predictor — and one unfitted candidate un-fits the whole model
        (``fitted`` is False), because an argmin between a calibrated
        and an uncalibrated prediction is meaningless.
        """
        rows: Dict[str, List[List[float]]] = {
            strategy: [] for strategy in CANDIDATES
        }
        targets: Dict[str, List[float]] = {
            strategy: [] for strategy in CANDIDATES
        }
        for record in records:
            if record.strategy not in rows:
                continue
            rows[record.strategy].append(
                _features(record.visible, record.true, record.k)
            )
            targets[record.strategy].append(record.elapsed)
        for strategy in CANDIDATES:
            self.samples[strategy] = len(rows[strategy])
            if len(rows[strategy]) < self.min_samples:
                self.weights[strategy] = None
                continue
            design = np.asarray(rows[strategy], dtype=float)
            target = np.asarray(targets[strategy], dtype=float)
            solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
            self.weights[strategy] = solution

    def predict(
        self, visible: Sequence[int], true: Sequence[int], k: int
    ) -> Dict[str, float]:
        """Predicted cost per candidate; requires ``fitted``."""
        if not self.fitted:
            raise SearchError("cost model is not fitted")
        feats = np.asarray(_features(visible, true, k), dtype=float)
        return {
            strategy: float(feats @ self.weights[strategy])
            for strategy in CANDIDATES
        }

    def choose(
        self, visible: Sequence[int], true: Sequence[int], k: int
    ) -> str:
        """Argmin of predicted cost (ties break in ``CANDIDATES`` order)."""
        predicted = self.predict(visible, true, k)
        best = CANDIDATES[0]
        for strategy in CANDIDATES[1:]:
            if predicted[strategy] < predicted[best]:
                best = strategy
        return best

    def to_payload(self) -> Dict[str, Any]:
        return {
            "min_samples": self.min_samples,
            "samples": dict(self.samples),
            "weights": {
                strategy: (
                    None if weights is None else [float(w) for w in weights]
                )
                for strategy, weights in self.weights.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CostModel":
        model = cls(min_samples=int(payload["min_samples"]))
        for strategy in CANDIDATES:
            model.samples[strategy] = int(
                payload.get("samples", {}).get(strategy, 0)
            )
            weights = payload.get("weights", {}).get(strategy)
            model.weights[strategy] = (
                None if weights is None else np.asarray(weights, dtype=float)
            )
        return model


class CalibratedPlanner:
    """Query-log-driven strategy planner with hot-combination caching.

    Thread one instance through :func:`~repro.search.topk.topk` /
    :func:`~repro.search.topk.topk_many` (the engines do this when
    constructed with ``planner=``).  The planner only ever *selects*
    among byte-identical strategies or serves a scan-materialised
    merged ranking, so attaching it can never change a query's result.

    Args:
        min_samples: Timed rows per strategy before the cost model may
            be fitted (below this the static heuristic rules).
        hot_support: Queries over the same term set before its merged
            ranking is pre-materialised.  ``0`` disables mining.
        max_merged: Bound on cached merged rankings (LRU eviction).
        refit_every: Auto-refit the cost model after this many new
            observations (``0`` disables auto-refit; :meth:`fit` stays
            available).
        explore: Opt in to tier 2 — deterministically run the
            least-sampled candidate while a term set's memory is cold.
        clock: Injected monotonic clock.  The default is a reference
            to :func:`time.perf_counter`; all calls go through this
            attribute so the kernel ``determinism`` rule (and tests,
            via a fake clock) stay in control of time.
        log: An existing :class:`QueryLog` to continue, e.g. one
            reloaded from disk.
    """

    def __init__(
        self,
        min_samples: int = 8,
        hot_support: int = 16,
        max_merged: int = 32,
        refit_every: int = 32,
        explore: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        log: Optional[QueryLog] = None,
    ) -> None:
        if hot_support < 0:
            raise SearchError("hot_support must be >= 0")
        if max_merged < 1:
            raise SearchError("max_merged must be positive")
        self.hot_support = hot_support
        self.max_merged = max_merged
        self.refit_every = refit_every
        self.explore = explore
        self.clock = clock
        self.log = log if log is not None else QueryLog()
        self.model = CostModel(min_samples=min_samples)
        # terms -> strategy -> [count, total_elapsed]
        self._memory: Dict[Tuple[str, ...], Dict[str, List[float]]] = {}
        # terms -> times seen by the planner (hot-combination support)
        self._support: Dict[Tuple[str, ...], int] = {}
        # terms -> (version token, full merged ranking); LRU order
        self._merged: "OrderedDict[Tuple[str, ...], Tuple[Hashable, Tuple[TopKResult, ...]]]" = (
            OrderedDict()
        )
        self._since_fit = 0
        self.merged_hits = 0
        self.merged_builds = 0
        self.last_decision: Optional[Dict[str, Any]] = None

    # -- planning ------------------------------------------------------
    def plan(
        self,
        lists: Sequence[PostingList],
        k: int,
        terms: Tuple[str, ...] = (),
    ) -> Tuple[str, str]:
        """Choose a strategy; returns ``(strategy, source)``.

        ``source`` is the tier that decided: ``"memory"``,
        ``"explore"``, ``"model"`` or ``"heuristic"``.
        """
        strategy, source = self._decide(lists, k, terms)
        self.last_decision = {
            "terms": list(terms),
            "k": k,
            "strategy": strategy,
            "source": source,
        }
        return strategy, source

    def _decide(
        self,
        lists: Sequence[PostingList],
        k: int,
        terms: Tuple[str, ...],
    ) -> Tuple[str, str]:
        if terms:
            samples = self._memory.get(terms)
            if samples is not None:
                counts = [
                    samples.get(strategy, (0, 0.0))[0]
                    for strategy in CANDIDATES
                ]
                if all(count > 0 for count in counts):
                    return self._memory_best(samples), "memory"
                if self.explore:
                    least = CANDIDATES[0]
                    for strategy, count in zip(CANDIDATES, counts):
                        if count < samples.get(least, (0, 0.0))[0]:
                            least = strategy
                    return least, "explore"
            elif self.explore:
                return CANDIDATES[0], "explore"
        if self.model.fitted:
            visible = [len(posting_list) for posting_list in lists]
            true = [true_length(posting_list) for posting_list in lists]
            return self.model.choose(visible, true, k), "model"
        return plan_strategy(lists, k), "heuristic"

    @staticmethod
    def _memory_best(samples: Dict[str, List[float]]) -> str:
        best = CANDIDATES[0]
        best_mean = samples[best][1] / samples[best][0]
        for strategy in CANDIDATES[1:]:
            count, total = samples[strategy]
            mean = total / count
            if mean < best_mean:
                best, best_mean = strategy, mean
        return best

    # -- observation ---------------------------------------------------
    def observe(
        self,
        lists: Sequence[PostingList],
        k: int,
        strategy: str,
        sorted_accesses: int,
        elapsed: float,
        terms: Tuple[str, ...] = (),
        source: str = "explicit",
    ) -> None:
        """Log one timed execution and fold it into memory/model state.

        Explicit-strategy runs (``repro search --strategy scan``, the
        bench's per-strategy passes) are observed too — they are free
        calibration data.
        """
        record = QueryRecord(
            terms=terms,
            k=k,
            visible=tuple(len(posting_list) for posting_list in lists),
            true=tuple(true_length(posting_list) for posting_list in lists),
            strategy=strategy,
            sorted_accesses=sorted_accesses,
            elapsed=float(elapsed),
            source=source,
        )
        self._absorb(record)
        self._since_fit += 1
        if self.refit_every and self._since_fit >= self.refit_every:
            self.fit()

    def _absorb(self, record: QueryRecord) -> None:
        self.log.append(record)
        if record.terms and record.strategy in CANDIDATES:
            samples = self._memory.setdefault(record.terms, {})
            bucket = samples.setdefault(record.strategy, [0, 0.0])
            bucket[0] += 1
            bucket[1] += record.elapsed

    def replay(self, records: Iterable[QueryRecord]) -> None:
        """Fold an existing log (e.g. reloaded from JSONL) into this
        planner: records join the bounded log and the term-set memory,
        and each term-bearing record counts toward hot-combination
        support — mining the log as a corpus, per the TPF-log pattern.
        Call :meth:`fit` afterwards to calibrate the cost model."""
        for record in records:
            self._absorb(record)
            if record.terms:
                self._support[record.terms] = (
                    self._support.get(record.terms, 0) + 1
                )

    def fit(self) -> bool:
        """Refit the cost model from the current log; True if fitted."""
        self.model.fit(self.log)
        self._since_fit = 0
        return self.model.fitted

    # -- hot-combination cache -----------------------------------------
    def serve_merged(
        self,
        terms: Tuple[str, ...],
        token: Hashable,
        lists: Sequence[PostingList],
        k: int,
    ) -> Optional[List[TopKResult]]:
        """Serve ``terms`` from the merged cache, mining support as we go.

        Every planned query bumps the term set's support count.  At
        ``hot_support`` the full merged ranking is materialised once by
        running the exhaustive ``scan`` strategy (bit-identical to any
        strategy's output by construction) and cached under ``token``;
        later calls at any ``k`` return a fresh prefix list.  A token
        mismatch (live mutation bumped a term version) drops the stale
        entry and re-materialises at the same support level.

        Returns the ranked prefix, or ``None`` when this query should
        run a strategy normally.
        """
        if self.hot_support <= 0 or not terms:
            return None
        support = self._support.get(terms, 0) + 1
        self._support[terms] = support
        entry = self._merged.get(terms)
        if entry is not None and entry[0] == token:
            self._merged.move_to_end(terms)
            self.merged_hits += 1
            return list(entry[1][: min(k, len(entry[1]))])
        if entry is not None:
            del self._merged[terms]
        if support < self.hot_support:
            return None
        total_visible = sum(len(posting_list) for posting_list in lists)
        ranked, _ = scan_topk(lists, max(1, total_visible))
        self._merged[terms] = (token, tuple(ranked))
        self._merged.move_to_end(terms)
        while len(self._merged) > self.max_merged:
            self._merged.popitem(last=False)
        self.merged_builds += 1
        return list(ranked[: min(k, len(ranked))])

    def invalidate_merged(self) -> None:
        """Drop every cached merged ranking (e.g. after a restore).

        Token keying already handles *observed* mutation; this is for
        wholesale index swaps where a fresh token could coincide with a
        stale one.
        """
        self._merged.clear()

    def hot_combinations(
        self, limit: int = 10
    ) -> List[Tuple[Tuple[str, ...], int]]:
        """The most-queried term sets, by support (deterministic order)."""
        ranked = sorted(
            self._support.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:limit]

    # -- introspection -------------------------------------------------
    def explain(
        self,
        lists: Sequence[PostingList],
        k: int,
        terms: Tuple[str, ...] = (),
    ) -> Dict[str, Any]:
        """Decision breakdown for ``repro search --explain`` (no side
        effects: support counters and the log are untouched)."""
        visible = [len(posting_list) for posting_list in lists]
        true = [true_length(posting_list) for posting_list in lists]
        strategy, source = self._decide(lists, k, terms)
        entry = self._merged.get(terms) if terms else None
        info: Dict[str, Any] = {
            "terms": list(terms),
            "k": k,
            "visible_lengths": visible,
            "true_lengths": true,
            "features": _features(visible, true, k),
            "strategy": strategy,
            "source": source,
            "heuristic": plan_strategy(lists, k),
            "model_fitted": self.model.fitted,
            "support": self._support.get(terms, 0),
            "merged_cached": entry is not None,
        }
        if self.model.fitted:
            info["predicted_cost"] = self.model.predict(visible, true, k)
        samples = self._memory.get(terms)
        if samples:
            info["memory"] = {
                strategy: {
                    "samples": int(bucket[0]),
                    "mean_elapsed": bucket[1] / bucket[0],
                }
                for strategy, bucket in sorted(samples.items())
            }
        return info

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters for ``repro planner stats``."""
        by_strategy: Dict[str, int] = {}
        by_source: Dict[str, int] = {}
        for record in self.log:
            by_strategy[record.strategy] = (
                by_strategy.get(record.strategy, 0) + 1
            )
            by_source[record.source] = by_source.get(record.source, 0) + 1
        return {
            "log_records": len(self.log),
            "by_strategy": dict(sorted(by_strategy.items())),
            "by_source": dict(sorted(by_source.items())),
            "model_fitted": self.model.fitted,
            "model_samples": dict(self.model.samples),
            "term_sets_remembered": len(self._memory),
            "merged_cached": len(self._merged),
            "merged_hits": self.merged_hits,
            "merged_builds": self.merged_builds,
            "hot_combinations": [
                {"terms": list(terms), "support": support}
                for terms, support in self.hot_combinations()
            ],
        }

    # -- persistence ---------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the *calibration* state.

        Covers the fitted model, per-term-set memory and support
        counts — everything needed to reload a planner that makes the
        same choices.  The merged-ranking cache is deliberately
        excluded: it is bound to posting-list versions of the serving
        process and rebuilds cheaply (and safely) on first contact.
        """
        return {
            "format": FORMAT_VERSION,
            "hot_support": self.hot_support,
            "max_merged": self.max_merged,
            "refit_every": self.refit_every,
            "explore": self.explore,
            "model": self.model.to_payload(),
            "memory": [
                [
                    list(terms),
                    strategy,
                    int(bucket[0]),
                    float(bucket[1]),
                ]
                for terms, samples in sorted(self._memory.items())
                for strategy, bucket in sorted(samples.items())
            ],
            "support": [
                [list(terms), int(count)]
                for terms, count in sorted(self._support.items())
            ],
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, Any],
        clock: Callable[[], float] = time.perf_counter,
    ) -> "CalibratedPlanner":
        fmt = payload.get("format")
        if fmt is None or int(fmt) > FORMAT_VERSION:
            raise SearchError(
                f"unsupported planner-model format {fmt!r}; "
                f"this build reads format <= {FORMAT_VERSION}"
            )
        model = CostModel.from_payload(payload["model"])
        planner = cls(
            min_samples=model.min_samples,
            hot_support=int(payload["hot_support"]),
            max_merged=int(payload["max_merged"]),
            refit_every=int(payload["refit_every"]),
            explore=bool(payload["explore"]),
            clock=clock,
        )
        planner.model = model
        for terms, strategy, count, total in payload.get("memory", []):
            samples = planner._memory.setdefault(tuple(terms), {})
            samples[str(strategy)] = [int(count), float(total)]
        for terms, count in payload.get("support", []):
            planner._support[tuple(terms)] = int(count)
        return planner

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, sort_keys=True, indent=2)
            handle.write("\n")

    @classmethod
    def load(
        cls,
        path: str,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "CalibratedPlanner":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SearchError(
                f"cannot read planner model {path!r}: {exc}"
            ) from None
        return cls.from_payload(payload, clock=clock)
