"""Fagin's Threshold Algorithm (TA) for top-k aggregation [6].

Given one score-sorted posting list per query term and random access
into each, TA interleaves sorted accesses across the lists, computes
each newly-seen document's full aggregate score by random access, and
stops as soon as the k-th best aggregate reaches the *threshold* — the
aggregate of the scores at the current sorted-access frontier, which
upper-bounds every unseen document.

The aggregation here is the sum of Eq. 10; a document missing from any
query term's list has per-term score ``−∞`` there (Eq. 11) and is
excluded, which preserves TA's correctness (missing documents can never
beat the threshold).

Two aspects of the stopping rule deserve care:

* an *exhausted* list still bounds the unseen documents — by its final
  (smallest) sorted score, not by zero.  Dropping exhausted lists from
  the threshold understates the bound whenever the final score is
  positive, which terminates too early and returns a wrong top-k for
  posting lists whose sorted access is a pruned prefix of their random
  access (see :meth:`~repro.search.inverted_index.PostingList.truncated`);
* the stop test must be *strict* (``k-th score > threshold``): with
  ``>=``, an unseen document can tie the k-th aggregate and win under
  the deterministic document-id tiebreak this module promises.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import SearchError
from repro.search.inverted_index import (
    PostingList,
    random_access_map,
    rank_tiebreak,
)

__all__ = ["TopKResult", "threshold_topk", "exhaustive_topk"]


@dataclasses.dataclass(frozen=True)
class TopKResult:
    """One ranked answer.

    Attributes:
        doc_id: The document.
        score: Its aggregate (summed) score.
    """

    doc_id: Hashable
    score: float


def threshold_topk(
    lists: Sequence[PostingList],
    k: int,
) -> Tuple[List[TopKResult], int]:
    """Run TA over per-term posting lists.

    Args:
        lists: One posting list per query term (sorted access order =
            score descending; random access by document id).
        k: Number of results wanted.

    Returns:
        ``(results, sorted_accesses)`` — the top-k documents by summed
        score (ties broken by document id for determinism) and the
        number of sorted accesses performed, for the efficiency
        analyses.

    Raises:
        SearchError: when ``k < 1`` or no lists are given.
    """
    if k < 1:
        raise SearchError("k must be positive")
    if not lists:
        raise SearchError("at least one posting list is required")

    seen: Set[Hashable] = set()
    # Min-heap of (score, -tiebreak, doc_id) keeps the current best k;
    # the negated tiebreak makes the heap minimum the *worst* entry
    # under the final (-score, tiebreak) ordering.
    heap: List[Tuple[float, int, Hashable]] = []
    accesses = 0
    depth = 0
    exhausted = [False] * len(lists)
    # Per-list bound on any unseen document's score there: the score at
    # the sorted-access frontier while the list is live, its *final*
    # sorted score once exhausted.  A list that exhausted without ever
    # yielding a posting gives no information, hence +inf.
    bounds = [math.inf] * len(lists)

    while not all(exhausted):
        for index, posting_list in enumerate(lists):
            if exhausted[index]:
                continue
            posting = posting_list.sorted_access(depth)
            if posting is None:
                exhausted[index] = True
                continue
            accesses += 1
            bounds[index] = posting.score
            doc_id = posting.doc_id
            if doc_id in seen:
                continue
            seen.add(doc_id)
            total = _full_score(lists, doc_id)
            if total is None:
                continue  # missing from some list → −∞ aggregate
            entry = (total, -rank_tiebreak(doc_id), doc_id)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

        # Threshold: the best aggregate any unseen document could have.
        # Strictly beating it is required — an unseen document may tie
        # the k-th score and still win the deterministic tiebreak.
        threshold = sum(bounds)
        if len(heap) == k and heap[0][0] > threshold:
            break
        depth += 1

    ranked = sorted(heap, key=lambda entry: (-entry[0], -entry[1]))
    return (
        [TopKResult(doc_id=doc_id, score=score) for score, _, doc_id in ranked],
        accesses,
    )


def _full_score(
    lists: Sequence[PostingList], doc_id: Hashable
) -> Optional[float]:
    """Aggregate score across all lists; ``None`` when absent anywhere."""
    total = 0.0
    for posting_list in lists:
        score = posting_list.random_access(doc_id)
        if score is None:
            return None
        total += score
    return total


def exhaustive_topk(
    lists: Sequence[PostingList],
    k: int,
) -> List[TopKResult]:
    """Reference top-k: scan every document of every list.

    Used by the property tests to verify TA returns exactly the same
    ranking.

    Candidates are the documents visible to *sorted* access in at least
    one list; a candidate's aggregate comes from each list's *random*
    access relation and the candidate is excluded when missing from any
    list — exactly the semantics of running :func:`_full_score` per
    candidate, but in a single accumulation pass per list instead of
    one ``random_access`` probe per (candidate, list) pair.  Per
    document the per-list scores are added in list order starting from
    ``0.0``, so the floating-point sums are bit-identical to
    :func:`_full_score`.
    """
    if k < 1:
        raise SearchError("k must be positive")
    if not lists:
        raise SearchError("at least one posting list is required")
    candidates: Set[Hashable] = set()
    for posting_list in lists:
        for posting in posting_list:
            candidates.add(posting.doc_id)
    totals: dict = {}
    appearances: dict = {}
    for posting_list in lists:
        for doc_id, score in random_access_map(posting_list).items():
            totals[doc_id] = totals.get(doc_id, 0.0) + score
            appearances[doc_id] = appearances.get(doc_id, 0) + 1
    everywhere = len(lists)
    scored = [
        TopKResult(doc_id=doc_id, score=totals[doc_id])
        for doc_id in candidates
        if appearances.get(doc_id, 0) == everywhere
    ]
    scored.sort(key=lambda result: (-result.score, rank_tiebreak(result.doc_id)))
    return scored[:k]
