"""Inverted index: term → postings ranked by per-term score.

Section 5: "An inverted index is first built, mapping each term to the
documents that include it, ranked by their respective scores.  The
popular Threshold Algorithm (TA) for top-k evaluation can then be
applied."  The per-term score here is the *product*
``relevance(d,t) × burstiness(d,t)``; documents whose burstiness is
``−∞`` (no overlapping pattern) are simply absent from the posting
list, which realises the exclusion semantics of Eq. 11.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import SearchError

__all__ = [
    "Posting",
    "PostingList",
    "InvertedIndex",
    "random_access_map",
    "rank_tiebreak",
]


def rank_tiebreak(doc_id: Hashable) -> int:
    """Deterministic but unbiased ordering key for equal scores.

    Insertion order or lexicographic ids would systematically favour
    some documents (e.g. the earliest generated); hashing removes that
    bias while keeping rankings reproducible across runs.
    """
    return zlib.crc32(repr(doc_id).encode())


@dataclasses.dataclass(frozen=True)
class Posting:
    """One document's entry in a term's posting list.

    Attributes:
        doc_id: The document.
        score: The per-term score (relevance × burstiness).
    """

    doc_id: Hashable
    score: float


class PostingList:
    """A term's postings, sorted by score descending.

    Supports both access modes TA needs: *sorted access* (iteration in
    score order) and *random access* (score lookup by document).
    """

    def __init__(self, postings: Sequence[Posting]) -> None:
        self._sorted: List[Posting] = sorted(
            postings, key=lambda p: (-p.score, rank_tiebreak(p.doc_id))
        )
        self._by_doc: Dict[Hashable, float] = {
            posting.doc_id: posting.score for posting in self._sorted
        }

    def __len__(self) -> int:
        return len(self._sorted)

    def __iter__(self):
        return iter(self._sorted)

    def sorted_access(self, rank: int) -> Optional[Posting]:
        """The posting at a given rank, or ``None`` past the end."""
        if rank < len(self._sorted):
            return self._sorted[rank]
        return None

    def random_access(self, doc_id: Hashable) -> Optional[float]:
        """Score of a document in this list, or ``None`` if absent."""
        return self._by_doc.get(doc_id)

    def top(self, k: int) -> List[Posting]:
        """The ``k`` best postings."""
        return self._sorted[:k]

    def truncated(self, depth: int) -> "PostingList":
        """Impact-ordered pruning: keep the top ``depth`` postings.

        Sorted access (and iteration) only reaches the retained prefix,
        while random access still resolves every original document —
        the classic pruned-index trade-off.  The Threshold Algorithm
        remains exact over truncated lists *because* an exhausted list
        keeps bounding unseen documents by its final retained score.
        """
        clone = PostingList(self._sorted[:depth])
        clone._by_doc = dict(self._by_doc)
        return clone


def random_access_map(posting_list) -> Dict[Hashable, float]:
    """The full random-access relation of a posting list, as a dict.

    Equivalent to calling :meth:`PostingList.random_access` for every
    document the list knows about — including documents a pruned
    (:meth:`PostingList.truncated`) list no longer exposes to sorted
    access.  The single-pass ``exhaustive_topk`` and the vectorized
    kernels in :mod:`repro.search.topk` both gather scores from this
    map instead of probing ``random_access`` once per document.

    Every posting-list implementation in the repo (``PostingList``,
    ``PostingArray``, ``DeltaPostingList``) exposes its map as
    ``_by_doc``; unknown implementations fall back to materialising the
    sorted-access sequence, with later (lower-ranked) duplicates
    overwriting earlier ones exactly as the ``PostingList`` constructor
    does.
    """
    by_doc = getattr(posting_list, "_by_doc", None)
    if isinstance(by_doc, dict):
        return by_doc
    return {posting.doc_id: posting.score for posting in posting_list}


class InvertedIndex:
    """Term → :class:`PostingList` map with lazy insertion.

    The search engines build posting lists per query term on demand and
    register them here, so repeated queries reuse the work.
    """

    def __init__(self) -> None:
        self._lists: Dict[str, PostingList] = {}

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    def add(
        self, term: str, postings: Sequence[Posting], replace: bool = False
    ) -> PostingList:
        """Register a term's posting list.

        Args:
            term: The term being indexed.
            postings: Its postings (any order; sorted internally).
            replace: Allow overwriting an existing list.  Without it, a
                duplicate registration raises — silently replacing a
                list discards postings another code path may still be
                serving from.

        Raises:
            SearchError: when the term is already indexed and
                ``replace`` is false.
        """
        return self.add_built(term, PostingList(postings), replace=replace)

    def add_built(
        self, term: str, posting_list: "PostingList", replace: bool = False
    ) -> "PostingList":
        """Register an already-constructed posting list.

        The columnar search path builds
        :class:`~repro.columnar.postings.PostingArray` lists from score
        columns; this registers them without the constructor round-trip
        through ``Posting`` objects.  Same duplicate-registration
        contract as :meth:`add`.
        """
        if not replace and term in self._lists:
            raise SearchError(
                f"term {term!r} is already indexed; pass replace=True "
                "(or discard() it first) to rebuild its posting list"
            )
        self._lists[term] = posting_list
        return posting_list

    def discard(self, term: str) -> bool:
        """Drop one term's posting list; True when it existed."""
        return self._lists.pop(term, None) is not None

    def clear(self) -> None:
        """Drop every posting list (collection-level invalidation)."""
        self._lists.clear()

    def get(self, term: str) -> Optional[PostingList]:
        """The posting list of a term, or ``None`` if not indexed."""
        return self._lists.get(term)

    def terms(self) -> List[str]:
        """All indexed terms."""
        return list(self._lists)

    def __len__(self) -> int:
        return len(self._lists)
