"""Ensemble retrieval over the three engines.

Section 6.3 observes that TB, STLocal and STComb "report diverse
results and complement each other.  Depending on the occasional
application, one may choose to focus on a particular approach, or
consider the rankings of all three approaches toward an ensemble
method."  This module implements that suggestion with a Borda-count
fusion: each engine contributes rank points for its top-k documents and
the ensemble returns the documents with the highest total.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Sequence

from repro.errors import SearchError
from repro.search.engine import SearchResult
from repro.search.inverted_index import rank_tiebreak
from repro.streams.document import Document

__all__ = ["EnsembleResult", "EnsembleSearchEngine"]


@dataclasses.dataclass(frozen=True)
class EnsembleResult:
    """A fused ranking entry.

    Attributes:
        document: The retrieved document.
        points: Total Borda points across the member engines.
        supporters: Names of the engines that returned the document.
    """

    document: Document
    points: float
    supporters: Sequence[str]


class EnsembleSearchEngine:
    """Borda-count fusion of several bursty-document engines.

    Args:
        engines: Mapping of engine name → engine; each member must
            expose ``search(query, k) -> list[SearchResult]`` (both
            :class:`~repro.search.BurstySearchEngine` and
            :class:`~repro.search.TemporalSearchEngine` qualify).
        weights: Optional per-engine vote weights (default 1.0 each).
    """

    def __init__(
        self,
        engines: Dict[str, object],
        weights: Dict[str, float] | None = None,
    ) -> None:
        if not engines:
            raise SearchError("the ensemble needs at least one engine")
        self.engines = dict(engines)
        self.weights = dict(weights) if weights is not None else {}
        for name in self.weights:
            if name not in self.engines:
                raise SearchError(f"weight given for unknown engine {name!r}")

    def search(
        self, query: str, k: int = 10, pool: int | None = None
    ) -> List[EnsembleResult]:
        """Fused top-k for a query.

        Args:
            query: The text query, handed to every member engine.
            k: Number of fused results.
            pool: How many results to request from each member engine
                (defaults to ``2 * k`` for a healthy candidate pool).

        Returns:
            Fused results sorted by Borda points (deterministic hash
            tie-break).
        """
        if k < 1:
            raise SearchError("k must be positive")
        pool = pool if pool is not None else 2 * k
        points: Dict[Hashable, float] = {}
        supporters: Dict[Hashable, List[str]] = {}
        documents: Dict[Hashable, Document] = {}
        for name, engine in self.engines.items():
            weight = self.weights.get(name, 1.0)
            hits: List[SearchResult] = engine.search(query, k=pool)
            for rank, hit in enumerate(hits):
                doc_id = hit.document.doc_id
                documents[doc_id] = hit.document
                points[doc_id] = points.get(doc_id, 0.0) + weight * (
                    pool - rank
                )
                supporters.setdefault(doc_id, []).append(name)
        fused = [
            EnsembleResult(
                document=documents[doc_id],
                points=total,
                supporters=tuple(supporters[doc_id]),
            )
            for doc_id, total in points.items()
        ]
        fused.sort(
            key=lambda r: (-r.points, rank_tiebreak(r.document.doc_id))
        )
        return fused[:k]
