"""Bursty-document search (Section 5): index, TA, engines."""

from repro.search.relevance import (
    RelevanceFunction,
    binary_relevance,
    log_relevance,
    raw_relevance,
)
from repro.search.inverted_index import InvertedIndex, Posting, PostingList
from repro.search.threshold_algorithm import (
    TopKResult,
    exhaustive_topk,
    threshold_topk,
)
from repro.search.engine import (
    BurstySearchEngine,
    SearchResult,
    TemporalPattern,
    TemporalSearchEngine,
)
from repro.search.ensemble import EnsembleResult, EnsembleSearchEngine

__all__ = [
    "BurstySearchEngine",
    "EnsembleResult",
    "EnsembleSearchEngine",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "RelevanceFunction",
    "SearchResult",
    "TemporalPattern",
    "TemporalSearchEngine",
    "TopKResult",
    "binary_relevance",
    "exhaustive_topk",
    "log_relevance",
    "raw_relevance",
    "threshold_topk",
]
