"""Bursty-document search (Section 5): index, TA, engines."""

from repro.search.relevance import (
    RelevanceFunction,
    binary_relevance,
    log_relevance,
    raw_relevance,
)
from repro.search.inverted_index import InvertedIndex, Posting, PostingList
from repro.search.threshold_algorithm import (
    TopKResult,
    exhaustive_topk,
    threshold_topk,
)
from repro.search.topk import (
    STRATEGIES,
    TopKStats,
    blockmax_topk,
    normalize_query_terms,
    plan_strategy,
    scan_topk,
    topk,
    topk_many,
    true_length,
)
from repro.search.planner import (
    CANDIDATES,
    CalibratedPlanner,
    CostModel,
    QueryLog,
    QueryRecord,
)
from repro.search.engine import (
    BurstySearchEngine,
    SearchResult,
    TemporalPattern,
    TemporalSearchEngine,
)
from repro.search.ensemble import EnsembleResult, EnsembleSearchEngine

__all__ = [
    "BurstySearchEngine",
    "CANDIDATES",
    "CalibratedPlanner",
    "CostModel",
    "EnsembleResult",
    "EnsembleSearchEngine",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "QueryLog",
    "QueryRecord",
    "RelevanceFunction",
    "STRATEGIES",
    "SearchResult",
    "TemporalPattern",
    "TemporalSearchEngine",
    "TopKResult",
    "TopKStats",
    "binary_relevance",
    "blockmax_topk",
    "exhaustive_topk",
    "log_relevance",
    "normalize_query_terms",
    "plan_strategy",
    "raw_relevance",
    "scan_topk",
    "threshold_topk",
    "topk",
    "topk_many",
    "true_length",
]
