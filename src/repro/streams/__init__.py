"""Document-stream substrate: documents, streams, collections."""

from repro.streams.document import Document, tokenize
from repro.streams.stream import DocumentStream
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.frequency import FrequencyTensor

__all__ = [
    "Document",
    "DocumentStream",
    "FrequencyTensor",
    "SpatiotemporalCollection",
    "tokenize",
]
