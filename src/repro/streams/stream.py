"""A single geostamped document stream ``D_x``.

Each stream is "associated with a fixed geographical location"
(Section 2) — a point on the projected map plane — and delivers a set
of documents ``D_x[i]`` at every timestamp ``i``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.errors import StreamError
from repro.spatial.geometry import Point
from repro.streams.document import Document

__all__ = ["DocumentStream"]


class DocumentStream:
    """One stream of documents from a fixed location.

    Args:
        stream_id: Unique identifier (e.g. a country name).
        location: The stream's geostamp on the projected 2-D plane.
        latlon: Optional original (latitude, longitude) in degrees,
            kept for geodesic computations and provenance.
    """

    def __init__(
        self,
        stream_id: Hashable,
        location: Point,
        latlon: Optional[Tuple[float, float]] = None,
    ) -> None:
        self.stream_id = stream_id
        self.location = location
        self.latlon = latlon
        self._by_timestamp: Dict[int, List[Document]] = {}
        self._term_counts: Dict[int, Counter] = {}
        self._document_count = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add(self, document: Document) -> None:
        """Append a document to the stream.

        Raises:
            StreamError: when the document belongs to another stream.
        """
        if document.stream_id != self.stream_id:
            raise StreamError(
                f"document {document.doc_id!r} belongs to stream "
                f"{document.stream_id!r}, not {self.stream_id!r}"
            )
        self._by_timestamp.setdefault(document.timestamp, []).append(document)
        counts = self._term_counts.setdefault(document.timestamp, Counter())
        counts.update(document.terms)
        self._document_count += 1

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def documents_at(self, timestamp: int) -> List[Document]:
        """``D_x[i]`` — the documents received at one timestamp."""
        return list(self._by_timestamp.get(timestamp, ()))

    def frequency(self, timestamp: int, term: str) -> int:
        """``D_x[i][t]`` (Eq. 6) — total frequency of a term at a time."""
        counts = self._term_counts.get(timestamp)
        if counts is None:
            return 0
        return counts.get(term, 0)

    def total_tokens(self, timestamp: int) -> int:
        """Total token count at a timestamp (Kleinberg's ``d_i``)."""
        counts = self._term_counts.get(timestamp)
        if counts is None:
            return 0
        return sum(counts.values())

    def frequency_sequence(self, term: str, timeline: int) -> List[float]:
        """The term's full frequency sequence ``Y_t`` over ``timeline`` steps."""
        return [float(self.frequency(i, term)) for i in range(timeline)]

    def terms_at(self, timestamp: int) -> List[str]:
        """Distinct terms observed at a timestamp."""
        counts = self._term_counts.get(timestamp)
        if counts is None:
            return []
        return list(counts.keys())

    def timestamps(self) -> List[int]:
        """Sorted timestamps with at least one document."""
        return sorted(self._by_timestamp)

    def __iter__(self) -> Iterator[Document]:
        for timestamp in sorted(self._by_timestamp):
            yield from self._by_timestamp[timestamp]

    def __len__(self) -> int:
        return self._document_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DocumentStream({self.stream_id!r}, docs={self._document_count}, "
            f"at={self.location})"
        )
