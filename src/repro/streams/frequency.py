"""Sparse per-term frequency tensors.

STComb and STLocal only ever need, for one term at a time, either a
per-stream frequency sequence or a per-timestamp cross-stream slice.
Building the dense ``(streams × timeline)`` matrix per term is wasteful
for large vocabularies, so this module provides a sparse view —
``term → stream → {timestamp: count}`` — built in one pass over the
collection, that both algorithms read from.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Set, Tuple

from repro.streams.collection import SpatiotemporalCollection

__all__ = ["FrequencyTensor"]


class FrequencyTensor:
    """One-pass sparse index of term frequencies by stream and time.

    Args:
        collection: The source collection; frequencies are copied, so
            later mutation of the collection is not reflected.
    """

    def __init__(self, collection: SpatiotemporalCollection) -> None:
        self.timeline = collection.timeline
        self.stream_ids: List[Hashable] = collection.stream_ids
        # term -> stream_id -> {timestamp: count}
        self._data: Dict[str, Dict[Hashable, Dict[int, float]]] = {}
        self._term_totals: Dict[str, float] = {}
        for stream in collection.streams():
            sid = stream.stream_id
            for timestamp in stream.timestamps():
                for term in stream.terms_at(timestamp):
                    count = float(stream.frequency(timestamp, term))
                    per_stream = self._data.setdefault(term, {})
                    per_stream.setdefault(sid, {})[timestamp] = count
                    self._term_totals[term] = (
                        self._term_totals.get(term, 0.0) + count
                    )

    # ------------------------------------------------------------------
    @property
    def terms(self) -> Set[str]:
        """All indexed terms."""
        return set(self._data)

    def total(self, term: str) -> float:
        """Total mass of a term across the whole collection."""
        return self._term_totals.get(term, 0.0)

    def streams_with(self, term: str) -> List[Hashable]:
        """Streams in which the term occurs at least once."""
        return list(self._data.get(term, {}))

    def sequence(self, term: str, stream_id: Hashable) -> List[float]:
        """The term's dense frequency sequence for one stream."""
        sparse = self._data.get(term, {}).get(stream_id, {})
        dense = [0.0] * self.timeline
        for timestamp, count in sparse.items():
            dense[timestamp] = count
        return dense

    def slice_at(self, term: str, timestamp: int) -> Dict[Hashable, float]:
        """Non-zero frequencies of a term across streams at one time."""
        result: Dict[Hashable, float] = {}
        for sid, sparse in self._data.get(term, {}).items():
            count = sparse.get(timestamp)
            if count:
                result[sid] = count
        return result

    def nonzero(self, term: str) -> Iterator[Tuple[Hashable, int, float]]:
        """Iterate ``(stream, timestamp, count)`` entries of a term."""
        for sid, sparse in self._data.get(term, {}).items():
            for timestamp, count in sparse.items():
                yield sid, timestamp, count

    def term_snapshots(self, term: str) -> Dict[int, Dict[Hashable, float]]:
        """All non-empty per-timestamp slices of a term at once.

        Equivalent to ``{t: slice_at(term, t)}`` restricted to non-empty
        slices, but built in ``O(nnz(term))`` instead of scanning every
        stream at every timestamp — the access pattern of the
        snapshot-major :class:`repro.pipeline.BatchMiner` sweep.
        """
        snapshots: Dict[int, Dict[Hashable, float]] = {}
        for sid, sparse in self._data.get(term, {}).items():
            for timestamp, count in sparse.items():
                if count:
                    snapshots.setdefault(timestamp, {})[sid] = count
        return snapshots

    def top_terms(self, k: int) -> List[Tuple[str, float]]:
        """The ``k`` heaviest terms by total mass (descending)."""
        ranked = sorted(
            self._term_totals.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:k]
