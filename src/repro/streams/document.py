"""Documents: the atomic items of a spatiotemporal stream.

Every document arrives from exactly one stream at exactly one timestamp
(Section 5: "each document d arrives from a single stream at a specific
point in time") — that pair is what decides whether the document
overlaps a mined pattern.  Documents optionally carry *provenance*: the
identifier of the synthetic event that generated them, which the
ground-truth annotator uses in place of the paper's human judge.
"""

from __future__ import annotations

import dataclasses
import re
from collections import Counter
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.errors import StreamError

__all__ = ["Document", "tokenize"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> Tuple[str, ...]:
    """Lowercase alphanumeric tokenisation.

    Multi-word query terms like ``"air france"`` are handled at the
    query layer (each word is matched separately), so the document side
    only needs simple unigram tokens.
    """
    return tuple(_TOKEN_PATTERN.findall(text.lower()))


@dataclasses.dataclass(frozen=True)
class Document:
    """One geostamped, timestamped document.

    Attributes:
        doc_id: Unique identifier within the collection.
        stream_id: The stream (location) the document was posted from.
        timestamp: Discrete arrival time.
        terms: The document's token sequence.
        event_id: Provenance — identifier of the generating event, or
            ``None`` for background documents.
    """

    doc_id: Hashable
    stream_id: Hashable
    timestamp: int
    terms: Tuple[str, ...]
    event_id: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise StreamError(f"negative timestamp {self.timestamp}")

    @classmethod
    def from_text(
        cls,
        doc_id: Hashable,
        stream_id: Hashable,
        timestamp: int,
        text: str,
        event_id: Optional[Hashable] = None,
    ) -> "Document":
        """Build a document by tokenising raw text."""
        return cls(
            doc_id=doc_id,
            stream_id=stream_id,
            timestamp=timestamp,
            terms=tokenize(text),
            event_id=event_id,
        )

    # ------------------------------------------------------------------
    def term_counts(self) -> Dict[str, int]:
        """Frequency of every term in the document."""
        return dict(Counter(self.terms))

    def frequency(self, term: str) -> int:
        """``freq(t, d)`` — occurrences of ``term`` in this document."""
        return sum(1 for token in self.terms if token == term)

    def contains_any(self, terms: Sequence[str]) -> bool:
        """True if the document contains at least one of ``terms``."""
        wanted = set(terms)
        return any(token in wanted for token in self.terms)

    def __len__(self) -> int:
        return len(self.terms)
