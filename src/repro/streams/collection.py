"""The spatiotemporal collection ``D = {D_1[·], …, D_n[·]}``.

The top-level data structure of the paper (Figure 1): a set of
geostamped document streams sharing one discrete timeline.  It provides
snapshot access ``D[i]`` for STLocal, per-stream frequency sequences for
STComb, and whole-collection views for the search engine.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.errors import StreamError, UnknownTermError
from repro.spatial.geometry import Point
from repro.streams.document import Document
from repro.streams.stream import DocumentStream

__all__ = ["SpatiotemporalCollection"]


class SpatiotemporalCollection:
    """A set of document streams over a common timeline.

    Args:
        timeline: Number of timestamps (documents must satisfy
            ``0 <= timestamp < timeline``).

    Streams are registered with :meth:`add_stream`; documents are routed
    to their stream with :meth:`add_document`.
    """

    def __init__(self, timeline: int) -> None:
        if timeline < 1:
            raise StreamError("timeline must cover at least one timestamp")
        self.timeline = timeline
        self._streams: Dict[Hashable, DocumentStream] = {}
        self._vocabulary: Set[str] = set()
        self._document_count = 0
        self._version = 0
        self._listeners: List[Callable[[Document], None]] = []

    # ------------------------------------------------------------------
    # Mutation tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter, bumped by every stream or document added.

        Anything that derives state from the collection (document maps,
        posting lists, pattern caches) can compare versions to detect
        that its derived view has gone stale.
        """
        return self._version

    def subscribe(self, listener: Callable[[Document], None]) -> None:
        """Register a callback invoked after every document append.

        Listeners receive the document *after* it has been routed to its
        stream, so they observe a consistent collection — a push-based
        alternative to polling :attr:`version` for derived views that
        must react to appends (metrics, replication, cache warming).
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_stream(
        self,
        stream_id: Hashable,
        location: Point,
        latlon: Optional[Tuple[float, float]] = None,
    ) -> DocumentStream:
        """Register a new stream at a map location.

        Raises:
            StreamError: on duplicate stream identifiers.
        """
        if stream_id in self._streams:
            raise StreamError(f"stream {stream_id!r} already registered")
        stream = DocumentStream(stream_id, location, latlon=latlon)
        self._streams[stream_id] = stream
        self._version += 1
        return stream

    def add_document(self, document: Document) -> None:
        """Route a document to its stream.

        Raises:
            StreamError: when the stream is unknown or the timestamp is
                outside the timeline.
        """
        if document.stream_id not in self._streams:
            raise StreamError(f"unknown stream {document.stream_id!r}")
        if not 0 <= document.timestamp < self.timeline:
            raise StreamError(
                f"timestamp {document.timestamp} outside timeline "
                f"[0, {self.timeline})"
            )
        self._streams[document.stream_id].add(document)
        self._vocabulary.update(document.terms)
        self._document_count += 1
        self._version += 1
        for listener in self._listeners:
            listener(document)

    # ------------------------------------------------------------------
    # Stream access
    # ------------------------------------------------------------------
    @property
    def stream_ids(self) -> List[Hashable]:
        """Registered stream identifiers, in registration order."""
        return list(self._streams)

    @property
    def vocabulary(self) -> Set[str]:
        """Every term observed anywhere in the collection."""
        return set(self._vocabulary)

    def stream(self, stream_id: Hashable) -> DocumentStream:
        """Look up one stream."""
        if stream_id not in self._streams:
            raise StreamError(f"unknown stream {stream_id!r}")
        return self._streams[stream_id]

    def streams(self) -> List[DocumentStream]:
        """All streams, in registration order."""
        return list(self._streams.values())

    def locations(self) -> Dict[Hashable, Point]:
        """Map of stream id → projected location."""
        return {sid: stream.location for sid, stream in self._streams.items()}

    def __len__(self) -> int:
        """Number of streams (the paper's ``n = |D|``)."""
        return len(self._streams)

    @property
    def document_count(self) -> int:
        """Total documents across all streams."""
        return self._document_count

    # ------------------------------------------------------------------
    # Snapshot / frequency access
    # ------------------------------------------------------------------
    def snapshot(self, timestamp: int) -> Dict[Hashable, List[Document]]:
        """``D[i]`` — the document sets of every stream at ``timestamp``."""
        return {
            sid: stream.documents_at(timestamp)
            for sid, stream in self._streams.items()
        }

    def frequency(self, stream_id: Hashable, timestamp: int, term: str) -> int:
        """``D_x[i][t]`` for a specific stream."""
        return self.stream(stream_id).frequency(timestamp, term)

    def frequency_sequence(self, stream_id: Hashable, term: str) -> List[float]:
        """One stream's full frequency sequence for a term."""
        return self.stream(stream_id).frequency_sequence(term, self.timeline)

    def frequency_matrix(self, term: str) -> np.ndarray:
        """``(n_streams, timeline)`` matrix of a term's frequencies.

        Row order follows :attr:`stream_ids`.

        Raises:
            UnknownTermError: when the term never occurs anywhere.
        """
        if term not in self._vocabulary:
            raise UnknownTermError(term)
        matrix = np.zeros((len(self._streams), self.timeline), dtype=float)
        for row, stream in enumerate(self._streams.values()):
            for timestamp in stream.timestamps():
                matrix[row, timestamp] = stream.frequency(timestamp, term)
        return matrix

    def merged_frequency_sequence(self, term: str) -> List[float]:
        """The term's sequence with all streams merged into one.

        This is the single-stream view that the TB baseline (temporal-
        burstiness-only search, Section 6.3) operates on.
        """
        totals = [0.0] * self.timeline
        for stream in self._streams.values():
            for timestamp in stream.timestamps():
                totals[timestamp] += stream.frequency(timestamp, term)
        return totals

    def terms_at(self, timestamp: int) -> Set[str]:
        """Every distinct term observed anywhere at one timestamp."""
        terms: Set[str] = set()
        for stream in self._streams.values():
            terms.update(stream.terms_at(timestamp))
        return terms

    # ------------------------------------------------------------------
    # Document access
    # ------------------------------------------------------------------
    def documents(self) -> Iterator[Document]:
        """Iterate every document in (stream, time) order."""
        for stream in self._streams.values():
            yield from stream

    def documents_matching(self, terms: Sequence[str]) -> Iterator[Document]:
        """Documents containing at least one of the given terms."""
        for document in self.documents():
            if document.contains_any(terms):
                yield document
