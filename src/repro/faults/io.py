"""The store IO shim: one seam where every durable write flows through.

The segment format (:mod:`repro.store.format`) performs all of its
filesystem effects through five operations on the installed
:class:`StoreIO` — ``write_bytes``, ``fsync_file``, ``replace``,
``fsync_dir`` and ``check_read`` — instead of calling ``open``/
``os.fsync``/``os.replace`` directly.  In production the default
:class:`StoreIO` is installed and the behaviour is byte-for-byte what
the direct calls did.  Under test, :func:`install` scopes a
:class:`FaultyIO` driven by a :class:`FaultPlan`: a deterministic,
replayable schedule of torn writes, crashes around fsync/rename
boundaries, ENOSPC, read EIO and payload bit flips.

Fault schedules are pure data (which nth matching operation fails, and
how) — no wall clock, no RNG — so the same plan over the same workload
always produces the same failure sequence, and a failing schedule can
be pasted into a regression test verbatim.
"""

from __future__ import annotations

import contextlib
import dataclasses
import errno
import os
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultyIO",
    "InjectedCrash",
    "MUTATING_OPS",
    "StoreIO",
    "install",
    "store_io",
]

#: The operations that change on-disk state, in the vocabulary used by
#: :attr:`FaultRule.op`.  ``"read"`` (the ``check_read`` hook) is the
#: only non-mutating operation.
MUTATING_OPS: Tuple[str, ...] = ("write", "fsync", "replace", "fsync_dir")

_ACTIONS_BY_OP = {
    "write": ("crash_before", "crash_after", "torn", "enospc", "bit_flip"),
    "fsync": ("crash_before", "crash_after", "enospc"),
    "replace": ("crash_before", "crash_after"),
    "fsync_dir": ("crash_before", "crash_after"),
    "read": ("eio",),
}


class InjectedCrash(BaseException):
    """A simulated process kill at a fault point.

    Deliberately *not* an :class:`Exception` subclass: a real ``kill -9``
    cannot be caught, so no ``except Exception``/``except OSError`` in
    library code may intercept the simulation either.  Only the harness
    catches it.
    """


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One deterministic fault trigger.

    Attributes:
        op: Which operation class the rule watches — one of
            ``"write"``, ``"fsync"``, ``"replace"``, ``"fsync_dir"``,
            ``"read"``, ``"mutate"`` (any mutating op) or ``"*"``.
        action: What happens when the rule fires — ``"crash_before"``,
            ``"crash_after"``, ``"torn"`` (write a prefix, then crash),
            ``"enospc"`` (raise ``OSError(ENOSPC)``), ``"eio"`` (raise
            ``OSError(EIO)`` from ``check_read``) or ``"bit_flip"``
            (corrupt one byte of the payload, then write normally).
        path: Substring the operation's target path must contain
            (empty = match every path).
        index: The nth matching operation (0-based) that triggers.
        count: How many consecutive matches trigger, starting at
            ``index`` — ``count=1`` models a transient fault a retry
            survives, ``count=2`` defeats a single retry.
        byte: For ``"torn"``: keep this many leading bytes.  For
            ``"bit_flip"``: flip the low bit of the byte at this offset
            (negative offsets index from the end).
    """

    op: str
    action: str
    path: str = ""
    index: int = 0
    count: int = 1
    byte: int = 0

    def __post_init__(self) -> None:
        if self.op not in ("*", "mutate") + MUTATING_OPS + ("read",):
            raise ConfigurationError(
                f"fault rule op {self.op!r} is not one of "
                f"{('*', 'mutate') + MUTATING_OPS + ('read',)}"
            )
        if self.op in _ACTIONS_BY_OP:
            allowed = _ACTIONS_BY_OP[self.op]
            if self.action not in allowed:
                raise ConfigurationError(
                    f"fault action {self.action!r} does not apply to "
                    f"op {self.op!r} (allowed: {allowed})"
                )

    def watches(self, op: str) -> bool:
        if self.op == "*":
            return True
        if self.op == "mutate":
            return op in MUTATING_OPS
        return self.op == op


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultRule` triggers.

    Plans are plain data: serialise one with ``dataclasses.asdict`` and
    rebuild it to replay the exact failure sequence elsewhere.
    """

    rules: Tuple[FaultRule, ...]

    def __init__(self, rules: Sequence[FaultRule] = ()) -> None:
        object.__setattr__(self, "rules", tuple(rules))

    @classmethod
    def crash_before(cls, op: str, path: str = "", index: int = 0) -> "FaultPlan":
        return cls([FaultRule(op=op, action="crash_before", path=path, index=index)])

    @classmethod
    def crash_after(cls, op: str, path: str = "", index: int = 0) -> "FaultPlan":
        return cls([FaultRule(op=op, action="crash_after", path=path, index=index)])

    @classmethod
    def torn_write(cls, path: str, keep_bytes: int, index: int = 0) -> "FaultPlan":
        return cls(
            [FaultRule(op="write", action="torn", path=path, index=index, byte=keep_bytes)]
        )

    @classmethod
    def enospc(cls, path: str = "", index: int = 0) -> "FaultPlan":
        return cls([FaultRule(op="write", action="enospc", path=path, index=index)])

    @classmethod
    def read_eio(cls, path: str = "", index: int = 0, count: int = 1) -> "FaultPlan":
        return cls(
            [FaultRule(op="read", action="eio", path=path, index=index, count=count)]
        )

    @classmethod
    def bit_flip(cls, path: str, byte: int = -1, index: int = 0) -> "FaultPlan":
        return cls(
            [FaultRule(op="write", action="bit_flip", path=path, index=index, byte=byte)]
        )


class StoreIO:
    """The real filesystem backend of the store's write/read path."""

    def write_bytes(self, path: str, data: bytes) -> None:
        """Write ``data`` to ``path``, replacing any existing file."""
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()

    def fsync_file(self, path: str) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # repro: noqa[error-escalation] -- platform without directory fds; durability best-effort by design  # pragma: no cover
            return
        try:
            os.fsync(fd)
        except OSError:  # repro: noqa[error-escalation] -- fsync unsupported on directories on some platforms  # pragma: no cover
            pass
        finally:
            os.close(fd)

    def check_read(self, path: str) -> None:
        """Hook invoked before a segment payload read; a no-op here.

        :class:`FaultyIO` raises ``OSError(EIO)`` from this hook to
        model transient media errors on the read path.
        """


class FaultyIO(StoreIO):
    """A :class:`StoreIO` that executes a :class:`FaultPlan`.

    Every triggered fault is appended to :attr:`events` as
    ``(op, path, action)``, so a test can assert the exact failure
    sequence a plan produced — the determinism contract.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: List[Tuple[str, str, str]] = []
        self._seen: List[int] = [0] * len(plan.rules)

    def _trigger(self, op: str, path: str) -> Optional[FaultRule]:
        hit: Optional[FaultRule] = None
        for position, rule in enumerate(self.plan.rules):
            if not rule.watches(op):
                continue
            if rule.path and rule.path not in path:
                continue
            seen = self._seen[position]
            self._seen[position] = seen + 1
            if hit is None and rule.index <= seen < rule.index + rule.count:
                hit = rule
        if hit is not None:
            self.events.append((op, path, hit.action))
        return hit

    # ------------------------------------------------------------------
    def write_bytes(self, path: str, data: bytes) -> None:
        rule = self._trigger("write", path)
        if rule is None:
            super().write_bytes(path, data)
            return
        if rule.action == "crash_before":
            raise InjectedCrash(f"injected crash before write of {path}")
        if rule.action == "torn":
            super().write_bytes(path, data[: rule.byte])
            raise InjectedCrash(
                f"injected torn write of {path}: {rule.byte} of "
                f"{len(data)} bytes reached disk"
            )
        if rule.action == "enospc":
            raise OSError(errno.ENOSPC, "no space left on device (injected)", path)
        if rule.action == "bit_flip":
            mutated = bytearray(data)
            if mutated:
                mutated[rule.byte] ^= 0x01
            super().write_bytes(path, bytes(mutated))
            return
        super().write_bytes(path, data)
        if rule.action == "crash_after":
            raise InjectedCrash(f"injected crash after write of {path}")

    def fsync_file(self, path: str) -> None:
        rule = self._trigger("fsync", path)
        if rule is not None and rule.action == "crash_before":
            raise InjectedCrash(f"injected crash before fsync of {path}")
        if rule is not None and rule.action == "enospc":
            raise OSError(errno.ENOSPC, "no space left on device (injected)", path)
        super().fsync_file(path)
        if rule is not None and rule.action == "crash_after":
            raise InjectedCrash(f"injected crash after fsync of {path}")

    def replace(self, src: str, dst: str) -> None:
        rule = self._trigger("replace", dst)
        if rule is not None and rule.action == "crash_before":
            raise InjectedCrash(f"injected crash before rename to {dst}")
        super().replace(src, dst)
        if rule is not None and rule.action == "crash_after":
            raise InjectedCrash(f"injected crash after rename to {dst}")

    def fsync_dir(self, path: str) -> None:
        rule = self._trigger("fsync_dir", path)
        if rule is not None and rule.action == "crash_before":
            raise InjectedCrash(f"injected crash before directory fsync of {path}")
        super().fsync_dir(path)
        if rule is not None and rule.action == "crash_after":
            raise InjectedCrash(f"injected crash after directory fsync of {path}")

    def check_read(self, path: str) -> None:
        rule = self._trigger("read", path)
        if rule is not None and rule.action == "eio":
            raise OSError(errno.EIO, "input/output error (injected)", path)


#: The installed-IO stack; the top is what :func:`store_io` returns.
#: A list (not a module global reassigned in place) so nested installs
#: compose and an unwinding ``finally`` always restores its parent.
_STACK: List[StoreIO] = [StoreIO()]


def store_io() -> StoreIO:
    """The currently installed IO backend (the real one by default)."""
    return _STACK[-1]


@contextlib.contextmanager
def install(io: StoreIO) -> Iterator[StoreIO]:
    """Scope ``io`` as the store IO backend for the duration."""
    _STACK.append(io)
    try:
        yield io
    finally:
        _STACK.pop()
