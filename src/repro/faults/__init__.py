"""Deterministic fault injection and crash-recovery verification.

The store layer claims crash safety — atomic manifest rename, CRC-32
per file, format gating — and this package is what *exercises* the
claim.  :mod:`repro.faults.io` defines the IO shim every durable store
write flows through plus the :class:`FaultPlan`/:class:`FaultyIO` pair
that injects torn writes, crashes, ENOSPC, read EIO and bit flips on a
deterministic, replayable schedule; :mod:`repro.faults.harness` sweeps
an injected kill across every write/fsync/rename boundary of a save
and checks each survivor against the recovery invariant (typed refusal
or byte-identical committed store — never a half-state).
"""

from repro.faults.harness import (
    CrashPoint,
    OpRecorder,
    record_operations,
    snapshot_files,
    sweep_crash_points,
)
from repro.faults.io import (
    MUTATING_OPS,
    FaultPlan,
    FaultRule,
    FaultyIO,
    InjectedCrash,
    StoreIO,
    install,
    store_io,
)

__all__ = [
    "CrashPoint",
    "FaultPlan",
    "FaultRule",
    "FaultyIO",
    "InjectedCrash",
    "MUTATING_OPS",
    "OpRecorder",
    "StoreIO",
    "install",
    "record_operations",
    "snapshot_files",
    "store_io",
    "sweep_crash_points",
]
