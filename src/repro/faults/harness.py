"""Crash-point sweep: kill a save at every IO boundary, check recovery.

The sweep is exhaustive by construction rather than by enumeration in
the test's head: a :class:`OpRecorder` first records the full ordered
sequence of mutating IO operations a workload performs (every write,
fsync, rename and directory fsync), then the workload is re-run once
per boundary with an injected kill immediately before that operation
(plus one final run killed *after* the last), and the surviving
directory is judged against the recovery invariant:

* **refused** — no manifest is present; a :class:`SegmentReader` must
  raise a typed :class:`~repro.errors.StoreCorruptionError` naming the
  store, never serve a half-state;
* **complete** — a manifest is present (the kill landed at or after
  the atomic rename); the store must verify clean and be byte-identical
  to an unfaulted reference run.

Saves are deterministic (sorted manifests, fixed dtypes, no clocks in
payloads), which is what makes the byte-identity comparison exact.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.io import (
    FaultPlan,
    FaultRule,
    FaultyIO,
    InjectedCrash,
    StoreIO,
    install,
)

__all__ = [
    "CrashPoint",
    "OpRecorder",
    "record_operations",
    "snapshot_files",
    "sweep_crash_points",
]


class OpRecorder(StoreIO):
    """A real :class:`StoreIO` that also records every mutating op."""

    def __init__(self) -> None:
        self.ops: List[Tuple[str, str]] = []

    def write_bytes(self, path: str, data: bytes) -> None:
        self.ops.append(("write", path))
        super().write_bytes(path, data)

    def fsync_file(self, path: str) -> None:
        self.ops.append(("fsync", path))
        super().fsync_file(path)

    def replace(self, src: str, dst: str) -> None:
        self.ops.append(("replace", dst))
        super().replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        self.ops.append(("fsync_dir", path))
        super().fsync_dir(path)


class CrashPoint:
    """Outcome of one swept boundary.

    Attributes:
        index: Which mutating operation the kill preceded (or, for the
            final point, followed).
        op: ``(operation, path)`` at the boundary.
        verdict: ``"refused"`` or ``"complete"`` when the invariant
            held; a diagnostic string starting with ``"VIOLATION"``
            otherwise.
    """

    def __init__(self, index: int, op: Tuple[str, str], verdict: str) -> None:
        self.index = index
        self.op = op
        self.verdict = verdict

    @property
    def ok(self) -> bool:
        return self.verdict in ("refused", "complete")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrashPoint({self.index}, {self.op!r}, {self.verdict!r})"


def record_operations(
    save: Callable[[str], None], scratch: str
) -> List[Tuple[str, str]]:
    """Run ``save`` once against a recorder; return its mutating ops."""
    recorder = OpRecorder()
    with install(recorder):
        save(scratch)
    return list(recorder.ops)


def snapshot_files(root: str) -> Dict[str, bytes]:
    """Relative path → content bytes for every file under ``root``."""
    files: Dict[str, bytes] = {}
    for base, _, names in os.walk(root):
        for name in sorted(names):
            target = os.path.join(base, name)
            with open(target, "rb") as handle:
                files[os.path.relpath(target, root)] = handle.read()
    return files


def _judge(
    target: str, reference: Dict[str, bytes], manifest_name: str
) -> str:
    """Apply the recovery invariant to one post-crash directory."""
    from repro.errors import StoreCorruptionError, StoreError
    from repro.store.format import SegmentReader

    manifest_present = os.path.exists(os.path.join(target, manifest_name))
    if not manifest_present:
        try:
            SegmentReader(target)
        except StoreCorruptionError:  # repro: noqa[error-escalation] -- the typed refusal IS the verdict the sweep asserts; converting it to "refused" is the harness's contract
            return "refused"
        except StoreError as exc:
            return f"VIOLATION: untyped refusal {type(exc).__name__}: {exc}"
        return "VIOLATION: reader served a store that has no manifest"
    try:
        SegmentReader(target, verify=True)
    except StoreError as exc:
        return (
            "VIOLATION: manifest present but store does not verify: "
            f"{type(exc).__name__}: {exc}"
        )
    survived = snapshot_files(target)
    if survived != reference:
        missing = sorted(name for name in reference if name not in survived)
        extra = sorted(name for name in survived if name not in reference)
        differing = sorted(
            name
            for name in reference
            if name in survived and reference[name] != survived[name]
        )
        return (
            "VIOLATION: committed store differs from reference "
            f"(missing={missing}, extra={extra}, differing={differing})"
        )
    return "complete"


def sweep_crash_points(
    save: Callable[[str], None],
    base: str,
    manifest_name: str = "MANIFEST.json",
    ops: Optional[List[Tuple[str, str]]] = None,
) -> List[CrashPoint]:
    """Kill ``save`` at every mutating-IO boundary; judge each outcome.

    Args:
        save: Builds one store at the path it is given.  Must be
            deterministic across calls (same bytes every run).
        base: Scratch directory; per-point targets are created inside.
        manifest_name: The commit record's filename.
        ops: Pre-recorded operation sequence (recorded here when
            omitted).

    Returns:
        One :class:`CrashPoint` per boundary — ``len(ops) + 1`` of them
        (a kill before each op, plus one after the last).
    """
    reference_dir = os.path.join(base, "reference")
    save(reference_dir)
    reference = snapshot_files(reference_dir)
    if ops is None:
        ops = record_operations(save, os.path.join(base, "recording"))

    points: List[CrashPoint] = []
    boundaries = [
        ("crash_before", index, ops[index]) for index in range(len(ops))
    ]
    boundaries.append(("crash_after", len(ops) - 1, ops[-1]))
    for action, index, op in boundaries:
        label = "before" if action == "crash_before" else "after"
        target = os.path.join(base, f"crash_{label}_{index:03d}")
        plan = FaultPlan([FaultRule(op="mutate", action=action, index=index)])
        faulty = FaultyIO(plan)
        crashed = False
        with install(faulty):
            try:
                save(target)
            except InjectedCrash:
                crashed = True
        if not crashed:
            points.append(
                CrashPoint(index, op, "VIOLATION: injected kill never fired")
            )
            continue
        points.append(CrashPoint(index, op, _judge(target, reference, manifest_name)))
    return points
