"""Classical (Torgerson) Multidimensional Scaling.

Section 6.1: "To project the sources' locations on the 2-D plane, we
use Multidimensional Scaling given the pair-wise geographical distances
of sources."  Classical MDS double-centres the squared distance matrix
and embeds with the top eigenvectors of the resulting Gram matrix.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import InvalidGeometryError
from repro.spatial.geometry import Point

__all__ = ["classical_mds", "mds_points", "stress"]


def classical_mds(distances: np.ndarray, dimensions: int = 2) -> np.ndarray:
    """Embed a distance matrix into ``dimensions``-D Euclidean space.

    Args:
        distances: Symmetric non-negative ``(n, n)`` matrix with a zero
            diagonal.
        dimensions: Target dimensionality (2 for the paper's map plane).

    Returns:
        ``(n, dimensions)`` coordinate array.  Axes are ordered by
        explained variance; negative eigenvalues (non-Euclidean input)
        are clipped to zero, which is the standard Torgerson treatment.

    Raises:
        InvalidGeometryError: for non-square or asymmetric input.
    """
    matrix = np.asarray(distances, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InvalidGeometryError("distance matrix must be square")
    if not np.allclose(matrix, matrix.T, atol=1e-8):
        raise InvalidGeometryError("distance matrix must be symmetric")
    n = matrix.shape[0]
    if dimensions < 1:
        raise InvalidGeometryError("dimensions must be positive")

    squared = matrix**2
    centering = np.eye(n) - np.ones((n, n)) / n
    gram = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    # eigh returns ascending order; take the top `dimensions`.
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    top_values = np.clip(eigenvalues[order], 0.0, None)
    top_vectors = eigenvectors[:, order]
    return top_vectors * np.sqrt(top_values)


def mds_points(distances: np.ndarray) -> List[Point]:
    """Convenience wrapper: 2-D classical MDS returning :class:`Point` s."""
    coords = classical_mds(distances, dimensions=2)
    return [Point(float(x), float(y)) for x, y in coords]


def stress(distances: np.ndarray, embedding: np.ndarray) -> float:
    """Kruskal stress-1 of an embedding against the target distances.

    Used in tests to verify that the MDS projection preserves the
    geodesic distance structure well enough for STLocal's locality
    assumptions to hold.
    """
    matrix = np.asarray(distances, dtype=float)
    coords = np.asarray(embedding, dtype=float)
    diffs = coords[:, None, :] - coords[None, :, :]
    embedded = np.sqrt((diffs**2).sum(axis=2))
    numerator = ((matrix - embedded) ** 2).sum()
    denominator = (matrix**2).sum()
    if denominator == 0.0:
        return 0.0
    return float(np.sqrt(numerator / denominator))
