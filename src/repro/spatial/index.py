"""Uniform-grid spatial index over map points.

R-Bursty and the evaluation code repeatedly answer "which streams lie
inside this rectangle?" (e.g. counting countries inside an MBR for
Table 1).  A linear scan is fine at n = 181, but the scalability sweep
of Figure 8 pushes the stream count into the tens of thousands, where a
bucketed index pays off.  This is a deliberately simple uniform-bucket
index: points are hashed into square buckets; rectangle queries visit
only the overlapping buckets.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EmptyInputError, InternalInvariantError
from repro.spatial.geometry import Point, Rectangle, mbr
from repro.spatial.grid import MAX_TREE_LEVELS, interleave_codes, morton_windows

__all__ = ["IntervalSpatialIndex", "SpatialIndex"]


class SpatialIndex:
    """Bucketed point index supporting rectangle and nearest queries.

    Args:
        points: ``(item, point)`` pairs to index.
        bucket_size: Bucket edge length; when omitted it is derived from
            the data extent so that the grid has roughly ``sqrt(n)``
            buckets per side.
    """

    def __init__(
        self,
        points: Sequence[Tuple[Hashable, Point]],
        bucket_size: Optional[float] = None,
    ) -> None:
        if not points:
            raise EmptyInputError("SpatialIndex requires at least one point")
        self._entries: List[Tuple[Hashable, Point]] = list(points)
        extent = mbr([point for _, point in self._entries])
        if bucket_size is None:
            per_side = max(1, int(math.sqrt(len(self._entries))))
            span = max(extent.width, extent.height)
            bucket_size = span / per_side if span > 0.0 else 1.0
        self._bucket_size = max(bucket_size, 1e-12)
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        for index, (_, point) in enumerate(self._entries):
            self._buckets.setdefault(self._key(point), []).append(index)

    def _key(self, point: Point) -> Tuple[int, int]:
        return (
            int(math.floor(point.x / self._bucket_size)),
            int(math.floor(point.y / self._bucket_size)),
        )

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def query_rectangle(self, rectangle: Rectangle) -> List[Hashable]:
        """All indexed items whose points fall inside ``rectangle``."""
        col_lo = int(math.floor(rectangle.min_x / self._bucket_size))
        col_hi = int(math.floor(rectangle.max_x / self._bucket_size))
        row_lo = int(math.floor(rectangle.min_y / self._bucket_size))
        row_hi = int(math.floor(rectangle.max_y / self._bucket_size))
        found: List[Hashable] = []
        for col in range(col_lo, col_hi + 1):
            for row in range(row_lo, row_hi + 1):
                for index in self._buckets.get((col, row), ()):
                    item, point = self._entries[index]
                    if rectangle.contains_point(point):
                        found.append(item)
        return found

    def count_in_rectangle(self, rectangle: Rectangle) -> int:
        """Count of items inside ``rectangle`` (Table 1's MBR column)."""
        return len(self.query_rectangle(rectangle))

    def nearest(self, point: Point) -> Tuple[Hashable, Point, float]:
        """Nearest indexed item to ``point`` (ring-growing bucket search).

        Returns:
            ``(item, location, distance)`` of the closest entry.
        """
        center = self._key(point)
        best: Optional[Tuple[Hashable, Point, float]] = None
        radius = 0
        # Far enough to reach every occupied bucket from the query's.
        max_radius = max(
            max(abs(key[0] - center[0]), abs(key[1] - center[1]))
            for key in self._buckets
        ) + 1
        while radius <= max_radius:
            for col, row in self._ring(center, radius):
                for index in self._buckets.get((col, row), ()):
                    item, location = self._entries[index]
                    distance = point.distance_to(location)
                    if best is None or distance < best[2]:
                        best = (item, location, distance)
            # A hit at ring r can still be beaten by ring r+1 (corner vs
            # edge distances), so search one extra ring before stopping.
            if best is not None and best[2] <= radius * self._bucket_size:
                break
            radius += 1
        if best is None:
            raise InternalInvariantError(
                "ring search over a non-empty grid index found no "
                "nearest entry; the bucket radius bound is wrong"
            )
        return best

    @staticmethod
    def _ring(center: Tuple[int, int], radius: int) -> Iterable[Tuple[int, int]]:
        """Bucket keys at Chebyshev distance ``radius`` from ``center``."""
        col0, row0 = center
        if radius == 0:
            yield center
            return
        for col in range(col0 - radius, col0 + radius + 1):
            yield (col, row0 - radius)
            yield (col, row0 + radius)
        for row in range(row0 - radius + 1, row0 + radius):
            yield (col0 - radius, row)
            yield (col0 + radius, row)


class IntervalSpatialIndex:
    """Interval-encoded point index for rectangle containment.

    The XPath-accelerator window encoding applied to the implicit
    quadtree over the data extent: every point's cell gets a Morton
    (Z-order) code — its *pre-order label* in that quadtree — and the
    points are stored sorted by label.  A quadtree node's subtree is a
    contiguous label interval (its pre/post window), so a rectangle
    query decomposes into maximal fully-contained nodes
    (:func:`~repro.spatial.grid.morton_windows`) and resolves each
    window with **two binary searches** over the sorted label column —
    no per-cell hash-set membership, no bucket walking.  Candidates of
    each window are filtered with one vectorized coordinate comparison
    against the query rectangle, so results match
    :meth:`SpatialIndex.query_rectangle` exactly (boundary points
    included) — the labels only *narrow* the scan, they never decide
    membership.

    Args:
        points: ``(item, point)`` pairs to index.
        levels: Quadtree depth (grid is ``2**levels`` per side);
            derived from the point count when omitted, aiming at O(1)
            points per leaf cell.
    """

    def __init__(
        self,
        points: Sequence[Tuple[Hashable, Point]],
        levels: Optional[int] = None,
    ) -> None:
        if not points:
            raise EmptyInputError(
                "IntervalSpatialIndex requires at least one point"
            )
        entries = list(points)
        self._extent = mbr([point for _, point in entries])
        if levels is None:
            levels = (max(len(entries) - 1, 1).bit_length() + 1) // 2
        self._levels = max(1, min(int(levels), MAX_TREE_LEVELS))
        side = 1 << self._levels
        self._side = side
        self._cell_width = self._extent.width / side
        self._cell_height = self._extent.height / side
        xs = np.asarray([point.x for _, point in entries], dtype="<f8")
        ys = np.asarray([point.y for _, point in entries], dtype="<f8")
        codes = interleave_codes(
            self._cell_column(xs), self._cell_row(ys)
        )
        order = np.argsort(codes, kind="stable")
        self._codes = codes[order]
        self._xs = xs[order]
        self._ys = ys[order]
        # Object column so query hits gather with one fancy index
        # instead of a per-hit list lookup.
        items = np.empty(len(entries), dtype=object)
        items[:] = [entries[i][0] for i in order.tolist()]
        self._items = items

    def _cell_column(self, xs: np.ndarray) -> np.ndarray:
        """Clamped cell columns (same truncation rule as UniformGrid).

        Clamping happens in the float domain so arbitrarily far query
        coordinates cannot overflow the int cast; truncation after a
        clip to ``[0, side-1]`` equals clip-after-truncate there.
        """
        if self._cell_width <= 0.0:
            return np.zeros(np.asarray(xs).shape, dtype="<i8")
        scaled = (xs - self._extent.min_x) / self._cell_width
        return np.clip(scaled, 0.0, float(self._side - 1)).astype("<i8")

    def _cell_row(self, ys: np.ndarray) -> np.ndarray:
        if self._cell_height <= 0.0:
            return np.zeros(np.asarray(ys).shape, dtype="<i8")
        scaled = (ys - self._extent.min_y) / self._cell_height
        return np.clip(scaled, 0.0, float(self._side - 1)).astype("<i8")

    def __len__(self) -> int:
        return len(self._items)

    def query_rectangle(self, rectangle: Rectangle) -> List[Hashable]:
        """All indexed items whose points fall inside ``rectangle``.

        The cell range is computed with the same floor arithmetic as
        the label assignment, so monotonicity of float subtraction and
        division guarantees every matching point's cell lies inside it;
        the coordinate mask then removes same-cell non-matches.  Wide
        queries decompose coarsely (boundary nodes ~1/8 of the query
        span are taken whole — the mask absorbs the over-coverage), so
        the window count stays small at every query size; all windows
        resolve with two batched binary searches and one vectorized
        containment test over the concatenated candidate runs.
        """
        lo_col = self._cell_column(np.asarray([rectangle.min_x], dtype="<f8"))
        hi_col = self._cell_column(np.asarray([rectangle.max_x], dtype="<f8"))
        lo_row = self._cell_row(np.asarray([rectangle.min_y], dtype="<f8"))
        hi_row = self._cell_row(np.asarray([rectangle.max_y], dtype="<f8"))
        span = max(
            int(hi_col[0]) - int(lo_col[0]), int(hi_row[0]) - int(lo_row[0])
        ) + 1
        windows = morton_windows(
            int(lo_col[0]),
            int(hi_col[0]),
            int(lo_row[0]),
            int(hi_row[0]),
            self._levels,
            coarse_level=max(0, span.bit_length() - 4),
        )
        if not windows:
            return []
        bounds = np.asarray(windows, dtype="<i8")
        starts = np.searchsorted(self._codes, bounds[:, 0], "left")
        stops = np.searchsorted(self._codes, bounds[:, 1], "left")
        runs = [
            np.arange(start, stop, dtype="<i8")
            for start, stop in zip(starts.tolist(), stops.tolist())
            if stop > start
        ]
        if not runs:
            return []
        candidates = runs[0] if len(runs) == 1 else np.concatenate(runs)
        xs = self._xs[candidates]
        ys = self._ys[candidates]
        inside = (
            (xs >= rectangle.min_x)
            & (xs <= rectangle.max_x)
            & (ys >= rectangle.min_y)
            & (ys <= rectangle.max_y)
        )
        return self._items[candidates[inside]].tolist()

    def count_in_rectangle(self, rectangle: Rectangle) -> int:
        """Count of items inside ``rectangle``."""
        return len(self.query_rectangle(rectangle))
