"""Uniform-grid spatial index over map points.

R-Bursty and the evaluation code repeatedly answer "which streams lie
inside this rectangle?" (e.g. counting countries inside an MBR for
Table 1).  A linear scan is fine at n = 181, but the scalability sweep
of Figure 8 pushes the stream count into the tens of thousands, where a
bucketed index pays off.  This is a deliberately simple uniform-bucket
index: points are hashed into square buckets; rectangle queries visit
only the overlapping buckets.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EmptyInputError, InternalInvariantError
from repro.spatial.geometry import Point, Rectangle, mbr

__all__ = ["SpatialIndex"]


class SpatialIndex:
    """Bucketed point index supporting rectangle and nearest queries.

    Args:
        points: ``(item, point)`` pairs to index.
        bucket_size: Bucket edge length; when omitted it is derived from
            the data extent so that the grid has roughly ``sqrt(n)``
            buckets per side.
    """

    def __init__(
        self,
        points: Sequence[Tuple[Hashable, Point]],
        bucket_size: Optional[float] = None,
    ) -> None:
        if not points:
            raise EmptyInputError("SpatialIndex requires at least one point")
        self._entries: List[Tuple[Hashable, Point]] = list(points)
        extent = mbr([point for _, point in self._entries])
        if bucket_size is None:
            per_side = max(1, int(math.sqrt(len(self._entries))))
            span = max(extent.width, extent.height)
            bucket_size = span / per_side if span > 0.0 else 1.0
        self._bucket_size = max(bucket_size, 1e-12)
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        for index, (_, point) in enumerate(self._entries):
            self._buckets.setdefault(self._key(point), []).append(index)

    def _key(self, point: Point) -> Tuple[int, int]:
        return (
            int(math.floor(point.x / self._bucket_size)),
            int(math.floor(point.y / self._bucket_size)),
        )

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def query_rectangle(self, rectangle: Rectangle) -> List[Hashable]:
        """All indexed items whose points fall inside ``rectangle``."""
        col_lo = int(math.floor(rectangle.min_x / self._bucket_size))
        col_hi = int(math.floor(rectangle.max_x / self._bucket_size))
        row_lo = int(math.floor(rectangle.min_y / self._bucket_size))
        row_hi = int(math.floor(rectangle.max_y / self._bucket_size))
        found: List[Hashable] = []
        for col in range(col_lo, col_hi + 1):
            for row in range(row_lo, row_hi + 1):
                for index in self._buckets.get((col, row), ()):
                    item, point = self._entries[index]
                    if rectangle.contains_point(point):
                        found.append(item)
        return found

    def count_in_rectangle(self, rectangle: Rectangle) -> int:
        """Count of items inside ``rectangle`` (Table 1's MBR column)."""
        return len(self.query_rectangle(rectangle))

    def nearest(self, point: Point) -> Tuple[Hashable, Point, float]:
        """Nearest indexed item to ``point`` (ring-growing bucket search).

        Returns:
            ``(item, location, distance)`` of the closest entry.
        """
        center = self._key(point)
        best: Optional[Tuple[Hashable, Point, float]] = None
        radius = 0
        # Far enough to reach every occupied bucket from the query's.
        max_radius = max(
            max(abs(key[0] - center[0]), abs(key[1] - center[1]))
            for key in self._buckets
        ) + 1
        while radius <= max_radius:
            for col, row in self._ring(center, radius):
                for index in self._buckets.get((col, row), ()):
                    item, location = self._entries[index]
                    distance = point.distance_to(location)
                    if best is None or distance < best[2]:
                        best = (item, location, distance)
            # A hit at ring r can still be beaten by ring r+1 (corner vs
            # edge distances), so search one extra ring before stopping.
            if best is not None and best[2] <= radius * self._bucket_size:
                break
            radius += 1
        if best is None:
            raise InternalInvariantError(
                "ring search over a non-empty grid index found no "
                "nearest entry; the bucket radius bound is wrong"
            )
        return best

    @staticmethod
    def _ring(center: Tuple[int, int], radius: int) -> Iterable[Tuple[int, int]]:
        """Bucket keys at Chebyshev distance ``radius`` from ``center``."""
        col0, row0 = center
        if radius == 0:
            yield center
            return
        for col in range(col0 - radius, col0 + radius + 1):
            yield (col, row0 - radius)
            yield (col, row0 + radius)
        for row in range(row0 - radius + 1, row0 + radius):
            yield (col0 - radius, row)
            yield (col0 + radius, row)
