"""Grid partitioning of the map into cell-streams.

Section 2 (Granularity): when individual sources are too numerous
(e.g. millions of Twitter users), "an alternative way to group users is
by using a grid to partition the underlying map.  Each cell of the grid
can then be considered as a different stream.  Our entire methodology is
fully compatible with this setup."  This module implements that setup:
a uniform grid over a bounding rectangle, mapping arbitrary points to
cell identifiers and producing one aggregate stream location (the cell
centre) per non-empty cell.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidGeometryError
from repro.spatial.geometry import Point, Rectangle

__all__ = ["GridCell", "UniformGrid"]


@dataclasses.dataclass(frozen=True, order=True)
class GridCell:
    """Identifier of one grid cell (column, row)."""

    col: int
    row: int


class UniformGrid:
    """A uniform rectangular grid over a map extent.

    Args:
        extent: The rectangle covered by the grid.
        cols: Number of columns (> 0).
        rows: Number of rows (> 0).

    Points on the extent's maximum edges are assigned to the last
    column/row, so the grid partitions the *closed* extent.
    """

    def __init__(self, extent: Rectangle, cols: int, rows: int) -> None:
        if cols < 1 or rows < 1:
            raise InvalidGeometryError("grid must have at least one cell")
        if extent.width <= 0.0 or extent.height <= 0.0:
            raise InvalidGeometryError("grid extent must have positive area")
        self.extent = extent
        self.cols = cols
        self.rows = rows
        self._cell_width = extent.width / cols
        self._cell_height = extent.height / rows

    # ------------------------------------------------------------------
    def cell_of(self, point: Point) -> GridCell:
        """Map a point to its cell.

        Raises:
            InvalidGeometryError: when the point lies outside the extent.
        """
        if not self.extent.contains_point(point):
            raise InvalidGeometryError(f"{point} lies outside the grid extent")
        col = int((point.x - self.extent.min_x) / self._cell_width)
        row = int((point.y - self.extent.min_y) / self._cell_height)
        return GridCell(col=min(col, self.cols - 1), row=min(row, self.rows - 1))

    def cell_codes(
        self, xs: Sequence[float], ys: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` over coordinate columns.

        Returns ``(cols, rows)`` index arrays; the same truncating
        division and last-row/column clamping as the scalar form, one
        point per array element.

        Raises:
            InvalidGeometryError: when any point lies outside the extent.
        """
        x_arr = np.asarray(xs, dtype=float)
        y_arr = np.asarray(ys, dtype=float)
        extent = self.extent
        inside = (
            (x_arr >= extent.min_x)
            & (x_arr <= extent.max_x)
            & (y_arr >= extent.min_y)
            & (y_arr <= extent.max_y)
        )
        if not inside.all():
            bad = int(np.flatnonzero(~inside)[0])
            raise InvalidGeometryError(
                f"Point(x={x_arr[bad]}, y={y_arr[bad]}) lies outside the "
                "grid extent"
            )
        cols = ((x_arr - extent.min_x) / self._cell_width).astype(np.int64)
        rows = ((y_arr - extent.min_y) / self._cell_height).astype(np.int64)
        np.minimum(cols, self.cols - 1, out=cols)
        np.minimum(rows, self.rows - 1, out=rows)
        return cols, rows

    def cell_rectangle(self, cell: GridCell) -> Rectangle:
        """The rectangle a cell covers."""
        if not (0 <= cell.col < self.cols and 0 <= cell.row < self.rows):
            raise InvalidGeometryError(f"cell {cell} outside grid")
        min_x = self.extent.min_x + cell.col * self._cell_width
        min_y = self.extent.min_y + cell.row * self._cell_height
        return Rectangle(min_x, min_y, min_x + self._cell_width, min_y + self._cell_height)

    def cell_center(self, cell: GridCell) -> Point:
        """The centre point of a cell — the aggregate stream's geostamp."""
        return self.cell_rectangle(cell).center

    # ------------------------------------------------------------------
    def group_points(
        self, points: Iterable[Point]
    ) -> Dict[GridCell, List[Point]]:
        """Partition points into their cells (non-empty cells only)."""
        groups: Dict[GridCell, List[Point]] = {}
        for point in points:
            groups.setdefault(self.cell_of(point), []).append(point)
        return groups

    #: Point counts above which :meth:`aggregate_streams` switches to
    #: the vectorized cell-code assignment.
    VECTOR_THRESHOLD = 64

    def aggregate_streams(
        self, points: Sequence[Point]
    ) -> List[Tuple[GridCell, Point, List[int]]]:
        """Group point indices into aggregate cell-streams.

        Above :data:`VECTOR_THRESHOLD` points the cell assignment runs
        through the columnar :meth:`cell_codes` path (same arithmetic,
        one array pass) — the granularity setup of Section 2 targets
        "millions of Twitter users", where the per-point loop is the
        bottleneck.

        Returns:
            One tuple ``(cell, center, member_indices)`` per non-empty
            cell, sorted by cell, where ``member_indices`` index into
            ``points``.  Callers merge the underlying document streams of
            each cell into one aggregate stream positioned at ``center``.
        """
        cells: Dict[GridCell, List[int]] = {}
        if len(points) > self.VECTOR_THRESHOLD:
            cols, rows = self.cell_codes(
                [point.x for point in points], [point.y for point in points]
            )
            for index, (col, row) in enumerate(
                zip(cols.tolist(), rows.tolist())
            ):
                cells.setdefault(GridCell(col=col, row=row), []).append(index)
        else:
            for index, point in enumerate(points):
                cells.setdefault(self.cell_of(point), []).append(index)
        return [
            (cell, self.cell_center(cell), members)
            for cell, members in sorted(cells.items())
        ]
