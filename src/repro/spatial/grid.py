"""Grid partitioning of the map into cell-streams.

Section 2 (Granularity): when individual sources are too numerous
(e.g. millions of Twitter users), "an alternative way to group users is
by using a grid to partition the underlying map.  Each cell of the grid
can then be considered as a different stream.  Our entire methodology is
fully compatible with this setup."  This module implements that setup:
a uniform grid over a bounding rectangle, mapping arbitrary points to
cell identifiers and producing one aggregate stream location (the cell
centre) per non-empty cell.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidGeometryError
from repro.spatial.geometry import Point, Rectangle

__all__ = [
    "GridCell",
    "UniformGrid",
    "interleave_codes",
    "morton_windows",
]


# ----------------------------------------------------------------------
# Z-order (Morton) interval encoding of the implicit grid quadtree
# ----------------------------------------------------------------------
#: Deepest supported quadtree: 16 levels → a 65536×65536 cell grid,
#: whose Morton codes still fit comfortably in 32 of an int64's bits.
MAX_TREE_LEVELS = 16


def _part1by1(values: np.ndarray) -> np.ndarray:
    """Spread each value's low 32 bits into the even bit positions."""
    v = values & np.uint64(0x00000000FFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def interleave_codes(cols: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Morton/Z-order codes of cell coordinates (vectorized).

    Column bits land on even positions, row bits on odd ones, so code
    order walks the implicit quadtree over the cell grid in pre-order —
    the codes double as pre-order labels for interval containment.
    Returned as ``<i8`` (codes use at most 2·:data:`MAX_TREE_LEVELS`
    bits, so the sign bit is never touched).
    """
    c = np.ascontiguousarray(np.asarray(cols, dtype="<i8")).view("<u8")
    r = np.ascontiguousarray(np.asarray(rows, dtype="<i8")).view("<u8")
    return (_part1by1(c) | (_part1by1(r) << np.uint64(1))).view("<i8")


def morton_windows(
    col_lo: int,
    col_hi: int,
    row_lo: int,
    row_hi: int,
    levels: int,
    coarse_level: int = 0,
) -> List[Tuple[int, int]]:
    """Pre/post label windows covering an integer cell-range query.

    Decomposes the query range ``[col_lo, col_hi] × [row_lo, row_hi]``
    (inclusive cell coordinates on a ``2**levels`` square grid) into
    maximal quadtree nodes lying fully inside it.  Each node's leaf set
    is one *contiguous* Morton-code interval — its pre-order label and
    the label one past its subtree (the XPath-accelerator pre/post
    window) — so set membership over the whole region becomes one
    binary-search pair per window against a sorted label column.
    Adjacent windows are merged; the list is returned in ascending
    label order.

    ``coarse_level`` trades window count for over-coverage: a node at
    that level which *partially* overlaps the range is emitted whole
    instead of being split further, so an exact boundary decomposition
    (``O(span)`` windows) collapses to ``O(span / 2**coarse_level)``.
    Callers that filter candidates by coordinate anyway (the interval
    index does) lose nothing; at the default ``0`` the decomposition is
    exact.
    """
    windows: List[List[int]] = []

    def descend(col0: int, row0: int, level: int, prefix: int) -> None:
        size = 1 << level
        col1, row1 = col0 + size - 1, row0 + size - 1
        if col0 > col_hi or col1 < col_lo or row0 > row_hi or row1 < row_lo:
            return
        if level <= coarse_level or (
            col_lo <= col0
            and col1 <= col_hi
            and row_lo <= row0
            and row1 <= row_hi
        ):
            span = 1 << (2 * level)
            if windows and windows[-1][1] == prefix:
                windows[-1][1] = prefix + span
            else:
                windows.append([prefix, prefix + span])
            return
        # A partially-overlapped leaf cannot exist: a 1×1 node is
        # either disjoint (first test) or fully inside (second).
        half = size >> 1
        quarter = 1 << (2 * (level - 1))
        descend(col0, row0, level - 1, prefix)
        descend(col0 + half, row0, level - 1, prefix + quarter)
        descend(col0, row0 + half, level - 1, prefix + 2 * quarter)
        descend(col0 + half, row0 + half, level - 1, prefix + 3 * quarter)

    descend(0, 0, levels, 0)
    return [(lo, hi) for lo, hi in windows]


@dataclasses.dataclass(frozen=True, order=True)
class GridCell:
    """Identifier of one grid cell (column, row)."""

    col: int
    row: int


class UniformGrid:
    """A uniform rectangular grid over a map extent.

    Args:
        extent: The rectangle covered by the grid.
        cols: Number of columns (> 0).
        rows: Number of rows (> 0).

    Points on the extent's maximum edges are assigned to the last
    column/row, so the grid partitions the *closed* extent.
    """

    def __init__(self, extent: Rectangle, cols: int, rows: int) -> None:
        if cols < 1 or rows < 1:
            raise InvalidGeometryError("grid must have at least one cell")
        if extent.width <= 0.0 or extent.height <= 0.0:
            raise InvalidGeometryError("grid extent must have positive area")
        self.extent = extent
        self.cols = cols
        self.rows = rows
        self._cell_width = extent.width / cols
        self._cell_height = extent.height / rows

    # ------------------------------------------------------------------
    def cell_of(self, point: Point) -> GridCell:
        """Map a point to its cell.

        Raises:
            InvalidGeometryError: when the point lies outside the extent.
        """
        if not self.extent.contains_point(point):
            raise InvalidGeometryError(f"{point} lies outside the grid extent")
        col = int((point.x - self.extent.min_x) / self._cell_width)
        row = int((point.y - self.extent.min_y) / self._cell_height)
        return GridCell(col=min(col, self.cols - 1), row=min(row, self.rows - 1))

    def cell_codes(
        self, xs: Sequence[float], ys: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` over coordinate columns.

        Returns ``(cols, rows)`` index arrays; the same truncating
        division and last-row/column clamping as the scalar form, one
        point per array element.

        Raises:
            InvalidGeometryError: when any point lies outside the extent.
        """
        x_arr = np.asarray(xs, dtype=float)
        y_arr = np.asarray(ys, dtype=float)
        extent = self.extent
        inside = (
            (x_arr >= extent.min_x)
            & (x_arr <= extent.max_x)
            & (y_arr >= extent.min_y)
            & (y_arr <= extent.max_y)
        )
        if not inside.all():
            bad = int(np.flatnonzero(~inside)[0])
            raise InvalidGeometryError(
                f"Point(x={x_arr[bad]}, y={y_arr[bad]}) lies outside the "
                "grid extent"
            )
        cols = ((x_arr - extent.min_x) / self._cell_width).astype(np.int64)
        rows = ((y_arr - extent.min_y) / self._cell_height).astype(np.int64)
        np.minimum(cols, self.cols - 1, out=cols)
        np.minimum(rows, self.rows - 1, out=rows)
        return cols, rows

    def cell_rectangle(self, cell: GridCell) -> Rectangle:
        """The rectangle a cell covers."""
        if not (0 <= cell.col < self.cols and 0 <= cell.row < self.rows):
            raise InvalidGeometryError(f"cell {cell} outside grid")
        min_x = self.extent.min_x + cell.col * self._cell_width
        min_y = self.extent.min_y + cell.row * self._cell_height
        return Rectangle(min_x, min_y, min_x + self._cell_width, min_y + self._cell_height)

    def cell_center(self, cell: GridCell) -> Point:
        """The centre point of a cell — the aggregate stream's geostamp."""
        return self.cell_rectangle(cell).center

    # ------------------------------------------------------------------
    def group_points(
        self, points: Iterable[Point]
    ) -> Dict[GridCell, List[Point]]:
        """Partition points into their cells (non-empty cells only)."""
        groups: Dict[GridCell, List[Point]] = {}
        for point in points:
            groups.setdefault(self.cell_of(point), []).append(point)
        return groups

    #: Point counts above which :meth:`aggregate_streams` switches to
    #: the vectorized cell-code assignment.
    VECTOR_THRESHOLD = 64

    def aggregate_streams(
        self, points: Sequence[Point]
    ) -> List[Tuple[GridCell, Point, List[int]]]:
        """Group point indices into aggregate cell-streams.

        Above :data:`VECTOR_THRESHOLD` points the cell assignment runs
        through the columnar :meth:`cell_codes` path (same arithmetic,
        one array pass) — the granularity setup of Section 2 targets
        "millions of Twitter users", where the per-point loop is the
        bottleneck.

        Returns:
            One tuple ``(cell, center, member_indices)`` per non-empty
            cell, sorted by cell, where ``member_indices`` index into
            ``points``.  Callers merge the underlying document streams of
            each cell into one aggregate stream positioned at ``center``.
        """
        cells: Dict[GridCell, List[int]] = {}
        if len(points) > self.VECTOR_THRESHOLD:
            cols, rows = self.cell_codes(
                [point.x for point in points], [point.y for point in points]
            )
            for index, (col, row) in enumerate(
                zip(cols.tolist(), rows.tolist())
            ):
                cells.setdefault(GridCell(col=col, row=row), []).append(index)
        else:
            for index, point in enumerate(points):
                cells.setdefault(self.cell_of(point), []).append(index)
        return [
            (cell, self.cell_center(cell), members)
            for cell, members in sorted(cells.items())
        ]
