"""Spatial substrate: geometry, geodesics, MDS, grids, discrepancy."""

from repro.spatial.geometry import Point, Rectangle, mbr
from repro.spatial.geodesic import (
    EARTH_RADIUS_KM,
    distance_matrix,
    haversine,
    vincenty,
)
from repro.spatial.mds import classical_mds, mds_points, stress
from repro.spatial.grid import GridCell, UniformGrid
from repro.spatial.discrepancy import (
    MaxRectangleResult,
    WeightedPoint,
    max_weight_rectangle,
    max_weight_rectangle_bruteforce,
)
from repro.spatial.index import IntervalSpatialIndex, SpatialIndex

__all__ = [
    "EARTH_RADIUS_KM",
    "GridCell",
    "IntervalSpatialIndex",
    "MaxRectangleResult",
    "Point",
    "Rectangle",
    "SpatialIndex",
    "UniformGrid",
    "WeightedPoint",
    "classical_mds",
    "distance_matrix",
    "haversine",
    "max_weight_rectangle",
    "max_weight_rectangle_bruteforce",
    "mbr",
    "mds_points",
    "stress",
    "vincenty",
]
