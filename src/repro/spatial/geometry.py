"""2-D points and axis-aligned rectangles.

STLocal restricts regions to axis-oriented rectangles of arbitrary size
(Section 4) — the shape family that keeps the max-discrepancy problem
polynomial.  This module provides the geometric value types, plus the
minimum-bounding-rectangle helper that Table 1 uses to quantify how
geographically scattered STComb's combinatorial patterns are.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import EmptyInputError, InvalidGeometryError

__all__ = ["Point", "Rectangle", "mbr"]


@dataclasses.dataclass(frozen=True, order=True)
class Point:
    """A point on the 2-D map plane.

    Attributes:
        x: Horizontal coordinate.
        y: Vertical coordinate.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance on the projected plane."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclasses.dataclass(frozen=True)
class Rectangle:
    """A closed axis-aligned rectangle ``[min_x, max_x] × [min_y, max_y]``.

    Degenerate rectangles (zero width and/or height) are allowed — a
    bursty region can consist of a single stream, in which case its
    rectangle collapses to that stream's location.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise InvalidGeometryError(
                f"inverted rectangle: [{self.min_x}, {self.max_x}] x "
                f"[{self.min_y}, {self.max_y}]"
            )

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """Closed containment test (boundary points are inside)."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_rectangle(self, other: "Rectangle") -> bool:
        """Return ``True`` if ``other`` lies entirely within ``self``.

        Used by Definition 2 (sub-window test): ``R' ⊆ R``.
        """
        return (
            self.min_x <= other.min_x
            and other.max_x <= self.max_x
            and self.min_y <= other.min_y
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "Rectangle") -> bool:
        """Closed-rectangle overlap test."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def intersection(self, other: "Rectangle") -> Optional["Rectangle"]:
        """Overlap rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rectangle(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union_span(self, other: "Rectangle") -> "Rectangle":
        """Smallest rectangle covering both inputs."""
        return Rectangle(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "Rectangle":
        """Return a copy grown by ``margin`` on every side."""
        return Rectangle(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def points_inside(self, points: Iterable[Point]) -> List[Point]:
        """Filter an iterable of points down to those the rectangle covers."""
        return [point for point in points if self.contains_point(point)]

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"R[({self.min_x:.2f},{self.min_y:.2f})-"
            f"({self.max_x:.2f},{self.max_y:.2f})]"
        )


def mbr(points: Sequence[Point]) -> Rectangle:
    """Minimum bounding rectangle of a non-empty point set.

    Table 1 reports, for each STComb pattern, the number of streams
    falling inside the MBR of the pattern's stream locations — a measure
    of how much territory a combinatorial pattern implicitly spans.

    Raises:
        EmptyInputError: if ``points`` is empty.
    """
    if not points:
        raise EmptyInputError("mbr() requires at least one point")
    return Rectangle(
        min(point.x for point in points),
        min(point.y for point in points),
        max(point.x for point in points),
        max(point.y for point in points),
    )
