"""Geodesic distances on the Earth ellipsoid / sphere.

The Topix evaluation projects the 181 country sources onto the 2-D
plane by Multidimensional Scaling of their *pairwise geographical
distances* (Section 6.1, citing Vincenty [30]).  This module supplies
the two distance kernels:

* :func:`haversine` — great-circle distance on a sphere, fast and
  adequate for the MDS input;
* :func:`vincenty` — Vincenty's inverse solution on the WGS-84
  ellipsoid, the method the paper cites; iterative, falls back to
  haversine for the rare antipodal non-convergence.

Plus :func:`distance_matrix` for building the MDS input in one call.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["EARTH_RADIUS_KM", "haversine", "vincenty", "distance_matrix"]

EARTH_RADIUS_KM = 6371.0088
"""Mean Earth radius (IUGG), kilometres."""

_WGS84_A = 6378.137  # semi-major axis, km
_WGS84_F = 1.0 / 298.257223563  # flattening
_WGS84_B = _WGS84_A * (1.0 - _WGS84_F)  # semi-minor axis, km


def haversine(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (degree) coordinates, in km."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def vincenty(
    lat1: float,
    lon1: float,
    lat2: float,
    lon2: float,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Vincenty inverse geodesic distance on WGS-84, in km.

    Iterates the classic lambda recurrence; on the (antipodal) inputs
    where the recurrence fails to converge, falls back to
    :func:`haversine`, which is within ~0.5 % there.
    """
    if (lat1, lon1) == (lat2, lon2):
        return 0.0
    u1 = math.atan((1.0 - _WGS84_F) * math.tan(math.radians(lat1)))
    u2 = math.atan((1.0 - _WGS84_F) * math.tan(math.radians(lat2)))
    big_l = math.radians(lon2 - lon1)
    sin_u1, cos_u1 = math.sin(u1), math.cos(u1)
    sin_u2, cos_u2 = math.sin(u2), math.cos(u2)

    lam = big_l
    for _ in range(max_iterations):
        sin_lam, cos_lam = math.sin(lam), math.cos(lam)
        sin_sigma = math.sqrt(
            (cos_u2 * sin_lam) ** 2
            + (cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lam) ** 2
        )
        if sin_sigma == 0.0:
            return 0.0  # coincident points
        cos_sigma = sin_u1 * sin_u2 + cos_u1 * cos_u2 * cos_lam
        sigma = math.atan2(sin_sigma, cos_sigma)
        sin_alpha = cos_u1 * cos_u2 * sin_lam / sin_sigma
        cos_sq_alpha = 1.0 - sin_alpha**2
        if cos_sq_alpha == 0.0:
            cos_2sigma_m = 0.0  # equatorial line
        else:
            cos_2sigma_m = cos_sigma - 2.0 * sin_u1 * sin_u2 / cos_sq_alpha
        c = _WGS84_F / 16.0 * cos_sq_alpha * (4.0 + _WGS84_F * (4.0 - 3.0 * cos_sq_alpha))
        lam_prev = lam
        lam = big_l + (1.0 - c) * _WGS84_F * sin_alpha * (
            sigma
            + c
            * sin_sigma
            * (cos_2sigma_m + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2))
        )
        if abs(lam - lam_prev) < tolerance:
            break
    else:
        # Vincenty fails near antipodal points; haversine is a safe
        # approximation there.
        return haversine(lat1, lon1, lat2, lon2)

    u_sq = cos_sq_alpha * (_WGS84_A**2 - _WGS84_B**2) / _WGS84_B**2
    a_coef = 1.0 + u_sq / 16384.0 * (
        4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq))
    )
    b_coef = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)))
    delta_sigma = (
        b_coef
        * sin_sigma
        * (
            cos_2sigma_m
            + b_coef
            / 4.0
            * (
                cos_sigma * (-1.0 + 2.0 * cos_2sigma_m**2)
                - b_coef
                / 6.0
                * cos_2sigma_m
                * (-3.0 + 4.0 * sin_sigma**2)
                * (-3.0 + 4.0 * cos_2sigma_m**2)
            )
        )
    )
    return _WGS84_B * a_coef * (sigma - delta_sigma)


def distance_matrix(
    coordinates: Sequence[Tuple[float, float]],
    method: str = "haversine",
) -> np.ndarray:
    """Pairwise geodesic distance matrix for ``(lat, lon)`` coordinates.

    Args:
        coordinates: Latitude/longitude pairs in degrees.
        method: ``"haversine"`` (default) or ``"vincenty"``.

    Returns:
        Symmetric ``(n, n)`` array of distances in km with zero diagonal.
    """
    if method == "haversine":
        kernel = haversine
    elif method == "vincenty":
        kernel = vincenty
    else:
        raise ConfigurationError(f"unknown distance method: {method!r}")
    n = len(coordinates)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        lat1, lon1 = coordinates[i]
        for j in range(i + 1, n):
            lat2, lon2 = coordinates[j]
            d = kernel(lat1, lon1, lat2, lon2)
            matrix[i, j] = d
            matrix[j, i] = d
    return matrix
