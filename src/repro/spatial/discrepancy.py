"""Exact maximum-weight axis-aligned rectangle over weighted points.

This is the computational core of ``R-Bursty`` (Algorithm 1): given the
map positions of the streams and their per-snapshot burstiness values
(which may be negative — streams below their expected frequency), find
the axis-oriented rectangle maximising the sum of enclosed weights.
The paper plugs in the Dobkin–Gunopulos–Maass maximum-bichromatic-
discrepancy algorithm [5]; any *exact* maximiser is interchangeable
here, and we use the classic coordinate-compression + Kadane reduction:

1. compress the distinct x and y coordinates into a ``m × k`` grid of
   cell weights (points sharing a cell are summed);
2. for every pair of grid rows, accumulate per-column sums and find the
   best contiguous column range with a vectorised prefix-min Kadane.

Complexity is ``O(m² k)`` after an ``O(n log n)`` compression —
polynomial like the original, and exact.  A brute-force verifier is
included for the property tests.

Zero-weight points are discarded up front: they cannot change any
rectangle's score, and for real corpora the overwhelming majority of
(term, stream) weights are exactly zero, which is what makes STLocal's
per-term cost small in practice (Figure 5).
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.spatial.geometry import Point, Rectangle

__all__ = [
    "WeightedPoint",
    "MaxRectangleResult",
    "max_weight_rectangle",
    "max_weight_rectangle_bruteforce",
]


@dataclasses.dataclass(frozen=True)
class WeightedPoint:
    """A map location carrying a (possibly negative) weight.

    Attributes:
        point: Location on the projected 2-D plane.
        weight: The burstiness ``B(t, D_x[i])`` of the stream there.
        stream_id: Identifier of the underlying stream, if any.
    """

    point: Point
    weight: float
    stream_id: Optional[Hashable] = None


@dataclasses.dataclass(frozen=True)
class MaxRectangleResult:
    """Outcome of a maximum-weight rectangle search.

    Attributes:
        rectangle: The tight optimal rectangle (its bounds coincide with
            point coordinates).
        score: Total weight of the points inside.
        members: The weighted points inside the rectangle, in input
            order (zero-weight points were dropped before the search and
            therefore never appear here).
    """

    rectangle: Rectangle
    score: float
    members: Tuple[WeightedPoint, ...]


def _kadane_range(column_sums: np.ndarray) -> Tuple[int, int, float]:
    """Best contiguous (non-empty) range of ``column_sums``.

    Vectorised max-subarray via prefix sums: for every right end ``j``,
    the best sum is ``P[j] − min(P[-1..j-1])``.

    Returns:
        ``(left, right, score)`` with inclusive column indices.
    """
    prefix = np.cumsum(column_sums)
    shifted = np.concatenate(([0.0], prefix[:-1]))
    running_min = np.minimum.accumulate(shifted)
    gains = prefix - running_min
    right = int(np.argmax(gains))
    target = running_min[right]
    left = int(np.flatnonzero(shifted[: right + 1] == target)[0])
    return left, right, float(gains[right])


def max_weight_rectangle(
    points: Sequence[WeightedPoint],
) -> Optional[MaxRectangleResult]:
    """Find the axis-aligned rectangle with the maximum total weight.

    Args:
        points: Weighted map points; weights may be negative.

    Returns:
        The optimal rectangle, or ``None`` when no rectangle achieves a
        strictly positive score (i.e. no positive-weight point exists).

    Notes:
        Ties between equally-scoring rectangles are broken by the scan
        order (lowest y-range first, then lowest x-range); the returned
        rectangle is always *tight* — shrunk to the bounding box of the
        distinct coordinates it selects.
    """
    active = [wp for wp in points if wp.weight != 0.0]
    if not any(wp.weight > 0.0 for wp in active):
        return None

    xs = sorted({wp.point.x for wp in active})
    ys = sorted({wp.point.y for wp in active})
    x_index = {x: i for i, x in enumerate(xs)}
    y_index = {y: i for i, y in enumerate(ys)}
    k, m = len(xs), len(ys)

    grid = np.zeros((m, k), dtype=float)
    for wp in active:
        grid[y_index[wp.point.y], x_index[wp.point.x]] += wp.weight

    best_score = 0.0
    best_bounds: Optional[Tuple[int, int, int, int]] = None  # y_lo, y_hi, x_lo, x_hi
    # Batched Kadane: for each y_lo, evaluate all y_hi row-bands at once.
    row_cumulative = np.cumsum(grid, axis=0)
    zeros_column = np.zeros((m, 1))
    for y_lo in range(m):
        bands = row_cumulative[y_lo:]
        if y_lo > 0:
            bands = bands - row_cumulative[y_lo - 1]
        prefix = np.cumsum(bands, axis=1)
        shifted = np.concatenate(
            (zeros_column[: bands.shape[0]], prefix[:, :-1]), axis=1
        )
        running_min = np.minimum.accumulate(shifted, axis=1)
        gains = prefix - running_min
        flat_best = int(np.argmax(gains))
        row_rel, right = divmod(flat_best, k)
        score = float(gains[row_rel, right])
        if score > best_score:
            target = running_min[row_rel, right]
            left = int(
                np.flatnonzero(shifted[row_rel, : right + 1] == target)[0]
            )
            best_score = score
            best_bounds = (y_lo, y_lo + row_rel, left, right)

    if best_bounds is None:
        return None
    y_lo, y_hi, x_lo, x_hi = best_bounds
    rectangle = Rectangle(xs[x_lo], ys[y_lo], xs[x_hi], ys[y_hi])
    members = tuple(wp for wp in active if rectangle.contains_point(wp.point))
    return MaxRectangleResult(
        rectangle=rectangle,
        score=best_score,
        members=members,
    )


def max_weight_rectangle_bruteforce(
    points: Sequence[WeightedPoint],
) -> Optional[MaxRectangleResult]:
    """Quadruple-loop exact reference for :func:`max_weight_rectangle`.

    Enumerates every rectangle spanned by pairs of distinct x and y
    coordinates; ``O(k² m² n)``.  Only for tests and tiny inputs.
    """
    active = [wp for wp in points if wp.weight != 0.0]
    if not any(wp.weight > 0.0 for wp in active):
        return None
    xs = sorted({wp.point.x for wp in active})
    ys = sorted({wp.point.y for wp in active})

    best: Optional[MaxRectangleResult] = None
    for i, x_lo in enumerate(xs):
        for x_hi in xs[i:]:
            for j, y_lo in enumerate(ys):
                for y_hi in ys[j:]:
                    rectangle = Rectangle(x_lo, y_lo, x_hi, y_hi)
                    members = tuple(
                        wp for wp in active if rectangle.contains_point(wp.point)
                    )
                    score = sum(wp.weight for wp in members)
                    if score > 0.0 and (best is None or score > best.score):
                        best = MaxRectangleResult(
                            rectangle=rectangle, score=score, members=members
                        )
    return best
