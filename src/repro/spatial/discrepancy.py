"""Exact maximum-weight axis-aligned rectangle over weighted points.

This is the computational core of ``R-Bursty`` (Algorithm 1): given the
map positions of the streams and their per-snapshot burstiness values
(which may be negative — streams below their expected frequency), find
the axis-oriented rectangle maximising the sum of enclosed weights.
The paper plugs in the Dobkin–Gunopulos–Maass maximum-bichromatic-
discrepancy algorithm [5]; any *exact* maximiser is interchangeable
here, and we use the classic coordinate-compression + Kadane reduction:

1. compress the distinct x and y coordinates into a ``m × k`` grid of
   cell weights (points sharing a cell are summed);
2. for every pair of grid rows, accumulate per-column sums and find the
   best contiguous column range with a vectorised prefix-min Kadane.

Complexity is ``O(m² k)`` after an ``O(n log n)`` compression —
polynomial like the original, and exact.  Both steps live in the
columnar kernel module (:mod:`repro.columnar.kernels`), which picks a
scalar or vectorized execution of the identical operation sequence by
grid size.  A brute-force verifier is included for the property tests.

Zero-weight points are discarded up front: they cannot change any
rectangle's score, and for real corpora the overwhelming majority of
(term, stream) weights are exactly zero, which is what makes STLocal's
per-term cost small in practice (Figure 5).
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence, Tuple

from repro.spatial.geometry import Point, Rectangle

__all__ = [
    "WeightedPoint",
    "MaxRectangleResult",
    "max_weight_rectangle",
    "max_weight_rectangle_bruteforce",
]


@dataclasses.dataclass(frozen=True)
class WeightedPoint:
    """A map location carrying a (possibly negative) weight.

    Attributes:
        point: Location on the projected 2-D plane.
        weight: The burstiness ``B(t, D_x[i])`` of the stream there.
        stream_id: Identifier of the underlying stream, if any.
    """

    point: Point
    weight: float
    stream_id: Optional[Hashable] = None


@dataclasses.dataclass(frozen=True)
class MaxRectangleResult:
    """Outcome of a maximum-weight rectangle search.

    Attributes:
        rectangle: The tight optimal rectangle (its bounds coincide with
            point coordinates).
        score: Total weight of the points inside.
        members: The weighted points inside the rectangle, in input
            order (zero-weight points were dropped before the search and
            therefore never appear here).
    """

    rectangle: Rectangle
    score: float
    members: Tuple[WeightedPoint, ...]


def max_weight_rectangle(
    points: Sequence[WeightedPoint],
) -> Optional[MaxRectangleResult]:
    """Find the axis-aligned rectangle with the maximum total weight.

    Delegates the coordinate compression and the batched prefix-min
    Kadane to the columnar kernel
    (:func:`repro.columnar.kernels.max_rectangle_points`), which runs
    the identical operation sequence scalar below
    :data:`~repro.columnar.kernels.SCALAR_GRID_CELLS` cells — the grids
    one snapshot produces — and vectorized above.

    Args:
        points: Weighted map points; weights may be negative.

    Returns:
        The optimal rectangle, or ``None`` when no rectangle achieves a
        strictly positive score (i.e. no positive-weight point exists).

    Notes:
        Ties between equally-scoring rectangles are broken by the scan
        order (lowest y-range first, then lowest x-range); the returned
        rectangle is always *tight* — shrunk to the bounding box of the
        distinct coordinates it selects.
    """
    from repro.columnar.kernels import max_rectangle_points

    active = [wp for wp in points if wp.weight != 0.0]
    if not any(wp.weight > 0.0 for wp in active):
        return None
    best = max_rectangle_points(
        [wp.point.x for wp in active],
        [wp.point.y for wp in active],
        [wp.weight for wp in active],
    )
    if best is None:
        return None
    score, min_x, min_y, max_x, max_y = best
    rectangle = Rectangle(min_x, min_y, max_x, max_y)
    members = tuple(wp for wp in active if rectangle.contains_point(wp.point))
    return MaxRectangleResult(
        rectangle=rectangle,
        score=score,
        members=members,
    )


def max_weight_rectangle_bruteforce(
    points: Sequence[WeightedPoint],
) -> Optional[MaxRectangleResult]:
    """Quadruple-loop exact reference for :func:`max_weight_rectangle`.

    Enumerates every rectangle spanned by pairs of distinct x and y
    coordinates; ``O(k² m² n)``.  Only for tests and tiny inputs.
    """
    active = [wp for wp in points if wp.weight != 0.0]
    if not any(wp.weight > 0.0 for wp in active):
        return None
    xs = sorted({wp.point.x for wp in active})
    ys = sorted({wp.point.y for wp in active})

    best: Optional[MaxRectangleResult] = None
    for i, x_lo in enumerate(xs):
        for x_hi in xs[i:]:
            for j, y_lo in enumerate(ys):
                for y_hi in ys[j:]:
                    rectangle = Rectangle(x_lo, y_lo, x_hi, y_hi)
                    members = tuple(
                        wp for wp in active if rectangle.contains_point(wp.point)
                    )
                    score = sum(wp.weight for wp in members)
                    if score > 0.0 and (best is None or score > best.score):
                        best = MaxRectangleResult(
                            rectangle=rectangle, score=score, members=members
                        )
    return best
