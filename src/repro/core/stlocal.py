"""STLocal (Algorithm 2): streaming regional patterns / maximal windows.

Per term, the tracker consumes one snapshot at a time:

1. update each stream's expected-frequency model and compute the
   discrepancy burstiness ``B(t, D_x[i]) = observed − expected`` (Eq. 7);
2. run R-Bursty on the weighted stream locations, obtaining the
   snapshot's non-overlapping bursty rectangles;
3. start tracking a *region sequence* for every rectangle whose region
   is not yet tracked (regions are canonicalised by their member-stream
   set by default — geometry keying is the ablation switch);
4. append the current r-score of every tracked region to its sequence
   and update the region's maximal segments online (Ruzzo–Tompa
   ``GetMax``) — each maximal segment is a maximal spatiotemporal
   window (Definition 2);
5. drop any sequence whose running total goes negative: it can no
   longer contribute a new maximal window (Lines 11–12 of Algorithm 2),
   archiving the windows it produced.

The tracker also records the per-timestamp counts behind Figures 5
(bursty rectangles per snapshot) and 6 (open windows per term).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.config import STLocalConfig
from repro.core.patterns import RegionalPattern
from repro.core.rbursty import r_bursty
from repro.errors import StreamError
from repro.intervals.interval import Interval
from repro.spatial.discrepancy import WeightedPoint
from repro.spatial.geometry import Point, Rectangle
from repro.spatial.index import IntervalSpatialIndex, SpatialIndex
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.frequency import FrequencyTensor
from repro.temporal.baselines import ExpectedFrequencyModel
from repro.temporal.max_segments import OnlineMaxSegments

__all__ = ["RegionSequence", "STLocalTermTracker", "STLocal"]


@dataclasses.dataclass
class RegionSequence:
    """The r-score sequence ``S`` of one tracked region ``R_S``.

    Attributes:
        region: The rectangle on the map.
        stream_ids: The streams whose geostamps lie inside the region.
        start: Global timestamp of the sequence's first value.
        tracker: Online Ruzzo–Tompa state over the appended r-scores.
        member_order: The member streams in a fixed sorted order, so the
            r-score summation is bit-reproducible across processes
            (frozenset iteration follows the randomised string hash).
    """

    region: Rectangle
    stream_ids: FrozenSet[Hashable]
    start: int
    tracker: OnlineMaxSegments = dataclasses.field(default_factory=OnlineMaxSegments)
    member_order: Tuple[Hashable, ...] = ()

    def __post_init__(self) -> None:
        if not self.member_order:
            self.member_order = tuple(sorted(self.stream_ids, key=repr))

    def append(self, r_score: float) -> None:
        self.tracker.add(r_score)

    @property
    def total(self) -> float:
        """``S.total`` — the pruning statistic of Algorithm 2."""
        return self.tracker.total

    def windows(self) -> List[Tuple[Interval, float]]:
        """Current maximal windows as (global timeframe, w-score) pairs."""
        return [
            (segment.interval.shift(self.start), segment.score)
            for segment in self.tracker.segments()
        ]

    def fork(self) -> "RegionSequence":
        """An independent copy sharing only the immutable fields."""
        return RegionSequence(
            region=self.region,
            stream_ids=self.stream_ids,
            start=self.start,
            tracker=self.tracker.fork(),
            member_order=self.member_order,
        )


class STLocalTermTracker:
    """Streaming STLocal state for a single term.

    Args:
        locations: Geostamp of every stream on the projected plane.
        config: Algorithm settings.
        index: Optional prebuilt spatial index over ``locations``; when
            mining many terms over the same stream set (see
            :class:`repro.pipeline.BatchMiner`) one shared index avoids
            a per-term rebuild.
        copy_locations: Defensively copy ``locations`` (default).  A
            batch pipeline holding thousands of trackers over one
            immutable stream set passes ``False`` to share a single
            mapping; the tracker never mutates it.
    """

    #: Stream counts above which rectangle membership is resolved with a
    #: spatial index instead of a linear scan over all locations.
    INDEX_THRESHOLD = 512

    def __init__(
        self,
        locations: Dict[Hashable, Point],
        config: Optional[STLocalConfig] = None,
        index: Optional[SpatialIndex] = None,
        copy_locations: bool = True,
    ) -> None:
        self.locations = dict(locations) if copy_locations else locations
        self.config = config if config is not None else STLocalConfig()
        self._index: Optional[SpatialIndex] = index
        if index is None and len(self.locations) > self.INDEX_THRESHOLD:
            self._index = IntervalSpatialIndex(
                [(sid, point) for sid, point in self.locations.items()]
            )
        self._models: Dict[Hashable, ExpectedFrequencyModel] = {}
        self._sequences: Dict[Hashable, RegionSequence] = {}
        self._archived: List[Tuple[Rectangle, FrozenSet[Hashable], Interval, float]] = []
        self._clock = 0
        self._history: Dict[Hashable, Dict[int, float]] = {}
        self.rectangle_history: List[int] = []
        self.open_history: List[int] = []

    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Number of snapshots processed so far."""
        return self._clock

    @property
    def open_sequences(self) -> int:
        """Currently tracked (open) region sequences."""
        return len(self._sequences)

    @property
    def pristine(self) -> bool:
        """True while the tracker has never observed any activity.

        A pristine tracker may still be :meth:`fast_forward`-ed over a
        quiet prefix; once any model or sequence exists it must replay
        every remaining snapshot.
        """
        return not self._models and not self._sequences

    # ------------------------------------------------------------------
    def fork(self) -> "STLocalTermTracker":
        """Checkpoint the tracker: an independent, advanceable copy.

        The fork shares the immutable inputs (locations, config, spatial
        index) but owns deep copies of all mutable state — expectation
        models, open region sequences, archives and histories — so it
        can be fed further snapshots (or discarded) without disturbing
        this tracker.  The live serving layer uses this to preview
        patterns that include a still-open snapshot while keeping the
        durable tracker rewindable to its sealed checkpoint, and the
        differential tests use it to verify a replayed fork matches a
        cold batch run.
        """
        clone = STLocalTermTracker(
            self.locations,
            config=self.config,
            index=self._index,
            copy_locations=False,
        )
        clone._models = copy.deepcopy(self._models)
        clone._sequences = {
            key: sequence.fork() for key, sequence in self._sequences.items()
        }
        clone._archived = list(self._archived)
        clone._clock = self._clock
        clone._history = {
            sid: dict(values) for sid, values in self._history.items()
        }
        clone.rectangle_history = list(self.rectangle_history)
        clone.open_history = list(self.open_history)
        return clone

    # ------------------------------------------------------------------
    def fast_forward(self, timestamp: int) -> None:
        """Skip ahead to ``timestamp`` while the tracker is pristine.

        Processing an empty snapshot before any stream has ever been
        observed is a strict no-op — no models exist, no burstiness is
        computed, no rectangle can appear — so the leading quiet stretch
        of a term's timeline can be skipped outright.  The lazily
        created expectation models already account for the skipped
        snapshots through :meth:`_prime`, so the result is identical to
        replaying the empty prefix.

        Raises:
            StreamError: when the tracker has already observed activity
                (skipping would then drop real model updates) or when
                ``timestamp`` is behind the clock.
        """
        if timestamp < self._clock:
            raise StreamError(
                f"cannot fast-forward backwards ({timestamp} < {self._clock})"
            )
        if self._models or self._sequences:
            raise StreamError(
                "fast_forward is only valid before the first observation"
            )
        skipped = timestamp - self._clock
        self.rectangle_history.extend([0] * skipped)
        self.open_history.extend([0] * skipped)
        self._clock = timestamp

    def process(self, frequencies: Dict[Hashable, float]) -> int:
        """Consume the next snapshot.

        Args:
            frequencies: Sparse map of stream → observed term frequency
                at the current timestamp; absent streams observed zero.

        Returns:
            The number of bursty rectangles found in this snapshot.

        Raises:
            StreamError: if a frequency refers to an unknown stream.
        """
        timestamp = self._clock
        burstiness = self._update_burstiness(timestamp, frequencies)

        points = [
            WeightedPoint(
                point=self.locations[sid], weight=value, stream_id=sid
            )
            for sid, value in burstiness.items()
        ]
        rectangles = r_bursty(points)
        self.rectangle_history.append(len(rectangles))

        for result in rectangles:
            members = self._members_of(result.rectangle)
            if not members:
                # A memberless rectangle can never score, and tracking
                # it would canonicalise every such region to the same
                # frozenset() key, silently merging distinct regions
                # into one RegionSequence.
                continue
            key: Hashable
            if self.config.key_by_geometry:
                key = (
                    result.rectangle.min_x,
                    result.rectangle.min_y,
                    result.rectangle.max_x,
                    result.rectangle.max_y,
                )
            else:
                key = members
            if key not in self._sequences:
                self._sequences[key] = RegionSequence(
                    region=result.rectangle,
                    stream_ids=members,
                    start=timestamp,
                )

        # Append the current r-score to every tracked sequence and prune
        # the ones whose totals went negative.
        for key in list(self._sequences):
            sequence = self._sequences[key]
            r_score = sum(
                burstiness.get(sid, 0.0) for sid in sequence.member_order
            )
            sequence.append(r_score)
            if sequence.total < 0.0:
                self._archive(sequence)
                del self._sequences[key]

        self.open_history.append(len(self._sequences))
        self._clock += 1
        return len(rectangles)

    def _members_of(self, rectangle: Rectangle) -> FrozenSet[Hashable]:
        """Streams whose geostamps lie inside a rectangle."""
        if self._index is not None:
            return frozenset(self._index.query_rectangle(rectangle))
        return frozenset(
            sid
            for sid, location in self.locations.items()
            if rectangle.contains_point(location)
        )

    # ------------------------------------------------------------------
    def _update_burstiness(
        self, timestamp: int, frequencies: Dict[Hashable, float]
    ) -> Dict[Hashable, float]:
        """Eq. 7 for every stream with history or a current observation."""
        for sid in frequencies:
            if sid not in self.locations:
                raise StreamError(f"unknown stream {sid!r} in snapshot")
        burstiness: Dict[Hashable, float] = {}
        active = set(self._models) | {
            sid for sid, value in frequencies.items() if value > 0.0
        }
        in_warmup = timestamp < self.config.warmup
        # Fixed evaluation order: downstream float summations (weighted
        # points, grid cells) then produce bit-identical results in any
        # process regardless of string-hash randomisation.
        for sid in sorted(active, key=repr):
            observed = float(frequencies.get(sid, 0.0))
            model = self._models.get(sid)
            if model is None:
                model = self.config.baseline_factory()
                self._prime(model, timestamp)
                self._models[sid] = model
            if in_warmup:
                burstiness[sid] = 0.0
            else:
                burstiness[sid] = observed - model.expected(timestamp)
            model.observe(timestamp, observed)
        if self.config.track_history:
            for sid, value in burstiness.items():
                if value != 0.0:
                    self._history.setdefault(sid, {})[timestamp] = value
        return burstiness

    @staticmethod
    def _prime(model: ExpectedFrequencyModel, zeros: int) -> None:
        """Feed the leading zero observations a lazily-created model missed.

        The paper's default baseline averages over *all* snapshots before
        ``i``, so the silent zeros before a term's first appearance in a
        stream must count.
        """
        prime = getattr(model, "prime_zeros", None)
        if prime is not None:
            prime(zeros)
            return
        for j in range(zeros):
            model.observe(j, 0.0)

    def _archive(self, sequence: RegionSequence) -> None:
        for timeframe, score in sequence.windows():
            self._archived.append(
                (sequence.region, sequence.stream_ids, timeframe, score)
            )

    # ------------------------------------------------------------------
    def windows(self) -> List[Tuple[Rectangle, FrozenSet[Hashable], Interval, float]]:
        """All maximal windows found so far (archived + live)."""
        live = []
        for sequence in self._sequences.values():
            for timeframe, score in sequence.windows():
                live.append(
                    (sequence.region, sequence.stream_ids, timeframe, score)
                )
        return list(self._archived) + live

    def bursty_members(
        self, streams: FrozenSet[Hashable], timeframe: Interval
    ) -> Optional[FrozenSet[Hashable]]:
        """Member streams with positive net burstiness over a window.

        Returns ``None`` when history tracking is disabled.
        """
        if not self.config.track_history:
            return None
        bursty = set()
        start, end = timeframe.start, timeframe.end
        frame_length = end - start + 1
        for sid in streams:
            history = self._history.get(sid)
            if history is None:
                continue
            # Both walks add the same non-zero values in the same
            # ascending order (history entries are recorded in
            # timestamp order and zeros are inert), so take whichever
            # side is shorter: the timeframe for a narrow window over a
            # long history, the history for a sparse stream.
            total = 0.0
            if len(history) <= frame_length:
                for timestamp, value in history.items():
                    if start <= timestamp <= end:
                        total += value
            else:
                for timestamp in timeframe:
                    total += history.get(timestamp, 0.0)
            if total > 0.0:
                bursty.add(sid)
        return frozenset(bursty)

    def patterns(self, term: str) -> List[RegionalPattern]:
        """All maximal windows as regional patterns, best first."""
        patterns = [
            RegionalPattern(
                term=term,
                region=region,
                streams=streams,
                timeframe=timeframe,
                score=score,
                bursty_streams=self.bursty_members(streams, timeframe),
            )
            for region, streams, timeframe, score in self.windows()
            if score > self.config.min_window_score
        ]
        # Fully deterministic order: equal-score patterns are further
        # ordered by timeframe and region so the ranking is independent
        # of archive-versus-live bookkeeping order.
        patterns.sort(
            key=lambda p: (
                -p.score,
                p.timeframe.start,
                p.timeframe.end,
                p.region.min_x,
                p.region.min_y,
                p.region.max_x,
                p.region.max_y,
            )
        )
        return patterns


class STLocal:
    """Regional spatiotemporal pattern miner (batch façade).

    Wraps :class:`STLocalTermTracker` with the paper's offline usage:
    replay a collection one timestamp at a time per term.

    Args:
        config: Algorithm settings shared by all trackers.
    """

    def __init__(self, config: Optional[STLocalConfig] = None) -> None:
        self.config = config if config is not None else STLocalConfig()

    # ------------------------------------------------------------------
    def tracker(self, locations: Dict[Hashable, Point]) -> STLocalTermTracker:
        """Create a streaming tracker for one term."""
        return STLocalTermTracker(locations, config=self.config)

    def run_term(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
        locations: Optional[Dict[Hashable, Point]] = None,
    ) -> STLocalTermTracker:
        """Replay the whole timeline for one term, returning the tracker."""
        tensor, locations = _resolve(data, locations)
        tracker = self.tracker(locations)
        for timestamp in range(tensor.timeline):
            tracker.process(tensor.slice_at(term, timestamp))
        return tracker

    def patterns_for_term(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
        locations: Optional[Dict[Hashable, Point]] = None,
    ) -> List[RegionalPattern]:
        """All maximal windows of a term over the full timeline."""
        return self.run_term(data, term, locations).patterns(term)

    def top_pattern(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
        locations: Optional[Dict[Hashable, Point]] = None,
    ) -> Optional[RegionalPattern]:
        """The highest-scoring maximal window of a term, if any."""
        patterns = self.patterns_for_term(data, term, locations)
        return patterns[0] if patterns else None

    def mine(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        terms: Optional[Sequence[str]] = None,
        locations: Optional[Dict[Hashable, Point]] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, List[RegionalPattern]]:
        """Mine regional patterns for many terms.

        Delegates to the snapshot-major batch pipeline: one sweep over
        the shared tensor feeds every term's tracker (identical output
        to the per-term replay, substantially less work).

        Args:
            data: Collection or tensor.
            terms: Terms to mine; defaults to the full vocabulary.
            locations: Stream locations (required with a raw tensor).
            workers: Optional process count for term-sharded mining.

        Returns:
            Map of term → its maximal windows (terms with none omitted).
        """
        from repro.pipeline import BatchMiner

        return BatchMiner(stlocal=self, workers=workers).mine_regional(
            data, terms, locations
        )


def _resolve(
    data: Union[SpatiotemporalCollection, FrequencyTensor],
    locations: Optional[Dict[Hashable, Point]],
) -> Tuple[FrequencyTensor, Dict[Hashable, Point]]:
    """Normalise (data, locations) to a tensor + location map."""
    if isinstance(data, SpatiotemporalCollection):
        tensor = FrequencyTensor(data)
        locations = data.locations()
    else:
        tensor = data
        if locations is None:
            raise StreamError(
                "locations are required when mining from a FrequencyTensor"
            )
    return tensor, locations
