"""Configuration dataclasses for the core algorithms.

Collected in one module so that experiment scripts can construct, log
and sweep configurations declaratively.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.temporal.baselines import ExpectedFrequencyModel, RunningMeanBaseline

__all__ = ["STCombConfig", "STLocalConfig", "BaseConfig"]


@dataclasses.dataclass
class STCombConfig:
    """Settings for :class:`repro.core.stcomb.STComb`.

    Attributes:
        max_patterns: Cap on the number of non-overlapping patterns
            extracted per term (``None`` = until exhaustion).
        min_interval_score: Minimum ``B_T`` for a per-stream interval to
            enter the clique stage.
        min_pattern_streams: Patterns with fewer member streams are
            dropped (1 keeps single-stream bursts, the paper's setting).
    """

    max_patterns: Optional[int] = None
    min_interval_score: float = 0.0
    min_pattern_streams: int = 1

    def __post_init__(self) -> None:
        if self.min_pattern_streams < 1:
            raise ConfigurationError("min_pattern_streams must be >= 1")
        if self.max_patterns is not None and self.max_patterns < 1:
            raise ConfigurationError("max_patterns must be >= 1 or None")


@dataclasses.dataclass
class STLocalConfig:
    """Settings for :class:`repro.core.stlocal.STLocal`.

    Attributes:
        baseline_factory: Zero-argument callable producing a fresh
            expected-frequency model per (term, stream); defaults to the
            paper's running mean over all earlier snapshots.
        key_by_geometry: Region-identity ablation switch — ``False``
            (default) keys tracked regions by their member-stream set;
            ``True`` keys them by the rectangle geometry.
        min_window_score: Maximal windows below this w-score are not
            reported as patterns.
        warmup: Snapshots at the start of the stream during which
            burstiness is forced to zero while the expectation models
            learn.  A cold-started running mean makes every stream's
            first activity look bursty; a short warm-up removes that
            artifact without touching steady-state behaviour.
        track_history: Keep per-stream burstiness history so reported
            patterns can exclude non-bursty "false positive" streams
            (the refinement the paper's Section-4 discussion describes).
            Disable for very large stream counts to save memory.
    """

    baseline_factory: Callable[[], ExpectedFrequencyModel] = RunningMeanBaseline
    key_by_geometry: bool = False
    min_window_score: float = 0.0
    warmup: int = 4
    track_history: bool = True

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ConfigurationError("warmup must be non-negative")


@dataclasses.dataclass
class BaseConfig:
    """Settings for the ``Base`` baseline (Section 6.2.2).

    Attributes:
        max_gap: The ℓ parameter — interior zero-runs shorter than this
            are filled before intervals are formed.
        jaccard_threshold: The δ parameter — minimum interval Jaccard
            similarity for a cross-stream merge.
        seed: RNG seed for the random stream processing order.
    """

    max_gap: int = 2
    jaccard_threshold: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_gap < 0:
            raise ConfigurationError("max_gap must be non-negative")
        if not 0.0 < self.jaccard_threshold <= 1.0:
            raise ConfigurationError("jaccard_threshold must lie in (0, 1]")
