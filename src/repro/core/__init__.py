"""The paper's core contribution: spatiotemporal pattern mining.

STComb (combinatorial patterns, Section 3), STLocal (regional patterns
/ maximal windows, Section 4), R-Bursty (Algorithm 1), and the Base
baseline of the evaluation (Section 6.2.2).
"""

from repro.core.patterns import (
    CombinatorialPattern,
    RegionalPattern,
    SpatiotemporalWindow,
    pattern_overlaps_document,
)
from repro.core.config import BaseConfig, STCombConfig, STLocalConfig
from repro.core.rbursty import r_bursty
from repro.core.stcomb import BurstDetector, STComb
from repro.core.stlocal import RegionSequence, STLocal, STLocalTermTracker
from repro.core.base import BaseDetector, BasePattern

__all__ = [
    "BaseConfig",
    "BaseDetector",
    "BasePattern",
    "BurstDetector",
    "CombinatorialPattern",
    "RegionSequence",
    "RegionalPattern",
    "STComb",
    "STCombConfig",
    "STLocal",
    "STLocalConfig",
    "STLocalTermTracker",
    "SpatiotemporalWindow",
    "pattern_overlaps_document",
    "r_bursty",
]
