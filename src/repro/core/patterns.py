"""Spatiotemporal burstiness patterns.

The two pattern families of the paper share one shape — a set of
streams plus a temporal interval plus a score — and the search engine
(Section 5) deliberately consumes them through that common surface:
"both types of spatiotemporal patterns discussed in this paper include
a timeframe and a set of streams".

* :class:`CombinatorialPattern` (Section 3) — an eligible subset of
  per-stream bursty intervals; streams may come from anywhere on the
  map.
* :class:`RegionalPattern` (Section 4) — a maximal spatiotemporal
  window: an axis-aligned rectangle and the timeframe over which it was
  bursty.
* :class:`SpatiotemporalWindow` — the geometric object of Definition 2,
  with the sub-window / super-window relation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.intervals.interval import Interval
from repro.spatial.geometry import Rectangle
from repro.streams.document import Document

__all__ = [
    "CombinatorialPattern",
    "RegionalPattern",
    "SpatiotemporalWindow",
    "pattern_overlaps_document",
]


@dataclasses.dataclass(frozen=True)
class SpatiotemporalWindow:
    """A window ``w = (R, [a : b])`` — a hyper-rectangle in 3-D space.

    Attributes:
        rectangle: The spatial region ``R``.
        timeframe: The temporal extent ``[a : b]``.
    """

    rectangle: Rectangle
    timeframe: Interval

    def is_sub_window_of(self, other: "SpatiotemporalWindow") -> bool:
        """Definition 2: contained in ``other`` in both space and time."""
        return other.rectangle.contains_rectangle(self.rectangle) and (
            other.timeframe.contains_interval(self.timeframe)
        )

    def is_super_window_of(self, other: "SpatiotemporalWindow") -> bool:
        return other.is_sub_window_of(self)

    @property
    def volume(self) -> float:
        """Spatial area × temporal length (for diagnostics)."""
        return self.rectangle.area * self.timeframe.length


@dataclasses.dataclass(frozen=True)
class CombinatorialPattern:
    """A combinatorial spatiotemporal pattern (Section 3).

    Built from an eligible subset ``I' ⊆ I`` of per-stream bursty
    intervals: the streams represented in ``I'`` form the pattern's
    stream set, the common segment is its timeframe, and the score is
    the cumulative temporal burstiness of the member intervals.

    Attributes:
        term: The term exhibiting the burst.
        streams: Identifiers of the streams in the pattern.
        timeframe: The common segment of all member intervals.
        score: ``Σ_{I ∈ I'} B_T(I)``.
        member_intervals: Per-stream bursty interval and its score.
    """

    term: str
    streams: FrozenSet[Hashable]
    timeframe: Interval
    score: float
    member_intervals: Tuple[Tuple[Hashable, Interval, float], ...] = ()

    def overlaps(self, document: Document) -> bool:
        """Pattern/document overlap per Section 5.

        A document overlaps the pattern when its stream of origin is in
        the pattern's stream set *and* its timestamp is inside the
        member interval reported for that stream (falling back to the
        common timeframe when member intervals are unavailable).
        """
        if document.stream_id not in self.streams:
            return False
        for stream_id, interval, _ in self.member_intervals:
            if stream_id == document.stream_id:
                return document.timestamp in interval
        return document.timestamp in self.timeframe

    def __len__(self) -> int:
        return len(self.streams)


@dataclasses.dataclass(frozen=True)
class RegionalPattern:
    """A regional spatiotemporal pattern — a maximal window (Section 4).

    Attributes:
        term: The term exhibiting the burst.
        region: The axis-aligned rectangle on the map.
        streams: The streams whose geostamps fall inside ``region``.
        timeframe: The maximal window's temporal extent.
        score: The w-score (Eq. 9) of the window.
    """

    term: str
    region: Rectangle
    streams: FrozenSet[Hashable]
    timeframe: Interval
    score: float
    bursty_streams: Optional[FrozenSet[Hashable]] = None
    """Member streams with positive net burstiness over the timeframe.

    The paper's Section-4 discussion notes a bursty rectangle may
    contain some non-bursty streams and that it is "computationally
    trivial to remember, and ultimately exclude, such false positives";
    this field holds the pattern's streams after that exclusion (``None``
    when the miner did not track per-stream history).
    """

    @property
    def window(self) -> SpatiotemporalWindow:
        return SpatiotemporalWindow(rectangle=self.region, timeframe=self.timeframe)

    def overlaps(self, document: Document) -> bool:
        """Document overlap: stream inside the region, time in the frame.

        When the miner recorded the pattern's bursty member streams,
        the non-bursty "false positives" are excluded here too — a
        document from a never-bursty stream inside the rectangle does
        not inherit the pattern's burstiness.
        """
        members = (
            self.bursty_streams if self.bursty_streams else self.streams
        )
        return (
            document.stream_id in members
            and document.timestamp in self.timeframe
        )

    def __len__(self) -> int:
        return len(self.streams)


def pattern_overlaps_document(pattern, document: Document) -> bool:
    """Uniform overlap test for any pattern type (duck-typed)."""
    return pattern.overlaps(document)
