"""STComb (Section 3): combinatorial spatiotemporal patterns.

Pipeline, per term:

1. for every stream, extract the non-overlapping bursty temporal
   intervals with a pluggable detector (Lappas KDD'09 by default);
2. pool all intervals (tagged with stream and ``B_T`` score) and solve
   the Highest-Scoring-Subset problem — equivalently Maximum-Weight
   Clique on the interval intersection graph (Proposition 1) — with the
   ``O(n log n)`` sweep;
3. obtain multiple non-overlapping patterns by iterated clique removal.

Each clique maps to a :class:`~repro.core.patterns.CombinatorialPattern`
whose streams are the clique members' origins, whose timeframe is their
common segment, and whose score is their cumulative burstiness.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Protocol, Sequence, Union

from repro.core.config import STCombConfig
from repro.core.patterns import CombinatorialPattern
from repro.intervals.graph import WeightedInterval
from repro.intervals.max_clique import CliqueResult, iterated_max_cliques
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.frequency import FrequencyTensor
from repro.temporal.lappas import LappasBurstDetector
from repro.temporal.max_segments import ScoredSegment

__all__ = ["BurstDetector", "STComb"]


class BurstDetector(Protocol):
    """Protocol for per-stream temporal burst detectors.

    Any object with ``detect(frequencies) -> list[ScoredSegment]``
    returning non-overlapping scored intervals fits — the paper's
    methodology "is compatible with any framework that reports
    non-overlapping bursty intervals".
    """

    def detect(self, frequencies: Sequence[float]) -> List[ScoredSegment]:
        ...


class STComb:
    """Combinatorial spatiotemporal pattern miner.

    Args:
        detector: Temporal burst detector applied independently per
            stream; defaults to :class:`LappasBurstDetector`.
        config: Algorithm settings; defaults to the paper's.
    """

    def __init__(
        self,
        detector: Optional[BurstDetector] = None,
        config: Optional[STCombConfig] = None,
    ) -> None:
        self.detector = detector if detector is not None else LappasBurstDetector()
        self.config = config if config is not None else STCombConfig()

    # ------------------------------------------------------------------
    def stream_intervals(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
    ) -> List[WeightedInterval]:
        """Step 1: per-stream bursty intervals for one term.

        Accepts either the raw collection or a prebuilt
        :class:`FrequencyTensor` (preferred when mining many terms).
        """
        intervals: List[WeightedInterval] = []
        if isinstance(data, SpatiotemporalCollection):
            stream_ids = data.stream_ids
            sequences = {
                sid: data.frequency_sequence(sid, term) for sid in stream_ids
            }
        else:
            # Anything tensor-like (FrequencyTensor or a synthetic
            # frequency source) exposing streams_with()/sequence().
            stream_ids = data.streams_with(term)
            sequences = {sid: data.sequence(term, sid) for sid in stream_ids}
        for sid in stream_ids:
            frequencies = sequences[sid]
            if not any(frequencies):
                continue
            for segment in self.detector.detect(frequencies):
                if segment.score <= self.config.min_interval_score:
                    continue
                intervals.append(
                    WeightedInterval(
                        interval=segment.interval,
                        weight=segment.score,
                        stream_id=sid,
                    )
                )
        return intervals

    # ------------------------------------------------------------------
    def patterns_for_term(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
    ) -> List[CombinatorialPattern]:
        """Mine all non-overlapping combinatorial patterns of a term.

        Returns:
            Patterns in non-increasing score order (the iterated-clique
            extraction order).
        """
        intervals = self.stream_intervals(data, term)
        cliques = iterated_max_cliques(
            intervals, max_patterns=self.config.max_patterns
        )
        patterns = [
            self._clique_to_pattern(term, clique)
            for clique in cliques
        ]
        return [
            pattern
            for pattern in patterns
            if len(pattern.streams) >= self.config.min_pattern_streams
        ]

    def top_pattern(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
    ) -> Optional[CombinatorialPattern]:
        """The single highest-scoring pattern (the HSS problem solution)."""
        intervals = self.stream_intervals(data, term)
        cliques = iterated_max_cliques(intervals, max_patterns=1)
        if not cliques:
            return None
        return self._clique_to_pattern(term, cliques[0])

    def mine(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        terms: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, List[CombinatorialPattern]]:
        """Mine patterns for many terms.

        Delegates to the batch pipeline: a raw collection is indexed
        into one shared tensor up front (instead of re-walking every
        stream per term) and terms can be sharded over processes.

        Args:
            data: Collection or tensor.
            terms: Terms to mine; defaults to the full vocabulary.
            workers: Optional process count for term-sharded mining.

        Returns:
            Map of term → its patterns (terms with none are omitted).
        """
        from repro.pipeline import BatchMiner

        return BatchMiner(stcomb=self, workers=workers).mine_combinatorial(
            data, terms
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _clique_to_pattern(term: str, clique: CliqueResult) -> CombinatorialPattern:
        """Translate a clique into a combinatorial pattern (Section 3)."""
        members = tuple(
            (witem.stream_id, witem.interval, witem.weight)
            for witem in clique.members
        )
        return CombinatorialPattern(
            term=term,
            streams=frozenset(witem.stream_id for witem in clique.members),
            timeframe=clique.segment,
            score=clique.weight,
            member_intervals=members,
        )
