"""The ``Base`` baseline of Section 6.2.2.

A deliberately simple spatiotemporal pattern detector the paper
compares against:

1. per stream, compute the per-timestamp burstiness (Eq. 7), binarise
   (positive → 1, else 0) and take the maximal runs of ones as the
   stream's bursty intervals, after filling interior zero-gaps shorter
   than ℓ;
2. visit the streams in random order; seed the pattern pool with the
   first stream's intervals; for each later interval, merge it into a
   pooled pattern when their Jaccard similarity reaches δ (the pooled
   interval is replaced by the *intersection*, per the paper), else add
   it to the pool as a new pattern.

Both ℓ and δ are tunable (the paper "tunes both ... to yield the best
results"); :mod:`repro.eval.experiments` grid-searches them for
Table 2.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Union

from repro.core.config import BaseConfig
from repro.errors import StreamError
from repro.intervals.interval import Interval
from repro.intervals.interval_set import fill_gaps, intervals_from_mask
from repro.streams.collection import SpatiotemporalCollection
from repro.streams.frequency import FrequencyTensor
from repro.temporal.baselines import burstiness_series

__all__ = ["BasePattern", "BaseDetector"]


@dataclasses.dataclass(frozen=True)
class BasePattern:
    """A pattern found by the Base baseline.

    Attributes:
        term: The term exhibiting the burst.
        streams: Streams merged into the pattern.
        timeframe: The (iteratively intersected) shared interval.
        score: Crude strength proxy: #streams × interval length.  The
            paper does not define a score for Base — it is only
            evaluated on retrieval accuracy (Table 2) — so any monotone
            tie-breaker works; this one prefers wide, long patterns.
    """

    term: str
    streams: FrozenSet[Hashable]
    timeframe: Interval
    score: float


@dataclasses.dataclass
class _Pooled:
    interval: Interval
    streams: Set[Hashable]


class BaseDetector:
    """The Base baseline pattern miner.

    Args:
        config: ℓ / δ / seed settings.
    """

    def __init__(self, config: Optional[BaseConfig] = None) -> None:
        self.config = config if config is not None else BaseConfig()

    # ------------------------------------------------------------------
    def stream_intervals(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
    ) -> Dict[Hashable, List[Interval]]:
        """Step 1: per-stream binarised, gap-filled bursty intervals."""
        if isinstance(data, SpatiotemporalCollection):
            tensor = FrequencyTensor(data)
        else:
            tensor = data
        intervals: Dict[Hashable, List[Interval]] = {}
        for sid in tensor.streams_with(term):
            frequencies = tensor.sequence(term, sid)
            scores = burstiness_series(frequencies)
            mask = [value > 0.0 for value in scores]
            runs = intervals_from_mask(mask)
            runs = fill_gaps(runs, self.config.max_gap)
            if runs:
                intervals[sid] = runs
        return intervals

    # ------------------------------------------------------------------
    def patterns_for_term(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
    ) -> List[BasePattern]:
        """Mine Base patterns for one term (step 2: random-order merging).

        Returns:
            Patterns sorted by score, best first.
        """
        per_stream = self.stream_intervals(data, term)
        if not per_stream:
            return []
        rng = random.Random(self.config.seed)
        order = list(per_stream)
        rng.shuffle(order)

        pool: List[_Pooled] = [
            _Pooled(interval=interval, streams={order[0]})
            for interval in per_stream[order[0]]
        ]
        for sid in order[1:]:
            for interval in per_stream[sid]:
                merged = False
                for pooled in pool:
                    if pooled.interval.jaccard(interval) >= self.config.jaccard_threshold:
                        overlap = pooled.interval.intersection(interval)
                        if overlap is not None:
                            pooled.interval = overlap
                            pooled.streams.add(sid)
                            merged = True
                            break
                if not merged:
                    pool.append(_Pooled(interval=interval, streams={sid}))

        patterns = [
            BasePattern(
                term=term,
                streams=frozenset(pooled.streams),
                timeframe=pooled.interval,
                score=float(len(pooled.streams) * pooled.interval.length),
            )
            for pooled in pool
        ]
        patterns.sort(key=lambda p: p.score, reverse=True)
        return patterns

    def top_pattern(
        self,
        data: Union[SpatiotemporalCollection, FrequencyTensor],
        term: str,
    ) -> Optional[BasePattern]:
        """Highest-scoring Base pattern for a term, if any."""
        patterns = self.patterns_for_term(data, term)
        return patterns[0] if patterns else None
