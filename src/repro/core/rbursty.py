"""R-Bursty (Algorithm 1): all non-overlapping bursty rectangles.

Given one snapshot's per-stream burstiness values (as weighted map
points), repeatedly extract the maximum-score axis-aligned rectangle and
retire every stream it contains (the paper sets their scores to −∞; we
equivalently remove the points), until no rectangle with a strictly
positive r-score remains.

The no-overlap guarantee is in terms of *streams*: no stream appears in
two reported rectangles.  Because each reported rectangle contains at
least one positive-weight stream, the loop terminates after at most
``n`` iterations, giving the paper's ``O(n³ log n)``-style polynomial
bound with our ``O(m² k)`` rectangle module.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.spatial.discrepancy import (
    MaxRectangleResult,
    WeightedPoint,
    max_weight_rectangle,
)

__all__ = ["r_bursty"]


def r_bursty(points: Sequence[WeightedPoint]) -> List[MaxRectangleResult]:
    """Find all non-overlapping positive-score bursty rectangles.

    Args:
        points: One weighted point per stream — location on the map and
            burstiness ``B(t, D_x[i])`` at the current snapshot.  Points
            with zero weight participate only passively: they can be
            swallowed by a rectangle (and are then retired with it,
            mirroring the −∞ trick) but never affect any score.

    Returns:
        Rectangles in extraction order (non-increasing score).  Each
        result's ``members`` are *all* the input points geometrically
        inside the rectangle — including non-bursty ones, which the
        paper notes a bursty region may legitimately contain.
    """
    remaining = list(points)
    results: List[MaxRectangleResult] = []
    while remaining:
        best = max_weight_rectangle(remaining)
        if best is None or best.score <= 0.0:
            break
        rectangle = best.rectangle
        inside = tuple(
            wp for wp in remaining if rectangle.contains_point(wp.point)
        )
        results.append(
            MaxRectangleResult(
                rectangle=rectangle, score=best.score, members=inside
            )
        )
        remaining = [
            wp for wp in remaining if not rectangle.contains_point(wp.point)
        ]
    return results
