"""STLocal: streaming trackers, maximal windows, regional patterns."""

import pytest

from repro.core import STLocal, STLocalConfig
from repro.core.stlocal import STLocalTermTracker
from repro.errors import StreamError
from repro.intervals import Interval
from repro.spatial import Point
from repro.streams import Document, SpatiotemporalCollection
from repro.temporal import MovingAverageBaseline


def grid_locations(n=9):
    """A 3x3 grid of streams g0..g8, row-major."""
    return {
        f"g{i}": Point(float(i % 3) * 10.0, float(i // 3) * 10.0)
        for i in range(n)
    }


def make_tracker(**config_kwargs):
    defaults = dict(warmup=0)
    defaults.update(config_kwargs)
    return STLocalTermTracker(grid_locations(), STLocalConfig(**defaults))


class TestTracker:
    def test_clock_advances(self):
        tracker = make_tracker()
        tracker.process({})
        tracker.process({})
        assert tracker.clock == 2

    def test_unknown_stream_rejected(self):
        tracker = make_tracker()
        with pytest.raises(StreamError):
            tracker.process({"nope": 1.0})

    def test_quiet_stream_no_windows(self):
        tracker = make_tracker()
        for _ in range(10):
            tracker.process({})
        assert tracker.windows() == []
        assert tracker.rectangle_history == [0] * 10

    def test_single_burst_window(self):
        tracker = make_tracker()
        # g0 bursts at timestamps 3..5.
        for t in range(10):
            freq = {"g0": 8.0} if 3 <= t <= 5 else {}
            tracker.process(freq)
        windows = tracker.windows()
        assert windows
        best = max(windows, key=lambda w: w[3])
        region, streams, timeframe, score = best
        assert "g0" in streams
        assert timeframe.start == 3
        assert 3 <= timeframe.end <= 5
        assert score > 0.0

    def test_cluster_detected_as_one_region(self):
        tracker = make_tracker()
        # Neighbouring g0, g1 burst together; isolated g8 stays quiet.
        for t in range(8):
            freq = {"g0": 5.0, "g1": 5.0} if t >= 4 else {}
            tracker.process(freq)
        windows = tracker.windows()
        best = max(windows, key=lambda w: w[3])
        assert {"g0", "g1"} <= set(best[1])
        assert "g8" not in best[1]

    def test_sequences_pruned_when_total_negative(self):
        tracker = make_tracker()
        # One spike then silence: running-mean expectation goes positive,
        # burstiness negative, the region's total sinks below zero.
        tracker.process({"g0": 6.0})
        for _ in range(12):
            tracker.process({})
        assert tracker.open_sequences == 0
        # The spike's window survives in the archive.
        assert any(timeframe == Interval(0, 0) for _, _, timeframe, _ in tracker.windows())

    def test_warmup_suppresses_cold_start(self):
        tracker = STLocalTermTracker(grid_locations(), STLocalConfig(warmup=5))
        for t in range(5):
            tracker.process({"g0": 3.0})
        assert tracker.windows() == []

    def test_burstiness_history_tracked(self):
        tracker = make_tracker()
        tracker.process({"g0": 4.0})
        members = tracker.bursty_members(frozenset({"g0", "g1"}), Interval(0, 0))
        assert members == frozenset({"g0"})

    def test_history_disabled(self):
        tracker = make_tracker(track_history=False)
        tracker.process({"g0": 4.0})
        assert tracker.bursty_members(frozenset({"g0"}), Interval(0, 0)) is None

    def test_open_history_recorded(self):
        tracker = make_tracker()
        for t in range(4):
            tracker.process({"g0": 2.0})
        assert len(tracker.open_history) == 4

    def test_geometry_keying_ablation(self):
        tracker = make_tracker(key_by_geometry=True)
        for t in range(6):
            tracker.process({"g0": 4.0} if t >= 2 else {})
        assert tracker.windows()

    def test_custom_baseline_factory(self):
        tracker = make_tracker(
            baseline_factory=lambda: MovingAverageBaseline(window=2)
        )
        for t in range(6):
            tracker.process({"g0": 2.0})
        # Constant signal: after the window fills, burstiness is zero.
        assert tracker.clock == 6


class TestMemberlessRectangles:
    """Regression: rectangles containing no stream geostamp used to
    canonicalise to ``frozenset()``, so every such "empty" region across
    the whole run shared a single RegionSequence — distinct regions
    silently merged.  They can never score and must be skipped."""

    def test_memberless_rectangles_not_tracked(self, monkeypatch):
        from repro.core import stlocal as stlocal_module
        from repro.spatial.discrepancy import MaxRectangleResult
        from repro.spatial.geometry import Rectangle

        real_r_bursty = stlocal_module.r_bursty
        # Two *distinct* rectangles in the empty space between grid
        # points, returned on alternating snapshots.
        empty_regions = [
            Rectangle(1.0, 1.0, 2.0, 2.0),
            Rectangle(21.0, 1.0, 22.0, 2.0),
        ]

        def fake_r_bursty(points):
            results = list(real_r_bursty(points))
            if points:
                region = empty_regions[len(results) % 2]
                results.append(
                    MaxRectangleResult(
                        rectangle=region, score=0.5, members=()
                    )
                )
            return results

        monkeypatch.setattr(stlocal_module, "r_bursty", fake_r_bursty)
        tracker = make_tracker()
        for t in range(6):
            tracker.process({"g0": 4.0})
        # No sequence may be keyed by the empty member set, and the two
        # distinct empty regions must not have been merged into one.
        assert frozenset() not in tracker._sequences
        for sequence in tracker._sequences.values():
            assert sequence.stream_ids
        # The real burst is still tracked normally.
        windows = tracker.windows()
        assert windows
        assert all(streams for _, streams, _, _ in windows)


class TestSTLocalFacade:
    def _collection(self):
        coll = SpatiotemporalCollection(timeline=12)
        for sid, point in grid_locations().items():
            coll.add_stream(sid, point)
        doc_id = 0
        for t in range(12):
            coll.add_document(Document(doc_id, "g4", t, ("filler",)))
            doc_id += 1
        for sid in ("g0", "g1"):
            for t in range(6, 9):
                for _ in range(5):
                    coll.add_document(Document(doc_id, sid, t, ("quake",)))
                    doc_id += 1
        return coll

    def test_top_pattern_recovers_event(self):
        pattern = STLocal().top_pattern(self._collection(), "quake")
        assert pattern is not None
        assert {"g0", "g1"} <= set(pattern.streams)
        assert pattern.timeframe.start == 6
        assert pattern.term == "quake"

    def test_bursty_streams_recorded(self):
        pattern = STLocal().top_pattern(self._collection(), "quake")
        assert pattern.bursty_streams is not None
        assert {"g0", "g1"} <= set(pattern.bursty_streams)

    def test_patterns_sorted_by_score(self):
        patterns = STLocal().patterns_for_term(self._collection(), "quake")
        scores = [p.score for p in patterns]
        assert scores == sorted(scores, reverse=True)

    def test_mine(self):
        mined = STLocal().mine(self._collection(), terms=["quake", "nothing"])
        assert "quake" in mined
        assert "nothing" not in mined

    def test_tensor_requires_locations(self):
        from repro.streams import FrequencyTensor

        coll = self._collection()
        tensor = FrequencyTensor(coll)
        with pytest.raises(StreamError):
            STLocal().top_pattern(tensor, "quake")

    def test_tensor_with_locations(self):
        from repro.streams import FrequencyTensor

        coll = self._collection()
        tensor = FrequencyTensor(coll)
        pattern = STLocal().top_pattern(tensor, "quake", locations=coll.locations())
        assert pattern is not None

    def test_no_pattern_for_absent_term(self):
        assert STLocal().top_pattern(self._collection(), "zzz") is None

    def test_min_window_score_filters(self):
        config = STLocalConfig(min_window_score=1e9)
        assert STLocal(config).patterns_for_term(self._collection(), "quake") == []


class TestSpatialIndexPath:
    def test_large_stream_count_uses_index(self):
        locations = {
            f"s{i}": Point(float(i % 40), float(i // 40)) for i in range(600)
        }
        tracker = STLocalTermTracker(locations, STLocalConfig(warmup=0))
        assert tracker._index is not None
        tracker.process({"s0": 5.0, "s1": 5.0})
        windows = tracker.windows()
        assert windows
        # Membership resolved through the index matches a linear scan.
        region, streams, _, _ = windows[0]
        expected = {
            sid
            for sid, point in locations.items()
            if region.contains_point(point)
        }
        assert set(streams) == expected
