"""Pattern types and the window relations of Definition 2."""

import pytest

from repro.core import (
    CombinatorialPattern,
    RegionalPattern,
    SpatiotemporalWindow,
    pattern_overlaps_document,
)
from repro.intervals import Interval
from repro.spatial import Rectangle
from repro.streams import Document


def _window(x0, y0, x1, y1, a, b):
    return SpatiotemporalWindow(Rectangle(x0, y0, x1, y1), Interval(a, b))


class TestSpatiotemporalWindow:
    def test_sub_window_true(self):
        outer = _window(0, 0, 10, 10, 0, 9)
        inner = _window(2, 2, 5, 5, 3, 4)
        assert inner.is_sub_window_of(outer)
        assert outer.is_super_window_of(inner)

    def test_same_rectangle_different_time(self):
        w2 = _window(0, 0, 5, 5, 0, 4)
        w3 = _window(0, 0, 5, 5, 6, 9)
        assert not w2.is_sub_window_of(w3)
        assert not w3.is_sub_window_of(w2)

    def test_spatial_containment_not_enough(self):
        outer = _window(0, 0, 10, 10, 5, 6)
        inner = _window(2, 2, 3, 3, 0, 9)
        assert not inner.is_sub_window_of(outer)

    def test_self_is_sub_window(self):
        w = _window(0, 0, 1, 1, 0, 1)
        assert w.is_sub_window_of(w)

    def test_volume(self):
        assert _window(0, 0, 2, 3, 0, 4).volume == pytest.approx(30.0)


class TestCombinatorialPattern:
    def _pattern(self):
        return CombinatorialPattern(
            term="quake",
            streams=frozenset({"us", "mx"}),
            timeframe=Interval(5, 8),
            score=1.5,
            member_intervals=(
                ("us", Interval(4, 9), 0.9),
                ("mx", Interval(5, 8), 0.6),
            ),
        )

    def test_overlap_in_member_interval(self):
        doc = Document(1, "us", 4, ("quake",))
        assert self._pattern().overlaps(doc)

    def test_no_overlap_wrong_stream(self):
        doc = Document(1, "fr", 6, ("quake",))
        assert not self._pattern().overlaps(doc)

    def test_no_overlap_outside_interval(self):
        doc = Document(1, "mx", 4, ("quake",))
        assert not self._pattern().overlaps(doc)

    def test_fallback_to_common_timeframe(self):
        pattern = CombinatorialPattern(
            term="quake",
            streams=frozenset({"us"}),
            timeframe=Interval(5, 8),
            score=1.0,
        )
        assert pattern.overlaps(Document(1, "us", 5, ()))
        assert not pattern.overlaps(Document(1, "us", 4, ()))

    def test_len(self):
        assert len(self._pattern()) == 2

    def test_duck_typed_helper(self):
        doc = Document(1, "us", 6, ())
        assert pattern_overlaps_document(self._pattern(), doc)


class TestRegionalPattern:
    def _pattern(self, bursty=None):
        return RegionalPattern(
            term="quake",
            region=Rectangle(0, 0, 10, 10),
            streams=frozenset({"us", "mx", "ca"}),
            timeframe=Interval(3, 6),
            score=12.0,
            bursty_streams=bursty,
        )

    def test_overlap_inside(self):
        assert self._pattern().overlaps(Document(1, "mx", 4, ()))

    def test_no_overlap_outside_time(self):
        assert not self._pattern().overlaps(Document(1, "mx", 7, ()))

    def test_no_overlap_outside_region(self):
        assert not self._pattern().overlaps(Document(1, "jp", 4, ()))

    def test_bursty_streams_restrict_overlap(self):
        pattern = self._pattern(bursty=frozenset({"us"}))
        assert pattern.overlaps(Document(1, "us", 4, ()))
        assert not pattern.overlaps(Document(1, "mx", 4, ()))

    def test_window_property(self):
        window = self._pattern().window
        assert window.rectangle == Rectangle(0, 0, 10, 10)
        assert window.timeframe == Interval(3, 6)

    def test_len_counts_all_members(self):
        assert len(self._pattern(bursty=frozenset({"us"}))) == 3
